// Tests for the insertion-only streaming fair-center summary: buffering
// semantics, prefix (never-forget) behaviour, guess death/doubling,
// fairness, approximation quality against exact prefix optima, and memory
// bounds independent of the stream length.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/insertion_only_fair_center.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

InsertionOnlyFairCenter Make(ColorConstraint constraint, double beta = 2.0) {
  InsertionOnlyOptions options;
  options.beta = beta;
  return InsertionOnlyFairCenter(options, std::move(constraint), &kMetric,
                                 &kJones);
}

TEST(InsertionOnlyTest, EmptyStream) {
  auto summary = Make(ColorConstraint({1}));
  auto result = summary.Query();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().centers.empty());
}

TEST(InsertionOnlyTest, BufferingPhaseIsExact) {
  // With k = 2 the buffer holds until k+2 = 4 distinct locations exist;
  // queries before that are solved on the raw points.
  auto summary = Make(ColorConstraint({1, 1}));
  summary.Update({0.0}, 0);
  summary.Update({10.0}, 1);
  summary.Update({10.5}, 0);
  auto result = summary.Query();
  ASSERT_TRUE(result.ok());
  // Exact optimum: centers {0 (c0), 10 or 10.5 (c1 -> 10)} -> radius 0.5.
  EXPECT_NEAR(result.value().radius, 0.5, 1e-9);
}

TEST(InsertionOnlyTest, DuplicatesNeverLeaveBuffering) {
  auto summary = Make(ColorConstraint({1, 1}));
  for (int i = 0; i < 100; ++i) summary.Update({3.0, 3.0}, i % 2);
  EXPECT_EQ(summary.AliveGuesses(), 0);  // still buffering
  // Buffer deduplicates: 2 points (one per color).
  EXPECT_EQ(summary.Memory().TotalPoints(), 2);
  auto result = summary.Query();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().radius, 0.0);
}

TEST(InsertionOnlyTest, SolutionsFeasibleThroughoutStream) {
  const ColorConstraint constraint({2, 1});
  auto summary = Make(constraint);
  Rng rng(5);
  for (int t = 0; t < 500; ++t) {
    summary.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                   static_cast<int>(rng.NextBounded(2)));
    if (t % 50 == 49) {
      auto result = summary.Query();
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
      EXPECT_FALSE(result.value().centers.empty());
    }
  }
}

TEST(InsertionOnlyTest, GuessesDieAsOptGrows) {
  // Feeding points at ever-larger scales kills small guesses and spawns
  // doubled ones; the ladder stays short.
  auto summary = Make(ColorConstraint({1, 1}));
  Rng rng(7);
  for (int burst = 0; burst < 5; ++burst) {
    const double scale = std::pow(10.0, burst);
    for (int i = 0; i < 30; ++i) {
      summary.Update({scale * 100.0 + rng.NextUniform(0, scale)},
                     static_cast<int>(rng.NextBounded(2)));
    }
  }
  EXPECT_GT(summary.AliveGuesses(), 0);
  EXPECT_LT(summary.AliveGuesses(), 40);
  auto result = summary.Query();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().centers.empty());
}

TEST(InsertionOnlyTest, MemoryBoundedOnLongStreams) {
  const ColorConstraint constraint({2, 2});
  auto summary = Make(constraint);
  Rng rng(9);
  int64_t peak = 0;
  for (int t = 0; t < 5000; ++t) {
    summary.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                   static_cast<int>(rng.NextBounded(2)));
    peak = std::max(peak, summary.Memory().TotalPoints());
  }
  // O(k * |Gamma|) with k = 4 and a handful of guesses: far below the
  // 5000-point stream.
  EXPECT_LT(peak, 500);
}

class InsertionOnlyQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(InsertionOnlyQualityTest, PrefixRadiusWithinFactorOfOpt) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const ColorConstraint constraint({1, 1});
  InsertionOnlyOptions options;
  options.beta = 0.5;  // fine ladder for a tight factor
  InsertionOnlyFairCenter summary(options, constraint, &kMetric, &kJones);

  std::vector<Point> prefix;
  for (int t = 0; t < 40; ++t) {
    Point p({rng.NextUniform(0, 80), rng.NextUniform(0, 80)},
            static_cast<int>(rng.NextBounded(2)));
    p.arrival = t + 1;
    prefix.push_back(p);
    summary.Update(p);
    if (t < 10 || t % 9 != 0) continue;

    auto streaming = summary.Query();
    ASSERT_TRUE(streaming.ok());
    auto exact = BruteForceFairCenter(kMetric, prefix, constraint);
    ASSERT_TRUE(exact.ok());
    const double radius =
        ClusteringRadius(kMetric, prefix, streaming.value().centers);
    // (3 + eps) with doubling/replay slack; assert a conservative 6x.
    EXPECT_LE(radius, 6.0 * exact.value().radius + 1e-9)
        << "seed=" << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertionOnlyQualityTest,
                         ::testing::Range(1, 11));

TEST(InsertionOnlyTest, NeverForgetsPrefix) {
  // The defining (anti-)property vs sliding windows: early far-away points
  // keep inflating the prefix coverage radius forever. (Evaluate over the
  // tracked prefix: the solution's own radius field refers to the coreset.)
  auto summary = Make(ColorConstraint({1}));
  std::vector<Point> prefix;
  auto feed = [&](double x) {
    Point p({x}, 0);
    prefix.push_back(p);
    summary.Update(std::move(p));
  };
  feed(0.0);
  feed(1.0);
  feed(100000.0);
  feed(2.0);
  for (int i = 0; i < 200; ++i) feed(3.0 + i * 0.001);
  auto result = summary.Query();
  ASSERT_TRUE(result.ok());
  // One center cannot cover both 0..3 and 100000 tightly.
  EXPECT_GT(ClusteringRadius(kMetric, prefix, result.value().centers),
            10000.0);
}

TEST(InsertionOnlyTest, RejectsZeroCapArrival) {
  auto summary = Make(ColorConstraint({1, 0}));
  EXPECT_DEATH(summary.Update({1.0}, 1), "zero-cap");
}

}  // namespace
}  // namespace fkc
