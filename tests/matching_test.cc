// Tests for src/matching: bipartite graph plumbing, Hopcroft-Karp maximum
// matching (cross-checked against exhaustive search), and the capacitated
// color-slot wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/random.h"
#include "matching/bipartite_graph.h"
#include "matching/capacitated_matching.h"
#include "matching/hopcroft_karp.h"

namespace fkc {
namespace {

TEST(BipartiteGraphTest, AccessorsAndEdges) {
  BipartiteGraph graph(2, 3);
  EXPECT_EQ(graph.left_size(), 2);
  EXPECT_EQ(graph.right_size(), 3);
  graph.AddEdge(0, 2);
  graph.AddEdge(1, 0);
  graph.AddEdge(1, 1);
  EXPECT_EQ(graph.edge_count(), 3);
  EXPECT_EQ(graph.Neighbors(1), (std::vector<int>{0, 1}));
}

TEST(HopcroftKarpTest, PerfectMatching) {
  BipartiteGraph graph(3, 3);
  for (int l = 0; l < 3; ++l) {
    for (int r = 0; r < 3; ++r) graph.AddEdge(l, r);
  }
  const MatchingResult result = MaximumBipartiteMatching(graph);
  EXPECT_EQ(result.size, 3);
  EXPECT_TRUE(result.Saturates(3));
  // Consistency: match_left and match_right agree.
  for (int l = 0; l < 3; ++l) {
    ASSERT_NE(result.match_left[l], -1);
    EXPECT_EQ(result.match_right[result.match_left[l]], l);
  }
}

TEST(HopcroftKarpTest, NeedsAugmentingPath) {
  // Greedy scan order would match L0-R0 and strand L1; the optimum flips.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  const MatchingResult result = MaximumBipartiteMatching(graph);
  EXPECT_EQ(result.size, 2);
}

TEST(HopcroftKarpTest, EmptyGraph) {
  const MatchingResult result = MaximumBipartiteMatching(BipartiteGraph(0, 0));
  EXPECT_EQ(result.size, 0);
}

TEST(HopcroftKarpTest, NoEdges) {
  const MatchingResult result = MaximumBipartiteMatching(BipartiteGraph(3, 3));
  EXPECT_EQ(result.size, 0);
  EXPECT_EQ(result.match_left, (std::vector<int>{-1, -1, -1}));
}

TEST(HopcroftKarpTest, DuplicateEdgesHarmless) {
  BipartiteGraph graph(1, 1);
  graph.AddEdge(0, 0);
  graph.AddEdge(0, 0);
  EXPECT_EQ(MaximumBipartiteMatching(graph).size, 1);
}

// Exhaustive maximum matching by trying all left->right assignments.
int BruteForceMatching(const BipartiteGraph& graph) {
  std::vector<int> order(graph.left_size());
  for (int i = 0; i < graph.left_size(); ++i) order[i] = i;
  int best = 0;
  std::vector<bool> used(graph.right_size(), false);
  std::function<void(int, int)> go = [&](int idx, int matched) {
    best = std::max(best, matched);
    if (idx == graph.left_size()) return;
    go(idx + 1, matched);  // leave idx unmatched
    for (int r : graph.Neighbors(idx)) {
      if (!used[r]) {
        used[r] = true;
        go(idx + 1, matched + 1);
        used[r] = false;
      }
    }
  };
  go(0, 0);
  return best;
}

class HopcroftKarpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HopcroftKarpRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int left = 2 + static_cast<int>(rng.NextBounded(5));
  const int right = 2 + static_cast<int>(rng.NextBounded(5));
  BipartiteGraph graph(left, right);
  for (int l = 0; l < left; ++l) {
    for (int r = 0; r < right; ++r) {
      if (rng.NextBernoulli(0.4)) graph.AddEdge(l, r);
    }
  }
  EXPECT_EQ(MaximumBipartiteMatching(graph).size, BruteForceMatching(graph))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpRandomTest,
                         ::testing::Range(1, 31));

TEST(CapacitatedMatchingTest, RespectsCapacities) {
  // Three heads all want color 0 with cap 2: only two can be matched.
  const ColorConstraint constraint({2, 0});
  const std::vector<std::vector<int>> allowed = {{0}, {0}, {0}};
  const auto result = MaximumCapacitatedMatching(allowed, constraint);
  EXPECT_EQ(result.size, 2);
  int matched_to_0 = 0;
  for (int h = 0; h < 3; ++h) {
    if (result.assigned_color[h] == 0) ++matched_to_0;
  }
  EXPECT_EQ(matched_to_0, 2);
}

TEST(CapacitatedMatchingTest, SaturatesWhenPossible) {
  const ColorConstraint constraint({1, 1, 1});
  const std::vector<std::vector<int>> allowed = {{0, 1}, {1, 2}, {0, 2}};
  const auto result = MaximumCapacitatedMatching(allowed, constraint);
  EXPECT_TRUE(result.Saturates(3));
  // Assigned colors must be a permutation-with-caps.
  std::vector<int> counts(3, 0);
  for (int h = 0; h < 3; ++h) {
    ASSERT_GE(result.assigned_color[h], 0);
    ++counts[result.assigned_color[h]];
  }
  for (int c = 0; c < 3; ++c) EXPECT_LE(counts[c], 1);
}

TEST(CapacitatedMatchingTest, EmptyInstances) {
  const ColorConstraint constraint({1});
  EXPECT_EQ(MaximumCapacitatedMatching({}, constraint).size, 0);
  EXPECT_EQ(MaximumCapacitatedMatching({{}}, constraint).size, 0);
}

TEST(CapacitatedMatchingTest, AssignedColorsComeFromAllowedSets) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int heads = 1 + static_cast<int>(rng.NextBounded(5));
    const int ell = 1 + static_cast<int>(rng.NextBounded(4));
    std::vector<int> caps(ell);
    for (int& c : caps) c = static_cast<int>(rng.NextBounded(3));
    std::vector<std::vector<int>> allowed(heads);
    for (auto& row : allowed) {
      for (int c = 0; c < ell; ++c) {
        if (rng.NextBernoulli(0.5)) row.push_back(c);
      }
    }
    const ColorConstraint constraint(caps);
    const auto result = MaximumCapacitatedMatching(allowed, constraint);
    std::vector<int> usage(ell, 0);
    for (int h = 0; h < heads; ++h) {
      const int color = result.assigned_color[h];
      if (color == -1) continue;
      EXPECT_NE(std::find(allowed[h].begin(), allowed[h].end(), color),
                allowed[h].end());
      ++usage[color];
    }
    for (int c = 0; c < ell; ++c) EXPECT_LE(usage[c], caps[c]);
  }
}

}  // namespace
}  // namespace fkc
