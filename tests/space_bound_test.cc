// Quantitative space-bound tests for Theorem 2: per-guess structure sizes
// against their analytical envelopes, and end-to-end scaling behaviour of
// the stored-point count in k, delta, and the guess count.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "core/guess_structure.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

// Feeds `steps` uniform 2-d points into a single guess structure.
MemoryStats DriveGuess(double gamma, double delta, int64_t window, int ell,
                       int cap, int64_t steps, uint64_t seed) {
  const ColorConstraint constraint(std::vector<int>(ell, cap));
  GuessStructure guess(gamma, delta, window, constraint,
                       CoreVariant::kFull);
  Rng rng(seed);
  MemoryStats peak;
  for (int64_t t = 1; t <= steps; ++t) {
    Point p({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
            static_cast<int>(rng.NextBounded(ell)));
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    guess.Update(p, t, kMetric, nullptr);
    const MemoryStats now = guess.Memory();
    if (now.TotalPoints() > peak.TotalPoints()) peak = now;
  }
  return peak;
}

TEST(SpaceBoundTest, ValidationFamilyWithinFactOneEnvelope) {
  // Fact 1 of Theorem 2's proof: |AV| <= k+1 and |RV| <= 2(k+1).
  for (double gamma : {5.0, 20.0, 80.0}) {
    const int k = 3 * 2;  // ell = 3, cap = 2
    const MemoryStats peak = DriveGuess(gamma, 1.0, 50, 3, 2, 500, 7);
    EXPECT_LE(peak.v_attractors, k + 1) << "gamma=" << gamma;
    EXPECT_LE(peak.v_representatives, 2 * (k + 1)) << "gamma=" << gamma;
  }
}

TEST(SpaceBoundTest, CoresetAttractorsShrinkWithDelta) {
  // Fact 2: |A| <= 2(k+1)(32/delta)^D — in particular monotone in 1/delta.
  const MemoryStats fine = DriveGuess(20.0, 0.5, 200, 2, 2, 1000, 9);
  const MemoryStats coarse = DriveGuess(20.0, 4.0, 200, 2, 2, 1000, 9);
  EXPECT_GT(fine.c_attractors, coarse.c_attractors);
  // And per-attractor representative load is capped by k = sum k_i.
  EXPECT_LE(coarse.c_representatives,
            (coarse.c_attractors + 1) * 2 * (4 + 1));
}

TEST(SpaceBoundTest, InvalidGuessesStayTiny) {
  // A guess far below the data scale is permanently invalid; Cleanup must
  // keep only the young suffix, so the structure stays O(k) regardless of
  // the stream length.
  const MemoryStats peak = DriveGuess(0.001, 0.5, 10000, 2, 2, 5000, 11);
  EXPECT_LE(peak.TotalPoints(), 200);
}

TEST(SpaceBoundTest, TotalMemoryScalesWithLadderNotWindow) {
  // Driving the full algorithm with two window sizes and two ladder widths:
  // memory responds to the ladder (aspect ratio), not the window.
  auto run = [&](int64_t window, double d_max) {
    SlidingWindowOptions options;
    options.window_size = window;
    options.delta = 1.0;
    options.d_min = 0.5;
    options.d_max = d_max;
    const ColorConstraint constraint({2, 2});
    FairCenterSlidingWindow algo(options, constraint, &kMetric, &kJones);
    Rng rng(13);
    for (int t = 0; t < 3000; ++t) {
      algo.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                  static_cast<int>(rng.NextBounded(2)));
    }
    return algo.Memory();
  };

  const MemoryStats small_window = run(300, 200.0);
  const MemoryStats large_window = run(3000, 200.0);
  // 10x window: memory within 2x (same ladder, same data scale).
  EXPECT_LT(large_window.TotalPoints(), 2 * small_window.TotalPoints() + 100);

  const MemoryStats wide_ladder = run(300, 2.0e6);
  // 10^4 x wider range: strictly more guesses...
  EXPECT_GT(wide_ladder.guesses, small_window.guesses);
  // ...but the extra guesses are cheap (all invalid or trivially valid).
  EXPECT_LT(wide_ladder.TotalPoints(), 4 * small_window.TotalPoints() + 100);
}

TEST(SpaceBoundTest, MemoryGrowsWithK) {
  auto run = [&](int cap) {
    SlidingWindowOptions options;
    options.window_size = 500;
    options.delta = 1.0;
    options.adaptive_range = true;
    const ColorConstraint constraint(std::vector<int>(2, cap));
    FairCenterSlidingWindow algo(options, constraint, &kMetric, &kJones);
    Rng rng(15);
    for (int t = 0; t < 1500; ++t) {
      algo.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                  static_cast<int>(rng.NextBounded(2)));
    }
    return algo.Memory().TotalPoints();
  };
  // Theorem 2 is O(k^2 ...): doubling k should increase memory noticeably
  // but far less than quadratically at this scale.
  const int64_t k2 = run(1);
  const int64_t k8 = run(4);
  EXPECT_GT(k8, k2);
  EXPECT_LT(k8, 16 * k2);
}

}  // namespace
}  // namespace fkc
