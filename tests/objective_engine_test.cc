// Objective-layer contract: the ObjectiveEngine seam and the second
// objective built on it. Fair-center fleets keep emitting byte-identical
// fkc-shards-v2 checkpoints (pre-objective builds restore them); mixed
// fleets round-trip through fkc-shards-v3 byte-equal at any stripe count;
// k-median engines serialize/restore bit-exactly and answer
// deterministically; forged or mismatched objective tags are rejected with
// a Status, never an abort; SetTenantObjective is creation-time-only; and
// the deterministic k-median local search honors its contract (medoids are
// input points, cost never above the Gonzalez seed, bit-identical reruns).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/checkpoint_io.h"
#include "common/random.h"
#include "core/k_median_sliding_window.h"
#include "core/objective_engine.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "sequential/k_median.h"
#include "serving/shard_manager.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const ColorConstraint kConstraint({2, 1, 1});
const char* kKeys[] = {"tenant-a", "tenant-b", "tenant-c", "tenant-d"};

std::vector<Point> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                           static_cast<int>(rng.NextBounded(3))));
  }
  return points;
}

std::vector<serving::KeyedPoint> KeyedStream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<serving::KeyedPoint> stream;
  for (int i = 0; i < n; ++i) {
    serving::KeyedPoint kp;
    kp.key = kKeys[rng.NextBounded(4)];
    kp.point = Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                     static_cast<int>(rng.NextBounded(3)));
    stream.push_back(std::move(kp));
  }
  return stream;
}

serving::ShardManagerOptions Options(int num_stripes = 0) {
  serving::ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.num_stripes = num_stripes;
  return options;
}

std::string MustCheckpoint(serving::ShardManager* manager) {
  auto blob = manager->CheckpointAll();
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  return blob.ValueOr("");
}

SlidingWindowOptions WindowOptions() {
  SlidingWindowOptions options;
  options.window_size = 60;
  options.delta = 1.0;
  options.adaptive_range = true;
  return options;
}

// --- Wire tags. ---

TEST(ObjectiveTagTest, RoundTripsAndRejectsUnknown) {
  EXPECT_EQ(ObjectiveTag(ObjectiveKind::kFairCenter),
            std::string("fair-center"));
  EXPECT_EQ(ObjectiveTag(ObjectiveKind::kKMedian), std::string("k-median"));
  EXPECT_EQ(ParseObjectiveTag("fair-center").ValueOr(ObjectiveKind::kKMedian),
            ObjectiveKind::kFairCenter);
  EXPECT_EQ(ParseObjectiveTag("k-median").ValueOr(ObjectiveKind::kFairCenter),
            ObjectiveKind::kKMedian);
  for (const char* forged : {"k-center", "", "fair_center", "K-MEDIAN"}) {
    EXPECT_EQ(ParseObjectiveTag(forged).status().code(),
              StatusCode::kInvalidArgument)
        << forged;
  }
}

TEST(ObjectiveTagTest, SniffsBothBlobFamiliesAndRejectsGarbage) {
  auto fair = CreateObjectiveEngine(ObjectiveKind::kFairCenter,
                                    WindowOptions(), kConstraint, &kMetric,
                                    &kJones);
  auto median = CreateObjectiveEngine(ObjectiveKind::kKMedian, WindowOptions(),
                                      kConstraint, &kMetric, &kJones);
  for (const Point& p : RandomPoints(40, 7)) {
    fair->Update(p);
    median->Update(p);
  }
  EXPECT_EQ(SniffObjectiveBlob(fair->SerializeState())
                .ValueOr(ObjectiveKind::kKMedian),
            ObjectiveKind::kFairCenter);
  EXPECT_EQ(SniffObjectiveBlob(median->SerializeState())
                .ValueOr(ObjectiveKind::kFairCenter),
            ObjectiveKind::kKMedian);
  EXPECT_EQ(SniffObjectiveBlob("fkc-forged-v9 whatever").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SniffObjectiveBlob("").status().code(),
            StatusCode::kInvalidArgument);
}

// --- The k-median solver's determinism contract. ---

TEST(KMedianSolverTest, MedoidsAreInputPointsAndRerunsAreBitIdentical) {
  const auto points = RandomPoints(120, 11);
  const KMedianSolution first = KMedianLocalSearch(kMetric, points, 5);
  const KMedianSolution second = KMedianLocalSearch(kMetric, points, 5);
  ASSERT_EQ(first.centers.size(), 5u);
  EXPECT_EQ(first.cost, second.cost);
  ASSERT_EQ(first.centers.size(), second.centers.size());
  for (size_t i = 0; i < first.centers.size(); ++i) {
    EXPECT_EQ(first.centers[i].coords, second.centers[i].coords);
    bool is_input = false;
    for (const Point& p : points) {
      if (p.coords == first.centers[i].coords &&
          p.color == first.centers[i].color) {
        is_input = true;
        break;
      }
    }
    EXPECT_TRUE(is_input) << "medoid " << i << " is not an input point";
  }
}

TEST(KMedianSolverTest, LocalSearchNeverWorseThanSeedAndHandlesEdges) {
  const auto points = RandomPoints(90, 13);
  // max_rounds = 0 resolves to the default bound; a 1-round run applies at
  // most one swap past the Gonzalez seed. Cost is monotone in rounds.
  KMedianOptions one_round;
  one_round.max_rounds = 1;
  const double seeded = KMedianLocalSearch(kMetric, points, 4, one_round).cost;
  const double settled = KMedianLocalSearch(kMetric, points, 4).cost;
  EXPECT_LE(settled, seeded);
  // k >= n: every point its own medoid, zero cost.
  const auto tiny = RandomPoints(3, 17);
  const KMedianSolution all = KMedianLocalSearch(kMetric, tiny, 10);
  EXPECT_EQ(all.centers.size(), tiny.size());
  EXPECT_EQ(all.cost, 0.0);
  // Empty input: empty zero-cost solution, no crash.
  const KMedianSolution empty = KMedianLocalSearch(kMetric, {}, 4);
  EXPECT_TRUE(empty.centers.empty());
  EXPECT_EQ(empty.cost, 0.0);
}

// --- The k-median engine on the shared substrate. ---

TEST(KMedianEngineTest, SerializeRestoreIsByteEqualAndAnswersMatch) {
  KMedianSlidingWindow window(WindowOptions(), kConstraint, &kMetric, &kJones);
  for (const Point& p : RandomPoints(150, 19)) window.Update(p);

  const std::string blob = window.SerializeState();
  ASSERT_EQ(blob.rfind(KMedianSlidingWindow::kMagic, 0), 0u)
      << "k-median blob must open with its own magic";
  auto restored =
      KMedianSlidingWindow::DeserializeState(blob, &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().SerializeState(), blob);

  QueryStats stats;
  auto before = window.QueryObjective(&stats);
  auto after = restored.value().QueryObjective();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value().value, after.value().value);
  ASSERT_EQ(before.value().centers.size(), after.value().centers.size());
  for (size_t i = 0; i < before.value().centers.size(); ++i) {
    EXPECT_EQ(before.value().centers[i].coords,
              after.value().centers[i].coords);
  }
  EXPECT_EQ(before.value().centers.size(),
            static_cast<size_t>(kConstraint.TotalK()));
  EXPECT_GT(stats.coreset_size, 0);
  EXPECT_GT(before.value().value, 0.0);
}

TEST(KMedianEngineTest, GenericDeserializeDispatchesOnMagic) {
  auto median = CreateObjectiveEngine(ObjectiveKind::kKMedian, WindowOptions(),
                                      kConstraint, &kMetric, &kJones);
  for (const Point& p : RandomPoints(80, 23)) median->Update(p);
  const std::string blob = median->SerializeState();
  auto engine = DeserializeObjectiveEngine(blob, &kMetric, &kJones);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->kind(), ObjectiveKind::kKMedian);
  EXPECT_EQ(engine.value()->SerializeState(), blob);
  // Truncations of the blob fail with a Status at every cut, never abort.
  // (size - 1 would only shave the trailing raw-field separator, which the
  // cursor never needs, so the deepest cut here takes a real byte.)
  for (size_t cut : {blob.size() / 4, blob.size() / 2, blob.size() - 2}) {
    auto truncated =
        DeserializeObjectiveEngine(blob.substr(0, cut), &kMetric, &kJones);
    EXPECT_FALSE(truncated.ok()) << "cut at " << cut;
  }
}

// --- Fleet formats: v2 byte-compat for pure fair-center, v3 round-trips
// for mixed fleets. ---

TEST(ObjectiveFleetTest, PureFairCenterFleetStaysOnV2Bytes) {
  serving::ShardManager manager(Options(), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.IngestBatch(KeyedStream(200, 29)).ok());
  const std::string blob = MustCheckpoint(&manager);
  EXPECT_EQ(blob.rfind("fkc-shards-v2", 0), 0u)
      << "a default-objective fleet must keep emitting v2 bytes";

  auto restored =
      serving::ShardManager::Restore(blob, &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(MustCheckpoint(&restored.value()), blob)
      << "restore -> re-checkpoint must be byte-equal";
}

TEST(ObjectiveFleetTest, MixedFleetRoundTripsByteEqualAtEveryStripeCount) {
  for (int stripes : {1, 4, 16}) {
    serving::ShardManager manager(Options(stripes), kConstraint, &kMetric,
                                  &kJones);
    ASSERT_TRUE(
        manager.SetTenantObjective("tenant-b", ObjectiveKind::kKMedian).ok());
    ASSERT_TRUE(
        manager.SetTenantObjective("tenant-d", ObjectiveKind::kKMedian).ok());
    ASSERT_TRUE(manager.IngestBatch(KeyedStream(200, 31)).ok());
    const std::string blob = MustCheckpoint(&manager);
    EXPECT_EQ(blob.rfind("fkc-shards-v3", 0), 0u) << stripes << " stripes";

    auto restored = serving::ShardManager::Restore(
        blob, &kMetric, &kJones, /*num_threads=*/1, /*max_live_shards=*/0,
        /*spill_store=*/nullptr, stripes);
    ASSERT_TRUE(restored.ok())
        << stripes << " stripes: " << restored.status().ToString();
    EXPECT_EQ(MustCheckpoint(&restored.value()), blob) << stripes
                                                       << " stripes";
    EXPECT_EQ(restored.value().TenantObjective("tenant-a"),
              ObjectiveKind::kFairCenter);
    EXPECT_EQ(restored.value().TenantObjective("tenant-b"),
              ObjectiveKind::kKMedian);

    // The restored mixed fleet answers exactly like the original, each
    // tenant under its own objective.
    auto before = manager.QueryAll();
    auto after = restored.value().QueryAll();
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
      ASSERT_TRUE(before[i].solution.ok());
      ASSERT_TRUE(after[i].solution.ok());
      EXPECT_EQ(before[i].key, after[i].key);
      EXPECT_EQ(before[i].solution.value().value,
                after[i].solution.value().value);
    }
  }
}

TEST(ObjectiveFleetTest, NonDefaultFleetObjectiveSurvivesRestore) {
  serving::ShardManagerOptions options = Options();
  options.objective = ObjectiveKind::kKMedian;
  serving::ShardManager manager(options, kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.IngestBatch(KeyedStream(150, 37)).ok());
  const std::string blob = MustCheckpoint(&manager);
  EXPECT_EQ(blob.rfind("fkc-shards-v3", 0), 0u)
      << "non-default fleet objective forces the v3 format";
  auto restored = serving::ShardManager::Restore(blob, &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().TenantObjective("tenant-a"),
            ObjectiveKind::kKMedian);
  EXPECT_EQ(MustCheckpoint(&restored.value()), blob);
}

TEST(ObjectiveFleetTest, DeltaCarriesObjectiveTableToTheFollower) {
  serving::ShardManager leader(Options(), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(
      leader.SetTenantObjective("tenant-c", ObjectiveKind::kKMedian).ok());
  const auto stream = KeyedStream(240, 41);
  const std::vector<serving::KeyedPoint> first_half(stream.begin(),
                                                    stream.begin() + 120);
  const std::vector<serving::KeyedPoint> second_half(stream.begin() + 120,
                                                     stream.end());
  ASSERT_TRUE(leader.IngestBatch(first_half).ok());
  const std::string base = MustCheckpoint(&leader);

  auto follower = serving::ShardManager::Restore(base, &kMetric, &kJones);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();

  ASSERT_TRUE(leader.IngestBatch(second_half).ok());
  auto delta = leader.CheckpointDelta();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta.value().rfind("fkc-shards-delta-v3", 0), 0u)
      << "a mixed fleet's delta must carry the objective table";
  ASSERT_TRUE(follower.value().ApplyDelta(delta.value()).ok());
  EXPECT_EQ(MustCheckpoint(&follower.value()), MustCheckpoint(&leader));
  EXPECT_EQ(follower.value().TenantObjective("tenant-c"),
            ObjectiveKind::kKMedian);
}

// --- Forged tags and mismatched blobs degrade to Status. ---

TEST(ObjectiveFleetTest, ForgedObjectiveTagsAreRejectedNotFatal) {
  serving::ShardManager manager(Options(), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(
      manager.SetTenantObjective("tenant-b", ObjectiveKind::kKMedian).ok());
  ASSERT_TRUE(manager.IngestBatch(KeyedStream(120, 43)).ok());
  const std::string blob = MustCheckpoint(&manager);

  // Forge the fleet-default tag ("fair-center", right after the magic).
  std::string forged = blob;
  const size_t tag_at = forged.find("fair-center");
  ASSERT_NE(tag_at, std::string::npos);
  forged.replace(tag_at, 11, "k-mediocre!");
  auto bad_default =
      serving::ShardManager::Restore(forged, &kMetric, &kJones);
  ASSERT_FALSE(bad_default.ok());
  EXPECT_EQ(bad_default.status().code(), StatusCode::kInvalidArgument);

  // Forge the override table's tag the same way.
  std::string forged_override = blob;
  const size_t override_at = forged_override.find("k-median");
  ASSERT_NE(override_at, std::string::npos);
  forged_override.replace(override_at, 8, "k-maxian");
  auto bad_override =
      serving::ShardManager::Restore(forged_override, &kMetric, &kJones);
  ASSERT_FALSE(bad_override.ok());
  EXPECT_EQ(bad_override.status().code(), StatusCode::kInvalidArgument);

  // Every truncation of the v3 blob fails with a Status, never an abort.
  for (size_t cut = 0; cut < blob.size(); cut += 97) {
    auto truncated =
        serving::ShardManager::Restore(blob.substr(0, cut), &kMetric, &kJones);
    EXPECT_FALSE(truncated.ok()) << "cut at " << cut;
  }
}

TEST(ObjectiveFleetTest, BlobObjectiveMustMatchTheCheckpointTable) {
  // Two fleets with the same single tenant under different objectives;
  // splice the k-median fleet's engine blob into the fair-center fleet's
  // checkpoint. The blob's own magic then contradicts the checkpoint's
  // objective table and the restore must say so.
  std::vector<serving::KeyedPoint> stream;
  for (const Point& p : RandomPoints(80, 47)) {
    stream.push_back({"tenant-a", p});
  }
  serving::ShardManager fair(Options(), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(fair.IngestBatch(stream).ok());
  serving::ShardManagerOptions median_options = Options();
  median_options.objective = ObjectiveKind::kKMedian;
  serving::ShardManager median(median_options, kConstraint, &kMetric,
                               &kJones);
  ASSERT_TRUE(median.IngestBatch(stream).ok());

  const std::string fair_blob = MustCheckpoint(&fair);
  const std::string median_blob = MustCheckpoint(&median);
  const std::string fair_engine = fair.shard("tenant-a")->SerializeState();
  const std::string median_engine = median.shard("tenant-a")->SerializeState();
  const size_t engine_at = fair_blob.find(fair_engine);
  ASSERT_NE(engine_at, std::string::npos);

  // Swap in the other objective's raw engine state, keeping the surrounding
  // length prefix honest (WriteCheckpointRaw = "<size> <bytes>").
  std::string spliced = fair_blob.substr(0, engine_at - 1);
  {
    std::ostringstream patch;
    // Rewrite the length prefix: drop the old "<size>" token that precedes
    // the engine bytes.
    const size_t prefix_end = spliced.find_last_of(' ');
    ASSERT_NE(prefix_end, std::string::npos);
    spliced.resize(prefix_end + 1);
    WriteCheckpointRaw(&patch, median_engine);
    spliced += patch.str();
  }
  spliced += fair_blob.substr(engine_at + fair_engine.size());
  auto mismatched =
      serving::ShardManager::Restore(spliced, &kMetric, &kJones);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

// --- SetTenantObjective lifecycle. ---

TEST(ObjectiveFleetTest, ObjectiveIsFixedAtShardCreation) {
  serving::ShardManager manager(Options(), kConstraint, &kMetric, &kJones);
  EXPECT_EQ(manager.TenantObjective("tenant-a"), ObjectiveKind::kFairCenter);
  ASSERT_TRUE(
      manager.SetTenantObjective("tenant-a", ObjectiveKind::kKMedian).ok());
  EXPECT_EQ(manager.TenantObjective("tenant-a"), ObjectiveKind::kKMedian);
  // Re-registering the default erases the override.
  ASSERT_TRUE(
      manager.SetTenantObjective("tenant-a", ObjectiveKind::kFairCenter).ok());
  EXPECT_EQ(manager.TenantObjective("tenant-a"), ObjectiveKind::kFairCenter);
  ASSERT_TRUE(
      manager.SetTenantObjective("tenant-a", ObjectiveKind::kKMedian).ok());

  ASSERT_TRUE(manager.Ingest("tenant-a", Point({1.0, 2.0}, 0)).ok());
  auto late =
      manager.SetTenantObjective("tenant-a", ObjectiveKind::kFairCenter);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition)
      << "an existing shard's objective must be immutable";
  EXPECT_EQ(manager.TenantObjective("tenant-a"), ObjectiveKind::kKMedian);

  // The shard really runs k-median: its engine self-identifies.
  ASSERT_NE(manager.shard("tenant-a"), nullptr);
  EXPECT_EQ(manager.shard("tenant-a")->kind(), ObjectiveKind::kKMedian);
}

TEST(ObjectiveFleetTest, MixedFleetAnswersBothObjectivesOnOneStream) {
  serving::ShardManager manager(Options(), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(
      manager.SetTenantObjective("tenant-b", ObjectiveKind::kKMedian).ok());
  // Identical per-tenant streams so the objective is the only difference.
  std::vector<serving::KeyedPoint> stream;
  for (const Point& p : RandomPoints(100, 53)) {
    stream.push_back({"tenant-a", p});
    stream.push_back({"tenant-b", p});
  }
  ASSERT_TRUE(manager.IngestBatch(stream).ok());

  auto fair = manager.Query("tenant-a");
  auto median = manager.Query("tenant-b");
  ASSERT_TRUE(fair.ok()) << fair.status().ToString();
  ASSERT_TRUE(median.ok()) << median.status().ToString();
  // k-median reports a SUM of distances over the coreset; fair-center a
  // covering radius. On 100 spread-out points the sum exceeds the max.
  EXPECT_GT(median.value().value, fair.value().value);
  EXPECT_EQ(median.value().centers.size(),
            static_cast<size_t>(kConstraint.TotalK()));
}

}  // namespace
}  // namespace fkc
