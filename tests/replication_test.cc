// Replication stack contract. Three layers, each with its own guarantees:
//
//   ReplicatedLog   a SIGKILL'd leader restores its fleet purely from the
//                   on-disk chain — including a torn tail, which recovery
//                   truncates back to the last intact capture boundary
//                   (never aborting). Every byte-truncation prefix of the
//                   log recovers to a fleet byte-equal to the fleet as of
//                   the corresponding capture.
//   transport       a follower over a unix socket converges to a
//                   byte-equal checkpoint and reports a staleness bound,
//                   resyncing from the base after drops, corruption,
//                   truncation, and reconnects on a seeded fault schedule.
//   fault plumbing  FaultInjector schedules are seed-deterministic and
//                   budget-bounded; a FaultInjectingSpillStore drives the
//                   ShardManager's precise failure Statuses and the
//                   MaintenanceStats counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fs_util.h"
#include "common/random.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/replication/fault_injector.h"
#include "serving/replication/replicated_log.h"
#include "serving/replication/transport.h"
#include "serving/replication/wire_format.h"
#include "serving/shard_manager.h"
#include "serving/spill_store.h"

namespace fkc {
namespace serving {
namespace {

namespace fs = std::filesystem;

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const ColorConstraint kConstraint({2, 1, 1});
const char* kKeys[] = {"tenant-a", "tenant-b", "tenant-c"};

ShardManagerOptions ManagerOptions(int num_threads = 1) {
  ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.num_threads = num_threads;
  return options;
}

std::vector<KeyedPoint> KeyedStream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyedPoint> stream;
  for (int i = 0; i < n; ++i) {
    stream.push_back({kKeys[rng.NextBounded(3)],
                      Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                            static_cast<int>(rng.NextBounded(3)))});
  }
  return stream;
}

// A fresh directory per test, wiped up front so reruns start clean.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fkc_repl_" + name;
  fs::remove_all(dir);
  return dir;
}

// Per-shard byte equality — the strongest equivalence the engine offers.
void ExpectSameFleets(ShardManager* a, ShardManager* b) {
  ASSERT_EQ(a->Keys(), b->Keys());
  for (const std::string& key : a->Keys()) {
    ASSERT_TRUE(a->Query(key).ok()) << key;
    ASSERT_TRUE(b->Query(key).ok()) << key;
    EXPECT_EQ(a->shard(key)->SerializeState(), b->shard(key)->SerializeState())
        << key;
  }
}

// The per-shard state snapshot used as the "expected fleet at capture k"
// record. Deliberately NOT CheckpointAll: that would consume the leader's
// dirty bits mid-stream and corrupt every later delta capture.
std::map<std::string, std::string> FleetSnapshot(ShardManager* manager) {
  std::map<std::string, std::string> snapshot;
  for (const std::string& key : manager->Keys()) {
    EXPECT_TRUE(manager->Query(key).ok()) << key;
    snapshot[key] = manager->shard(key)->SerializeState();
  }
  return snapshot;
}

void ExpectFleetMatchesSnapshot(
    ShardManager* fleet, const std::map<std::string, std::string>& expected) {
  std::vector<std::string> keys;
  for (const auto& entry : expected) keys.push_back(entry.first);
  ASSERT_EQ(fleet->Keys(), keys);
  for (const auto& entry : expected) {
    ASSERT_TRUE(fleet->Query(entry.first).ok()) << entry.first;
    EXPECT_EQ(fleet->shard(entry.first)->SerializeState(), entry.second)
        << entry.first;
  }
}

// Sorted segment files of `dir` as (generation, index, filename).
struct SegmentFile {
  int64_t generation = 0;
  int64_t index = 0;
  std::string name;
};
std::vector<SegmentFile> ListSegments(const std::string& dir) {
  std::vector<std::string> files;
  EXPECT_TRUE(ListDirectoryFiles(dir, &files).ok());
  std::vector<SegmentFile> segments;
  for (const std::string& name : files) {
    long long gen = 0, idx = 0;
    int used = 0;
    if (std::sscanf(name.c_str(), "seg-%lld-%lld.seg%n", &gen, &idx, &used) ==
            2 &&
        used == static_cast<int>(name.size())) {
      segments.push_back(SegmentFile{gen, idx, name});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.generation != b.generation
                         ? a.generation < b.generation
                         : a.index < b.index;
            });
  return segments;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok()) << path;
  return bytes;
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- ReplicatedLog: crash-safe capture + recovery. ---

TEST(ReplicatedLogTest, EmptyLogOpensAndRefusesReplay) {
  ReplicatedLog log(FreshDir("empty"));
  ASSERT_TRUE(log.Open().ok());
  EXPECT_FALSE(log.has_base());
  EXPECT_EQ(log.generation(), 0);
  auto replayed = log.Replay(&kMetric, &kJones);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReplicatedLogTest, MethodsBeforeOpenFail) {
  ReplicatedLog log(FreshDir("unopened"));
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  EXPECT_EQ(log.Capture(&leader).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(log.AppendBase(1, "x").code(), StatusCode::kFailedPrecondition);
}

// The tentpole acceptance: drop the log object with no shutdown (the
// in-process stand-in for SIGKILL — all durable state is already on disk),
// re-open the directory, and the replayed fleet is byte-equal to the
// leader.
TEST(ReplicatedLogTest, ReopenAfterKillReplaysBitExactly) {
  const std::string dir = FreshDir("kill_recover");
  const auto stream = KeyedStream(360, 83);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  {
    ReplicatedLog log(dir);
    ASSERT_TRUE(log.Open().ok());
    for (size_t tranche = 0; tranche < 6; ++tranche) {
      for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
        ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
      }
      if (tranche % 2 == 1) leader.EvictIdle(/*idle_ttl=*/0);
      auto captured = log.Capture(&leader);
      ASSERT_TRUE(captured.ok()) << captured.status().ToString();
      EXPECT_EQ(captured.value().rebased, tranche == 0);
    }
    EXPECT_EQ(log.generation(), 1);
    EXPECT_EQ(log.chain_length(), 5u);
  }  // "SIGKILL": the log object vanishes; only the directory survives

  ReplicatedLog recovered(dir);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.generation(), 1);
  EXPECT_EQ(recovered.chain_length(), 5u);
  EXPECT_EQ(recovered.recovery_stats().recovered_entries, 6);
  EXPECT_EQ(recovered.recovery_stats().truncated_segments, 0);
  EXPECT_FALSE(recovered.recovery_stats().manifest_rebuilt);

  auto replayed = recovered.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectSameFleets(&leader, &replayed.value());
}

// Re-bases open a new generation; the old generation's files are retired
// and recovery adopts only the newest chain.
TEST(ReplicatedLogTest, RebaseRetiresOldGenerationAndRecovers) {
  const std::string dir = FreshDir("rebase");
  ReplicatedLog::Options budget;
  budget.max_chain_length = 2;
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(dir, budget);
  ASSERT_TRUE(log.Open().ok());

  const auto stream = KeyedStream(420, 89);
  for (size_t tranche = 0; tranche < 7; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
  }
  // Captures: base(g1), d, d, base(g2), d, d, base(g3).
  EXPECT_EQ(log.generation(), 3);
  EXPECT_EQ(log.rebases(), 2);
  EXPECT_EQ(log.chain_length(), 0u);

  const auto segments = ListSegments(dir);
  ASSERT_EQ(segments.size(), 1u) << "stale generations must be swept";
  EXPECT_EQ(segments[0].generation, 3);
  EXPECT_EQ(segments[0].index, 0);

  ReplicatedLog recovered(dir);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.generation(), 3);
  auto replayed = recovered.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok());
  ExpectSameFleets(&leader, &replayed.value());
}

// The MANIFEST is advisory: deleting or shredding it must not change what
// recovery adopts.
TEST(ReplicatedLogTest, RecoveryIgnoresMissingOrGarbageManifest) {
  const std::string dir = FreshDir("manifest");
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  {
    ReplicatedLog log(dir);
    ASSERT_TRUE(log.Open().ok());
    const auto stream = KeyedStream(120, 7);
    for (const auto& kp : stream) {
      ASSERT_TRUE(leader.Ingest(kp.key, kp.point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
  }
  for (const std::string& garbage :
       {std::string(), std::string("not a manifest at all")}) {
    if (garbage.empty()) {
      ASSERT_TRUE(RemoveFileIfExists(dir + "/MANIFEST").ok());
    } else {
      WriteRaw(dir + "/MANIFEST", garbage);
    }
    ReplicatedLog recovered(dir);
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_EQ(recovered.generation(), 1);
    EXPECT_EQ(recovered.recovery_stats().recovered_entries, 1);
    EXPECT_TRUE(recovered.recovery_stats().manifest_rebuilt);
    auto replayed = recovered.Replay(&kMetric, &kJones);
    ASSERT_TRUE(replayed.ok());
    ExpectSameFleets(&leader, &replayed.value());
  }
}

// Satellite 3 + tentpole acceptance: snapshot the log directory mid-stream
// at arbitrary byte truncation points. For every segment k and every
// truncation offset, recovery must adopt exactly the k intact entries —
// and the replayed fleet must be byte-equal to the fleet as of capture k.
TEST(ReplicatedLogTest, EveryTornTailPrefixRecoversToItsCaptureBoundary) {
  const std::string dir = FreshDir("torn_src");
  const auto stream = KeyedStream(300, 101);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(dir);
  ASSERT_TRUE(log.Open().ok());

  // expected[k] = per-shard state right after capture k (0-based).
  std::vector<std::map<std::string, std::string>> expected;
  for (size_t tranche = 0; tranche < 5; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
    expected.push_back(FleetSnapshot(&leader));
  }
  const auto segments = ListSegments(dir);
  ASSERT_EQ(segments.size(), 5u);

  const std::string scratch = testing::TempDir() + "/fkc_repl_torn_case";
  for (size_t torn = 0; torn < segments.size(); ++torn) {
    const std::string torn_bytes = ReadAll(dir + "/" + segments[torn].name);
    ASSERT_GT(torn_bytes.size(), 0u);
    // Full sweep of truncation points with cheap assertions; byte-equal
    // replay is spot-checked at the edges and the middle (replays are the
    // expensive part).
    const size_t stride =
        torn_bytes.size() > 17 ? torn_bytes.size() / 17 : size_t{1};
    std::vector<size_t> offsets;
    for (size_t cut = 0; cut < torn_bytes.size(); cut += stride) {
      offsets.push_back(cut);
    }
    offsets.push_back(torn_bytes.size() - 1);
    for (const size_t cut : offsets) {
      SCOPED_TRACE(segments[torn].name + " cut at " + std::to_string(cut));
      fs::remove_all(scratch);
      ASSERT_TRUE(EnsureDirectory(scratch).ok());
      // Intact prefix, torn segment k, and the (now-orphaned) tail — the
      // exact on-disk shape of a crash mid-publish plus later debris.
      for (size_t i = 0; i < torn; ++i) {
        fs::copy_file(dir + "/" + segments[i].name,
                      scratch + "/" + segments[i].name);
      }
      WriteRaw(scratch + "/" + segments[torn].name, torn_bytes.substr(0, cut));
      for (size_t i = torn + 1; i < segments.size(); ++i) {
        fs::copy_file(dir + "/" + segments[i].name,
                      scratch + "/" + segments[i].name);
      }

      ReplicatedLog recovered(scratch);
      ASSERT_TRUE(recovered.Open().ok()) << "recovery must never abort";
      const auto stats = recovered.recovery_stats();
      ASSERT_EQ(stats.recovered_entries, static_cast<int64_t>(torn));
      EXPECT_GE(stats.truncated_segments, 1);
      if (torn == 0) {
        EXPECT_FALSE(recovered.has_base());
        continue;
      }
      const bool spot_check =
          cut == 0 || cut == torn_bytes.size() - 1 ||
          (cut >= torn_bytes.size() / 2 &&
           cut < torn_bytes.size() / 2 + stride);
      if (!spot_check) continue;
      auto replayed = recovered.Replay(&kMetric, &kJones);
      ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
      ExpectFleetMatchesSnapshot(&replayed.value(), expected[torn - 1]);
    }
  }
  fs::remove_all(scratch);
}

// After a torn-tail recovery the log must keep accepting captures — the
// truncate-and-CONTINUE half of the contract.
TEST(ReplicatedLogTest, CapturesContinueAfterTornTailRecovery) {
  const std::string dir = FreshDir("torn_continue");
  const auto stream = KeyedStream(240, 11);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(dir);
  ASSERT_TRUE(log.Open().ok());
  for (size_t tranche = 0; tranche < 3; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
  }
  // Tear the last delta in half.
  const auto segments = ListSegments(dir);
  ASSERT_EQ(segments.size(), 3u);
  const std::string last = dir + "/" + segments.back().name;
  const std::string bytes = ReadAll(last);
  WriteRaw(last, bytes.substr(0, bytes.size() / 2));

  ReplicatedLog recovered(dir);
  ASSERT_TRUE(recovered.Open().ok());
  ASSERT_EQ(recovered.recovery_stats().recovered_entries, 2);

  // A leader restarting from this log replays FIRST (adopting the
  // truncated prefix as its state), then keeps ingesting and capturing
  // into the same log — the stream picks up exactly where the surviving
  // prefix ends.
  auto restored = recovered.Replay(&kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  ShardManager relaunched = std::move(restored).value();
  for (size_t i = 180; i < 240; ++i) {
    ASSERT_TRUE(relaunched.Ingest(stream[i].key, stream[i].point).ok());
  }
  auto captured = recovered.Capture(&relaunched);
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  auto replayed = recovered.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok());
  ExpectSameFleets(&relaunched, &replayed.value());
}

// Follower-side appends: strict continuation, resync-from-base rules.
TEST(ReplicatedLogTest, AppendFollowsContinuationRules) {
  const std::string dir = FreshDir("appends");
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog source(FreshDir("appends_src"));
  ASSERT_TRUE(source.Open().ok());
  const auto stream = KeyedStream(180, 3);
  for (size_t tranche = 0; tranche < 3; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(source.Capture(&leader).ok());
  }
  const auto entries = source.EntriesFrom(0, 0);
  ASSERT_EQ(entries.size(), 3u);

  ReplicatedLog follower(dir);
  ASSERT_TRUE(follower.Open().ok());
  // A delta with no base, and a gapped delta, are both out-of-order.
  EXPECT_EQ(follower.AppendDelta(1, 1, entries[1].payload).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(
      follower.AppendBase(entries[0].generation, entries[0].payload).ok());
  EXPECT_EQ(follower.AppendDelta(1, 2, entries[2].payload).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(follower.AppendDelta(1, 1, entries[1].payload).ok());
  ASSERT_TRUE(follower.AppendDelta(1, 2, entries[2].payload).ok());

  // The follower's own disk now survives the follower's own kill.
  ReplicatedLog reopened(dir);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery_stats().recovered_entries, 3);
  auto replayed = reopened.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok());
  ExpectSameFleets(&leader, &replayed.value());
}

TEST(ReplicatedLogTest, EntriesFromServesTailOrFullResync) {
  ReplicatedLog log(FreshDir("entries_from"));
  ASSERT_TRUE(log.Open().ok());
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  const auto stream = KeyedStream(120, 19);
  for (size_t tranche = 0; tranche < 2; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
  }
  // Caught-up follower: nothing to send.
  EXPECT_TRUE(log.EntriesFrom(1, 2).empty());
  // Mid-chain tail.
  auto tail = log.EntriesFrom(1, 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].index, 1);
  // Unknown generation, or a position past the chain: full resync.
  for (const auto& position :
       std::vector<std::pair<int64_t, int64_t>>{{0, 0}, {7, 1}, {1, 9}}) {
    auto resync = log.EntriesFrom(position.first, position.second);
    ASSERT_EQ(resync.size(), 2u);
    EXPECT_EQ(resync[0].index, 0);
  }
}

// --- Wire format. ---

TEST(WireFormatTest, FrameRoundTrips) {
  Frame frame;
  frame.type = FrameType::kDelta;
  frame.generation = 7;
  frame.index = 3;
  frame.chain_length = 9;
  frame.payload = std::string("delta-bytes\x00with-nul", 20);
  const std::string bytes = EncodeFrame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());

  Frame decoded;
  uint64_t payload_size = 0, checksum = 0;
  ASSERT_TRUE(DecodeFrameHeader(bytes.data(), bytes.size(), &decoded,
                                &payload_size, &checksum)
                  .ok());
  EXPECT_EQ(decoded.type, FrameType::kDelta);
  EXPECT_EQ(decoded.generation, 7);
  EXPECT_EQ(decoded.index, 3);
  EXPECT_EQ(decoded.chain_length, 9);
  const std::string payload = bytes.substr(kFrameHeaderBytes);
  EXPECT_TRUE(CheckFramePayload(payload_size, checksum, payload).ok());
}

TEST(WireFormatTest, DamagedFramesAreRejected) {
  Frame frame;
  frame.type = FrameType::kBase;
  frame.generation = 1;
  frame.payload = "checkpoint blob";
  const std::string bytes = EncodeFrame(frame);

  Frame decoded;
  uint64_t payload_size = 0, checksum = 0;
  // Truncated header.
  EXPECT_FALSE(DecodeFrameHeader(bytes.data(), kFrameHeaderBytes - 1,
                                 &decoded, &payload_size, &checksum)
                   .ok());
  // Single-byte header flips must be caught by magic / version / type /
  // range validation — or land in a position field, where they change
  // coordinates but never mis-frame the stream; flips to the payload-size
  // or checksum words are caught by CheckFramePayload.
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    Frame out;
    uint64_t out_size = 0, out_checksum = 0;
    Status decoded_status = DecodeFrameHeader(bad.data(), bad.size(), &out,
                                              &out_size, &out_checksum);
    if (!decoded_status.ok()) continue;
    const bool payload_ok =
        CheckFramePayload(out_size, out_checksum, bad.substr(kFrameHeaderBytes))
            .ok();
    if (payload_ok) {
      EXPECT_TRUE(out.generation != frame.generation ||
                  out.index != frame.index ||
                  out.chain_length != frame.chain_length)
          << "flip at byte " << i << " changed nothing yet decoded";
    }
  }
  // Payload corruption fails the checksum.
  std::string corrupt = bytes;
  corrupt[kFrameHeaderBytes] =
      static_cast<char>(corrupt[kFrameHeaderBytes] ^ 0x01);
  ASSERT_TRUE(DecodeFrameHeader(corrupt.data(), corrupt.size(), &decoded,
                                &payload_size, &checksum)
                  .ok());
  EXPECT_FALSE(CheckFramePayload(payload_size, checksum,
                                 corrupt.substr(kFrameHeaderBytes))
                   .ok());
}

// --- FaultInjector. ---

TEST(FaultInjectorTest, ScheduleIsSeedDeterministicAndBudgetBounded) {
  FaultInjector::Options options;
  options.seed = 7;
  options.drop_prob = 0.3;
  options.corrupt_prob = 0.2;
  options.truncate_prob = 0.1;
  options.max_faults = 5;

  std::vector<FaultInjector::FrameFate> first, second;
  FaultInjector a(options), b(options);
  for (int i = 0; i < 100; ++i) first.push_back(a.NextFrameFate());
  for (int i = 0; i < 100; ++i) second.push_back(b.NextFrameFate());
  EXPECT_EQ(first, second) << "same seed, same schedule";

  const auto counters = a.counters();
  EXPECT_EQ(counters.frames_dropped + counters.frames_corrupted +
                counters.frames_truncated + counters.frames_delayed,
            5)
      << "the budget bounds total injected faults";
  EXPECT_GT(counters.frames_dropped, 0);
  // Post-budget, everything delivers.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextFrameFate(), FaultInjector::FrameFate::kDeliver);
  }
}

TEST(FaultInjectorTest, SpillStoreFailuresFollowTheSchedule) {
  FaultInjector::Options options;
  options.write_failure_prob = 1.0;
  options.read_failure_prob = 1.0;
  options.max_faults = 2;
  FaultInjector injector(options);
  auto store = std::make_shared<FaultInjectingSpillStore>(
      std::make_shared<InMemorySpillStore>(), &injector);

  Status first_put = store->Put("k", "v");
  ASSERT_FALSE(first_put.ok());
  EXPECT_EQ(first_put.code(), StatusCode::kIoError);
  EXPECT_NE(first_put.message().find("injected"), std::string::npos);
  ASSERT_FALSE(store->Get("k").ok());  // second (and last) budgeted fault
  ASSERT_TRUE(store->Put("k", "v").ok());
  auto got = store->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "v");
  EXPECT_EQ(injector.counters().failed_writes, 1);
  EXPECT_EQ(injector.counters().failed_reads, 1);
}

// Satellite 2: backend failures surface as precise Statuses (operation +
// shard + backend) and move the MaintenanceStats counters.
TEST(ShardManagerFaultTest, SpillFailureIsCountedAndAnnotated) {
  FaultInjector::Options options;
  options.write_failure_prob = 1.0;
  options.max_faults = 1;
  FaultInjector injector(options);
  auto store = std::make_shared<FaultInjectingSpillStore>(
      std::make_shared<InMemorySpillStore>(), &injector);

  ShardManagerOptions manager_options = ManagerOptions();
  manager_options.spill_store = store;
  ShardManager manager(manager_options, kConstraint, &kMetric, &kJones);
  const auto stream = KeyedStream(60, 23);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }

  // The budgeted write failure fails the first spill, which stops the
  // sweep (backend presumed down) — every shard stays live.
  Status spill_status;
  EXPECT_EQ(manager.EvictIdle(/*idle_ttl=*/0, &spill_status), 0);
  ASSERT_FALSE(spill_status.ok());
  EXPECT_NE(spill_status.message().find("spilling shard"), std::string::npos);
  EXPECT_NE(spill_status.message().find("fault-injecting"), std::string::npos);
  EXPECT_EQ(manager.maintenance_stats().spill_write_failures, 1);
}

TEST(ShardManagerFaultTest, RehydrationFailureIsCountedAndAnnotated) {
  FaultInjector::Options options;
  options.read_failure_prob = 1.0;
  options.max_faults = 1;
  FaultInjector injector(options);
  auto store = std::make_shared<FaultInjectingSpillStore>(
      std::make_shared<InMemorySpillStore>(), &injector);
  ShardManagerOptions manager_options = ManagerOptions();
  manager_options.spill_store = store;
  ShardManager manager(manager_options, kConstraint, &kMetric, &kJones);
  const auto stream = KeyedStream(60, 23);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  // ttl=0 keeps the most recently touched shard live and spills the rest.
  EXPECT_EQ(manager.EvictIdle(/*idle_ttl=*/0), 2);
  // Query a SPILLED shard (any key but the last-ingested one).
  std::string spilled_key;
  for (const char* key : kKeys) {
    if (stream.back().key != key) spilled_key = key;
  }
  auto query = manager.Query(spilled_key);
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("rehydrating shard"),
            std::string::npos);
  EXPECT_EQ(manager.maintenance_stats().rehydration_failures, 1);
  // Budget spent: the same query now succeeds — the shard was never lost.
  EXPECT_TRUE(manager.Query(spilled_key).ok());
}

TEST(ShardManagerFaultTest, CheckpointFailureIsCountedAndAnnotated) {
  FaultInjector::Options options;
  options.read_failure_prob = 1.0;
  options.max_faults = 1;
  FaultInjector injector(options);
  auto store = std::make_shared<FaultInjectingSpillStore>(
      std::make_shared<InMemorySpillStore>(), &injector);
  ShardManagerOptions manager_options = ManagerOptions();
  manager_options.spill_store = store;
  ShardManager manager(manager_options, kConstraint, &kMetric, &kJones);
  const auto stream = KeyedStream(60, 29);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  EXPECT_EQ(manager.EvictIdle(/*idle_ttl=*/0), 2);
  auto blob = manager.CheckpointAll();
  ASSERT_FALSE(blob.ok());
  EXPECT_NE(blob.status().message().find("checkpoint aborted reading"),
            std::string::npos);
  EXPECT_EQ(manager.maintenance_stats().checkpoint_failures, 1);
  // And once the budget is spent, the checkpoint goes through.
  EXPECT_TRUE(manager.CheckpointAll().ok());
}

// Maintenance can capture into a ReplicatedLog (but never into two logs).
TEST(ShardManagerFaultTest, MaintenanceCapturesIntoReplicatedLog) {
  ReplicatedLog log(FreshDir("maintenance"));
  ASSERT_TRUE(log.Open().ok());
  ShardManager manager(ManagerOptions(), kConstraint, &kMetric, &kJones);
  const auto stream = KeyedStream(60, 31);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }

  DeltaLog other;
  MaintenanceOptions both;
  both.delta_log = &other;
  both.replicated_log = &log;
  EXPECT_EQ(manager.StartMaintenance(both).code(),
            StatusCode::kInvalidArgument);

  MaintenanceOptions options;
  options.cadence = std::chrono::milliseconds(5);
  options.replicated_log = &log;
  ASSERT_TRUE(manager.StartMaintenance(options).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!log.has_base() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  manager.StopMaintenance();
  ASSERT_TRUE(log.has_base());
  auto replayed = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok());
  ExpectSameFleets(&manager, &replayed.value());
}

// --- Transport. ---

#ifndef _WIN32

// Short unix-socket paths: sockaddr_un caps at ~100 bytes.
std::string SocketPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/fkc_" + name + ".sock";
  fs::remove(path);
  return path;
}

// Waits until the follower reports it has applied everything the leader
// announced (or the deadline passes). Returns the final bound.
LogReceiver::StalenessBound AwaitConverged(LogReceiver* receiver,
                                           int64_t want_entries,
                                           int deadline_seconds = 60) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(deadline_seconds);
  for (;;) {
    const auto bound = receiver->staleness();
    if (bound.has_fleet && bound.entries_behind == 0 &&
        bound.applied_entries == want_entries && bound.connected) {
      return bound;
    }
    if (std::chrono::steady_clock::now() >= deadline) return bound;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(TransportTest, FollowerConvergesOverUnixSocketByteEqual) {
  const auto stream = KeyedStream(360, 131);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(FreshDir("wire_leader"));
  ASSERT_TRUE(log.Open().ok());

  LogSender::Options sender_options;
  sender_options.unix_socket_path = SocketPath("wire");
  sender_options.heartbeat_interval = std::chrono::milliseconds(20);
  sender_options.poll_interval = std::chrono::milliseconds(2);
  LogSender sender(&log, sender_options);
  ASSERT_TRUE(sender.Start().ok());
  EXPECT_EQ(sender.Start().code(), StatusCode::kFailedPrecondition);

  LogReceiver::Options receiver_options;
  receiver_options.unix_socket_path = sender_options.unix_socket_path;
  receiver_options.initial_backoff = std::chrono::milliseconds(2);
  receiver_options.max_backoff = std::chrono::milliseconds(50);
  LogReceiver receiver(&kMetric, &kJones, receiver_options);
  ASSERT_TRUE(receiver.Start().ok());

  // Stream captures while the follower tails.
  for (size_t tranche = 0; tranche < 6; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
  }
  const int64_t want = 1 + static_cast<int64_t>(log.chain_length());
  const auto bound = AwaitConverged(&receiver, want);
  ASSERT_TRUE(bound.has_fleet);
  ASSERT_EQ(bound.entries_behind, 0) << "follower never converged";
  EXPECT_EQ(bound.applied_generation, log.generation());

  // Byte-equal convergence: both sides restore from their own view of the
  // log and checkpoint — identical fleets serialize identically.
  auto leader_fleet = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(leader_fleet.ok());
  auto leader_blob = leader_fleet.value().CheckpointAll();
  ASSERT_TRUE(leader_blob.ok());
  auto follower_blob = receiver.CheckpointAll();
  ASSERT_TRUE(follower_blob.ok());
  EXPECT_EQ(leader_blob.value(), follower_blob.value());

  // The replica answers queries.
  EXPECT_EQ(receiver.QueryAll().size(), 3u);
  EXPECT_EQ(receiver.Keys().size(), 3u);
  EXPECT_GT(sender.stats().frames_sent, 0);

  // With the log idle, heartbeats keep the bound fresh.
  const auto heartbeat_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (receiver.stats().heartbeats_received == 0 &&
         std::chrono::steady_clock::now() < heartbeat_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(receiver.stats().heartbeats_received, 0);

  receiver.Stop();
  sender.Stop();
}

TEST(TransportTest, FaultInjectedFollowerStillConvergesByteEqual) {
  const auto stream = KeyedStream(360, 137);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(FreshDir("faulty_leader"));
  ASSERT_TRUE(log.Open().ok());
  // A first capture before the follower ever connects, so its initial sync
  // has a real base to fetch (and to lose to the fault schedule).
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
  }
  ASSERT_TRUE(log.Capture(&leader).ok());

  FaultInjector::Options fault_options;
  fault_options.seed = 1234;
  fault_options.drop_prob = 0.35;
  fault_options.corrupt_prob = 0.25;
  fault_options.truncate_prob = 0.15;
  fault_options.max_faults = 10;
  FaultInjector injector(fault_options);

  LogSender::Options sender_options;
  sender_options.unix_socket_path = SocketPath("faulty");
  sender_options.heartbeat_interval = std::chrono::milliseconds(10);
  sender_options.poll_interval = std::chrono::milliseconds(2);
  sender_options.fault_injector = &injector;
  LogSender sender(&log, sender_options);
  ASSERT_TRUE(sender.Start().ok());

  // The follower also persists locally, proving the replica's own disk
  // state survives a follower kill.
  const std::string follower_dir = FreshDir("faulty_follower");
  ReplicatedLog follower_log(follower_dir);
  ASSERT_TRUE(follower_log.Open().ok());
  LogReceiver::Options receiver_options;
  receiver_options.unix_socket_path = sender_options.unix_socket_path;
  receiver_options.receive_timeout = std::chrono::milliseconds(200);
  receiver_options.initial_backoff = std::chrono::milliseconds(2);
  receiver_options.max_backoff = std::chrono::milliseconds(50);
  receiver_options.backoff_seed = 99;
  receiver_options.local_log = &follower_log;
  LogReceiver receiver(&kMetric, &kJones, receiver_options);
  ASSERT_TRUE(receiver.Start().ok());

  for (size_t tranche = 1; tranche < 6; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const int64_t want = 1 + static_cast<int64_t>(log.chain_length());
  const auto bound = AwaitConverged(&receiver, want);
  ASSERT_TRUE(bound.has_fleet);
  ASSERT_EQ(bound.entries_behind, 0)
      << "fault-injected follower never converged";

  // The schedule actually hurt: the full fault budget fired.
  const auto counters = injector.counters();
  EXPECT_EQ(counters.frames_dropped + counters.frames_corrupted +
                counters.frames_truncated + counters.frames_delayed,
            10);

  // And convergence is still byte-equal...
  auto leader_fleet = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(leader_fleet.ok());
  auto leader_blob = leader_fleet.value().CheckpointAll();
  ASSERT_TRUE(leader_blob.ok());
  auto follower_blob = receiver.CheckpointAll();
  ASSERT_TRUE(follower_blob.ok());
  EXPECT_EQ(leader_blob.value(), follower_blob.value());

  receiver.Stop();
  sender.Stop();

  // ...including through the follower's own on-disk log after a "kill".
  ReplicatedLog follower_reopened(follower_dir);
  ASSERT_TRUE(follower_reopened.Open().ok());
  auto follower_replayed = follower_reopened.Replay(&kMetric, &kJones);
  ASSERT_TRUE(follower_replayed.ok());
  auto reopened_blob = follower_replayed.value().CheckpointAll();
  ASSERT_TRUE(reopened_blob.ok());
  EXPECT_EQ(leader_blob.value(), reopened_blob.value());
}

TEST(TransportTest, ThreeFaultInjectedFollowersAllConvergeByteEqual) {
  // One leader fanning to three independent followers through a single
  // sender, with the shared fault schedule mangling frames across all
  // three connections: every follower must still reach the same byte-equal
  // checkpoint, each through its own drop/resync history.
  const auto stream = KeyedStream(360, 149);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(FreshDir("fanout_leader"));
  ASSERT_TRUE(log.Open().ok());
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
  }
  ASSERT_TRUE(log.Capture(&leader).ok());

  FaultInjector::Options fault_options;
  fault_options.seed = 4321;
  fault_options.drop_prob = 0.30;
  fault_options.corrupt_prob = 0.20;
  fault_options.truncate_prob = 0.10;
  fault_options.max_faults = 12;
  FaultInjector injector(fault_options);

  LogSender::Options sender_options;
  sender_options.unix_socket_path = SocketPath("fanout");
  sender_options.heartbeat_interval = std::chrono::milliseconds(10);
  sender_options.poll_interval = std::chrono::milliseconds(2);
  sender_options.fault_injector = &injector;
  LogSender sender(&log, sender_options);
  ASSERT_TRUE(sender.Start().ok());

  constexpr int kFollowers = 3;
  std::vector<std::unique_ptr<LogReceiver>> receivers;
  for (int f = 0; f < kFollowers; ++f) {
    LogReceiver::Options receiver_options;
    receiver_options.unix_socket_path = sender_options.unix_socket_path;
    receiver_options.receive_timeout = std::chrono::milliseconds(200);
    receiver_options.initial_backoff = std::chrono::milliseconds(2);
    receiver_options.max_backoff = std::chrono::milliseconds(50);
    receiver_options.backoff_seed = 1000 + f;  // decorrelated reconnects
    receivers.push_back(std::make_unique<LogReceiver>(&kMetric, &kJones,
                                                      receiver_options));
    ASSERT_TRUE(receivers.back()->Start().ok()) << "follower " << f;
  }

  for (size_t tranche = 1; tranche < 6; ++tranche) {
    for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    ASSERT_TRUE(log.Capture(&leader).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const int64_t want = 1 + static_cast<int64_t>(log.chain_length());
  auto leader_fleet = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(leader_fleet.ok());
  auto leader_blob = leader_fleet.value().CheckpointAll();
  ASSERT_TRUE(leader_blob.ok());
  for (int f = 0; f < kFollowers; ++f) {
    const auto bound = AwaitConverged(receivers[f].get(), want);
    ASSERT_TRUE(bound.has_fleet) << "follower " << f;
    ASSERT_EQ(bound.entries_behind, 0)
        << "follower " << f << " never converged";
    EXPECT_EQ(bound.applied_generation, log.generation()) << "follower " << f;
    auto follower_blob = receivers[f]->CheckpointAll();
    ASSERT_TRUE(follower_blob.ok()) << "follower " << f;
    EXPECT_EQ(leader_blob.value(), follower_blob.value())
        << "follower " << f << " diverged from the leader";
    EXPECT_EQ(receivers[f]->QueryAll().size(), 3u) << "follower " << f;
  }

  // The shared schedule exhausted its budget across the fan-out, so the
  // convergence above was earned through real resyncs, not a quiet link.
  const auto counters = injector.counters();
  EXPECT_EQ(counters.frames_dropped + counters.frames_corrupted +
                counters.frames_truncated + counters.frames_delayed,
            12);

  for (auto& receiver : receivers) receiver->Stop();
  sender.Stop();
}

TEST(TransportTest, ReceiverOutlivesAbsentLeaderAndBacksOff) {
  LogReceiver::Options options;
  options.unix_socket_path = SocketPath("nobody_home");
  options.initial_backoff = std::chrono::milliseconds(1);
  options.max_backoff = std::chrono::milliseconds(10);
  LogReceiver receiver(&kMetric, &kJones, options);
  ASSERT_TRUE(receiver.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto bound = receiver.staleness();
  EXPECT_FALSE(bound.connected);
  EXPECT_FALSE(bound.has_fleet);
  EXPECT_TRUE(receiver.QueryAll().empty());
  EXPECT_EQ(receiver.CheckpointAll().status().code(),
            StatusCode::kFailedPrecondition);
  receiver.Stop();  // must join promptly despite the dial loop
}

TEST(TransportTest, TcpLoopbackAlsoConverges) {
  const auto stream = KeyedStream(120, 139);
  ShardManager leader(ManagerOptions(), kConstraint, &kMetric, &kJones);
  ReplicatedLog log(FreshDir("tcp_leader"));
  ASSERT_TRUE(log.Open().ok());
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
  }
  ASSERT_TRUE(log.Capture(&leader).ok());

  LogSender::Options sender_options;  // tcp_port = 0: ephemeral
  sender_options.heartbeat_interval = std::chrono::milliseconds(20);
  LogSender sender(&log, sender_options);
  ASSERT_TRUE(sender.Start().ok());
  ASSERT_GT(sender.port(), 0);

  LogReceiver::Options receiver_options;
  receiver_options.tcp_port = sender.port();
  receiver_options.initial_backoff = std::chrono::milliseconds(2);
  LogReceiver receiver(&kMetric, &kJones, receiver_options);
  ASSERT_TRUE(receiver.Start().ok());
  const auto bound = AwaitConverged(&receiver, 1);
  ASSERT_TRUE(bound.has_fleet);
  EXPECT_EQ(bound.entries_behind, 0);
  receiver.Stop();
  sender.Stop();
}

#endif  // !_WIN32

// --- common/fs_util satellites. ---

TEST(FsUtilTest, RemoveFileDurableHandlesPresentAndAbsent) {
  const std::string dir = FreshDir("rm_durable");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/victim";
  ASSERT_TRUE(WriteFileAtomic(path, "bytes").ok());
  ASSERT_TRUE(RemoveFileDurable(path).ok());
  EXPECT_FALSE(fs::exists(path));
  // Absent file: OK (idempotent), and no directory sync is attempted.
  EXPECT_TRUE(RemoveFileDurable(path).ok());
  EXPECT_TRUE(SyncDirectory(dir).ok());
  EXPECT_FALSE(SyncDirectory(dir + "/no_such_subdir").ok());
}

}  // namespace
}  // namespace serving
}  // namespace fkc
