// Concurrency contract of the two-level-locked ShardManager: a fleet
// hammered from many threads at once — per-tenant ingest clients, fleet
// QueryAll scans, tenant-option registration, and eviction sweeps — ends in
// EXACTLY the state of a serially built fleet with the same per-tenant
// arrival order (byte-equal CheckpointAll), because per-shard state depends
// only on that shard's own arrival sequence, never on cross-shard
// interleaving, and eviction/rehydration is bit-exact.
//
// Shutdown contract: the maintenance thread can be destroyed mid-tick,
// stopped from its own tick hook and then restarted, and stopped from many
// threads at once, without deadlock or double-join.
//
// LRU-index contract: a FAILED rehydration (corrupt spill blob) leaves the
// shard spilled and the LRU index without a stale entry for it — a later
// sweep neither crashes nor resurrects it, and repairing the blob restores
// the shard bit-exactly.
//
// The whole file is also the TSan workload: every test runs real threads
// against one manager, so a data race anywhere in the serving layer
// surfaces here under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"
#include "serving/spill_store.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const ColorConstraint kConstraint({2, 1, 1});

serving::ShardManagerOptions Options(int num_threads) {
  serving::ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.num_threads = num_threads;
  return options;
}

std::string TenantKey(int t) { return "tenant-" + std::to_string(t); }

// One tenant's arrival sequence, fully determined by its seed.
std::vector<Point> TenantArrivals(int tenant, int n) {
  Rng rng(0x5eed0000 + static_cast<uint64_t>(tenant));
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back(Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                           static_cast<int>(rng.NextBounded(3))));
  }
  return points;
}

std::string MustCheckpoint(serving::ShardManager* manager) {
  auto blob = manager->CheckpointAll();
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  return blob.ValueOr("");
}

bool SameSolution(const ObjectiveSolution& a, const ObjectiveSolution& b) {
  if (a.value != b.value || a.centers.size() != b.centers.size()) {
    return false;
  }
  for (size_t i = 0; i < a.centers.size(); ++i) {
    if (a.centers[i].coords != b.centers[i].coords ||
        a.centers[i].color != b.centers[i].color) {
      return false;
    }
  }
  return true;
}

// --- The headline stress test: concurrent fleet == serial fleet. -------

TEST(ServingConcurrencyTest, StressEqualsSeriallyBuiltFleet) {
  constexpr int kTenants = 6;
  constexpr int kPerTenant = 2500;
  constexpr int kBatch = 16;
  constexpr int kFutureTenants = 8;  // override-only keys, never ingested

  std::vector<std::vector<Point>> arrivals;
  arrivals.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    arrivals.push_back(TenantArrivals(t, kPerTenant));
  }
  SlidingWindowOptions override_options = Options(1).window;
  override_options.window_size = 30;  // distinct from the template

  serving::ShardManager concurrent(Options(2), kConstraint, &kMetric,
                                   &kJones);
  std::atomic<bool> done{false};

  // Fleet scans: every answer must be valid mid-flight, not only at the
  // end (a torn read would surface as a failed solve or a wrong count).
  std::thread scanner([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const serving::ShardAnswer& answer : concurrent.QueryAll()) {
        ASSERT_TRUE(answer.solution.ok())
            << answer.key << ": " << answer.solution.status().ToString();
      }
      std::this_thread::yield();
    }
  });
  // Option registration races with everything; the key set is fixed, so
  // the final override table is deterministic no matter how many rounds
  // this thread completes.
  std::thread registrar([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (int f = 0; f < kFutureTenants; ++f) {
        const Status status = concurrent.SetTenantOptions(
            "future-" + std::to_string(f), override_options);
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
      std::this_thread::yield();
    }
  });
  // Eviction sweeps force mid-run spill/rehydrate cycles; bit-exact
  // rehydration is what keeps the final state independent of them.
  std::thread sweeper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      Status spill_status;
      concurrent.EvictIdle(/*idle_ttl=*/kBatch, &spill_status);
      ASSERT_TRUE(spill_status.ok()) << spill_status.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string key = TenantKey(t);
      for (int start = 0; start < kPerTenant; start += kBatch) {
        std::vector<serving::KeyedPoint> batch;
        for (int i = start; i < std::min(kPerTenant, start + kBatch); ++i) {
          batch.push_back({key, arrivals[static_cast<size_t>(t)]
                                    [static_cast<size_t>(i)]});
        }
        const Status status = concurrent.IngestBatch(std::move(batch));
        ASSERT_TRUE(status.ok()) << status.ToString();
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& client : clients) client.join();
  done.store(true, std::memory_order_relaxed);
  scanner.join();
  registrar.join();
  sweeper.join();

  // The reference fleet: same per-tenant sequences, one thread, no
  // eviction, no scans.
  serving::ShardManager serial(Options(1), kConstraint, &kMetric, &kJones);
  for (int f = 0; f < kFutureTenants; ++f) {
    ASSERT_TRUE(serial
                    .SetTenantOptions("future-" + std::to_string(f),
                                      override_options)
                    .ok());
  }
  for (int t = 0; t < kTenants; ++t) {
    const std::string key = TenantKey(t);
    for (const Point& p : arrivals[static_cast<size_t>(t)]) {
      ASSERT_TRUE(serial.Ingest(key, p).ok());
    }
  }

  EXPECT_EQ(MustCheckpoint(&concurrent), MustCheckpoint(&serial));

  const auto concurrent_answers = concurrent.QueryAll();
  const auto serial_answers = serial.QueryAll();
  ASSERT_EQ(concurrent_answers.size(), serial_answers.size());
  for (size_t i = 0; i < serial_answers.size(); ++i) {
    EXPECT_EQ(concurrent_answers[i].key, serial_answers[i].key);
    ASSERT_TRUE(concurrent_answers[i].solution.ok());
    ASSERT_TRUE(serial_answers[i].solution.ok());
    EXPECT_TRUE(SameSolution(concurrent_answers[i].solution.value(),
                             serial_answers[i].solution.value()))
        << "diverged on " << serial_answers[i].key;
  }
}

// Single-point Ingest from many threads, same contract as the batched
// stress above but through the other ingest entry point.
TEST(ServingConcurrencyTest, ConcurrentIngestMatchesSerial) {
  constexpr int kTenants = 8;
  constexpr int kPerTenant = 150;

  std::vector<std::vector<Point>> arrivals;
  arrivals.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    arrivals.push_back(TenantArrivals(100 + t, kPerTenant));
  }

  serving::ShardManager concurrent(Options(1), kConstraint, &kMetric,
                                   &kJones);
  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string key = TenantKey(t);
      for (const Point& p : arrivals[static_cast<size_t>(t)]) {
        ASSERT_TRUE(concurrent.Ingest(key, p).ok());
      }
    });
  }
  for (std::thread& client : clients) client.join();

  serving::ShardManager serial(Options(1), kConstraint, &kMetric, &kJones);
  for (int t = 0; t < kTenants; ++t) {
    const std::string key = TenantKey(t);
    for (const Point& p : arrivals[static_cast<size_t>(t)]) {
      ASSERT_TRUE(serial.Ingest(key, p).ok());
    }
  }
  EXPECT_EQ(MustCheckpoint(&concurrent), MustCheckpoint(&serial));
}

// --- Cross-stripe stress: striping must be invisible in the bytes. ------

// Racing clients whose key sets deliberately span every stripe (client c
// owns keys k with k % kClients == c, so each of its batches scatters
// across stripes), plus a thread hammering CheckpointAll mid-flight, at
// several stripe counts including the degenerate 1. The final checkpoint
// must be byte-equal to a serially built single-stripe fleet, and every
// stripe's pin count must be back to zero once the dust settles — a leaked
// pin would exempt a shard from eviction forever.
TEST(ServingConcurrencyTest, CrossStripeStressByteEqualAtEveryStripeCount) {
  constexpr int kClients = 4;
  constexpr int kKeys = 24;
  constexpr int kRounds = 120;  // arrivals per key

  std::vector<std::vector<Point>> arrivals;
  arrivals.reserve(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    arrivals.push_back(TenantArrivals(500 + k, kRounds));
  }
  auto key_name = [](int k) { return "xkey-" + std::to_string(k); };

  serving::ShardManagerOptions serial_options = Options(1);
  serial_options.num_stripes = 1;
  serving::ShardManager serial(serial_options, kConstraint, &kMetric,
                               &kJones);
  for (int k = 0; k < kKeys; ++k) {
    for (const Point& p : arrivals[static_cast<size_t>(k)]) {
      ASSERT_TRUE(serial.Ingest(key_name(k), p).ok());
    }
  }
  const std::string reference = MustCheckpoint(&serial);

  for (int stripe_count : {1, 4, 16}) {
    serving::ShardManagerOptions options = Options(2);
    options.num_stripes = stripe_count;
    serving::ShardManager manager(options, kConstraint, &kMetric, &kJones);
    ASSERT_EQ(manager.num_stripes(), stripe_count);

    // Fleet snapshots race the cross-stripe ingest; every mid-flight
    // checkpoint must at least be well-formed (a torn pin or a stripe
    // acquired out of order would deadlock or fail here).
    std::atomic<bool> done{false};
    std::thread checkpointer([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto blob = manager.CheckpointAll();
        ASSERT_TRUE(blob.ok()) << blob.status().ToString();
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRounds; ++r) {
          // One point for every owned key: a single batch that the striped
          // grouping phase must scatter across stripes and reassemble.
          std::vector<serving::KeyedPoint> batch;
          for (int k = c; k < kKeys; k += kClients) {
            batch.push_back({key_name(k),
                             arrivals[static_cast<size_t>(k)]
                                     [static_cast<size_t>(r)]});
          }
          const Status status = manager.IngestBatch(std::move(batch));
          ASSERT_TRUE(status.ok()) << status.ToString();
        }
      });
    }
    for (std::thread& client : clients) client.join();
    done.store(true, std::memory_order_relaxed);
    checkpointer.join();

    const std::vector<int64_t> pins = manager.StripePins();
    ASSERT_EQ(pins.size(), static_cast<size_t>(stripe_count));
    for (size_t s = 0; s < pins.size(); ++s) {
      EXPECT_EQ(pins[s], 0) << "leaked pin in stripe " << s;
    }

    EXPECT_EQ(MustCheckpoint(&manager), reference)
        << "diverged at num_stripes=" << stripe_count;
  }
}

// --- Shutdown races. ---------------------------------------------------

TEST(ServingConcurrencyTest, DestroyMidTick) {
  auto manager = std::make_unique<serving::ShardManager>(
      Options(1), kConstraint, &kMetric, &kJones);
  for (const Point& p : TenantArrivals(7, 50)) {
    ASSERT_TRUE(manager->Ingest("tenant", p).ok());
  }
  std::atomic<int> ticks{0};
  serving::MaintenanceOptions maintenance;
  maintenance.cadence = std::chrono::milliseconds(1);
  maintenance.idle_ttl = 1 << 20;  // sweeps scan but spill nothing
  maintenance.on_tick = [&](const serving::MaintenanceTickReport& report) {
    ASSERT_TRUE(report.status.ok()) << report.status.ToString();
    ticks.fetch_add(1);
    // Stretch the tick so destruction almost certainly lands mid-tick.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  ASSERT_TRUE(manager->StartMaintenance(maintenance).ok());
  while (ticks.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The destructor must stop the thread cleanly however far into a tick
  // (or the hook) it is.
  manager.reset();
}

TEST(ServingConcurrencyTest, StopFromHookThenRestart) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("tenant", Point({1.0, 2.0}, 0)).ok());

  std::atomic<int> ticks{0};
  serving::MaintenanceOptions maintenance;
  maintenance.cadence = std::chrono::milliseconds(1);
  maintenance.on_tick = [&](const serving::MaintenanceTickReport&) {
    ticks.fetch_add(1);
    manager.StopMaintenance();  // self-stop: the loop exits after this tick
  };
  ASSERT_TRUE(manager.StartMaintenance(maintenance).ok());
  while (manager.maintenance_running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ticks.load(), 1);

  // The exited-but-unjoined thread must be reaped by the next Start, and a
  // plain Stop must still work after it.
  maintenance.on_tick = [&](const serving::MaintenanceTickReport&) {
    ticks.fetch_add(1);
  };
  ASSERT_TRUE(manager.StartMaintenance(maintenance).ok());
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.StopMaintenance();
  EXPECT_FALSE(manager.maintenance_running());
}

TEST(ServingConcurrencyTest, ConcurrentStops) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("tenant", Point({1.0, 2.0}, 0)).ok());
  serving::MaintenanceOptions maintenance;
  maintenance.cadence = std::chrono::milliseconds(1);
  ASSERT_TRUE(manager.StartMaintenance(maintenance).ok());

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { manager.StopMaintenance(); });
  }
  for (std::thread& stopper : stoppers) stopper.join();
  EXPECT_FALSE(manager.maintenance_running());
  // And the manager is still fully usable.
  ASSERT_TRUE(manager.Ingest("tenant", Point({3.0, 4.0}, 1)).ok());
  ASSERT_TRUE(manager.StartMaintenance(maintenance).ok());
  manager.StopMaintenance();
}

// --- LRU-index consistency after a failed rehydration. ------------------

TEST(ServingConcurrencyTest, FailedRehydrationLeavesLruConsistent) {
  auto store = std::make_shared<serving::InMemorySpillStore>();
  serving::ShardManagerOptions options = Options(1);
  options.spill_store = store;
  serving::ShardManager manager(options, kConstraint, &kMetric, &kJones);

  for (const Point& p : TenantArrivals(1, 80)) {
    ASSERT_TRUE(manager.Ingest("tenant-a", p).ok());
  }
  for (const Point& p : TenantArrivals(2, 80)) {
    ASSERT_TRUE(manager.Ingest("tenant-b", p).ok());
  }
  // QueryAll reads are ephemeral (no touch), so this records tenant-a's
  // expected answer without refreshing its LRU position.
  const auto before = manager.QueryAll();
  ASSERT_EQ(before.size(), 2u);
  ASSERT_TRUE(before[0].solution.ok());

  // tenant-a (staler than tenant-b) spills; tenant-b was touched at the
  // current clock and stays live.
  ASSERT_EQ(manager.EvictIdle(0), 1);

  auto good = store->Get("tenant-a");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_TRUE(store->Put("tenant-a", "corrupt garbage").ok());

  // The touch-then-rehydrate must FAIL without leaving a stale LRU entry
  // or a half-live shard behind.
  EXPECT_FALSE(manager.Query("tenant-a").ok());

  // A sweep right after the failure: tenant-a is spilled (not a candidate)
  // and tenant-b is current; nothing to do, nothing to trip over.
  Status spill_status;
  EXPECT_EQ(manager.EvictIdle(0, &spill_status), 0);
  EXPECT_TRUE(spill_status.ok()) << spill_status.ToString();

  // Repairing the blob restores the tenant bit-exactly.
  ASSERT_TRUE(store->Put("tenant-a", good.value()).ok());
  auto repaired = manager.Query("tenant-a");
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(SameSolution(repaired.value(), before[0].solution.value()));

  // And the rehydration re-inserted a correct LRU entry: tenant-a is now
  // the freshest touch, so an idle sweep spills tenant-b first.
  for (const Point& p : TenantArrivals(3, 5)) {
    ASSERT_TRUE(manager.Ingest("tenant-a", p).ok());
  }
  ASSERT_EQ(manager.EvictIdle(0), 1);
  auto spilled_b = store->Get("tenant-b");
  EXPECT_TRUE(spilled_b.ok()) << "tenant-b should be the spilled one";
}

}  // namespace
}  // namespace fkc
