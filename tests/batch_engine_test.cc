// The batched, multi-threaded update engine: DistanceMany kernels must be
// bit-identical to the scalar path, UpdateBatch must be equivalent to N
// sequential Updates, and the parallel ladder must produce bit-identical
// state and answers at every thread count, in both operating modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/fair_center_sliding_window.h"
#include "metric/counting_metric.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kEuclidean;
const JonesFairCenter kJones;

std::vector<Point> RandomPoints(int n, int dim, uint64_t seed, int ell = 2) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    Coordinates coords(dim);
    for (double& x : coords) x = rng.NextUniform(-100.0, 100.0);
    points.push_back(
        Point(std::move(coords), static_cast<int>(rng.NextBounded(ell))));
  }
  return points;
}

// --- Metric layer: batched kernels. ---

TEST(DistanceManyTest, BitIdenticalToScalarForAllMetrics) {
  const EuclideanMetric euclidean;
  const ManhattanMetric manhattan;
  const ChebyshevMetric chebyshev;
  for (const Metric* metric : std::initializer_list<const Metric*>{
           &euclidean, &manhattan, &chebyshev}) {
    for (int dim : {1, 2, 3, 7, 54}) {
      // Counts cover the empty, odd, and even tails of the interleaved loop.
      for (int count : {0, 1, 2, 3, 8, 17}) {
        const auto pool = RandomPoints(count + 1, dim, 1000 + dim + count);
        const Point& p = pool[0];
        std::vector<const Point*> ptrs;
        for (int i = 1; i <= count; ++i) ptrs.push_back(&pool[i]);
        std::vector<double> batched(count, -1.0);
        metric->DistanceMany(p, ptrs.data(), count, batched.data());
        for (int i = 0; i < count; ++i) {
          // EXPECT_EQ, not NEAR: the contract is bit-identical results.
          EXPECT_EQ(batched[i], metric->Distance(p, *ptrs[i]))
              << metric->Name() << " dim=" << dim << " i=" << i;
        }
      }
    }
  }
}

TEST(DistanceManyTest, DefaultImplementationMatchesScalar) {
  // A metric that does not override DistanceMany gets the scalar loop.
  class HammingLike final : public Metric {
   public:
    double Distance(const Point& a, const Point& b) const override {
      double mismatches = 0.0;
      for (size_t i = 0; i < a.coords.size(); ++i) {
        if (a.coords[i] != b.coords[i]) mismatches += 1.0;
      }
      return mismatches;
    }
    std::string Name() const override { return "hamming-like"; }
  };
  HammingLike metric;
  const auto pool = RandomPoints(6, 4, 77);
  std::vector<const Point*> ptrs;
  for (size_t i = 1; i < pool.size(); ++i) ptrs.push_back(&pool[i]);
  std::vector<double> out(ptrs.size());
  metric.DistanceMany(pool[0], ptrs.data(), ptrs.size(), out.data());
  for (size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(out[i], metric.Distance(pool[0], *ptrs[i]));
  }
}

TEST(DistanceManyTest, CountingMetricCountsEveryPairExactly) {
  CountingMetric counting(&kEuclidean);
  const auto pool = RandomPoints(9, 3, 5);
  std::vector<const Point*> ptrs;
  for (size_t i = 1; i < pool.size(); ++i) ptrs.push_back(&pool[i]);
  std::vector<double> out(ptrs.size());
  counting.DistanceMany(pool[0], ptrs.data(), ptrs.size(), out.data());
  EXPECT_EQ(counting.count(), static_cast<int64_t>(ptrs.size()));
  for (size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(out[i], kEuclidean.Distance(pool[0], *ptrs[i]));
  }
  counting.Reset();
  EXPECT_EQ(counting.count(), 0);
}

// --- Thread pool. ---

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr int kCount = 997;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, [&](int64_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;  // no synchronization: must run on this thread
  pool.ParallelFor(100, [&](int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

// Work sharing: many external threads submit overlapping ParallelFor calls
// to ONE pool. Every iteration of every job still runs exactly once, every
// call returns only after its own job is complete, and the pool survives
// the churn — the scenario the striped serving layer creates when multiple
// client batches fan out concurrently.
TEST(ThreadPoolTest, ConcurrentCallersShareWorkers) {
  ThreadPool pool(3);
  constexpr int kCallers = 6;
  constexpr int kJobsPerCaller = 20;
  constexpr int kCount = 257;

  std::vector<std::atomic<int>> hits(kCallers * kCount);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kJobsPerCaller; ++round) {
        std::atomic<int> mine{0};
        pool.ParallelFor(kCount, [&, c](int64_t i) {
          if (round == kJobsPerCaller - 1) {
            hits[static_cast<size_t>(c * kCount + i)].fetch_add(
                1, std::memory_order_relaxed);
          }
          mine.fetch_add(1, std::memory_order_relaxed);
        });
        // The job must be fully drained before ParallelFor returns, even
        // while other callers' jobs are interleaved on the same workers.
        ASSERT_EQ(mine.load(), kCount) << "caller " << c;
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (int c = 0; c < kCallers; ++c) {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(c * kCount + i)].load(), 1)
          << "caller " << c << " i=" << i;
    }
  }
  // Workers must end up running iterations too. The racing phase above
  // usually suffices, but on an oversubscribed single-core host the callers
  // can in principle win every claim; a job whose iterations block makes
  // worker pickup certain (the caller sleeps inside its own iteration while
  // the workers claim the rest).
  pool.ParallelFor(64, [](int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_GT(pool.worker_iterations(), 0);
}

// --- UpdateBatch / thread-count equivalence. ---

SlidingWindowOptions EngineOptions(bool adaptive, int num_threads,
                                   CoreVariant variant = CoreVariant::kFull) {
  SlidingWindowOptions options;
  options.window_size = 120;
  options.delta = 1.0;
  options.variant = variant;
  options.adaptive_range = adaptive;
  if (!adaptive) {
    options.d_min = 0.5;
    options.d_max = 500.0;
  }
  options.num_threads = num_threads;
  return options;
}

// Feeds `points` one by one (reference execution).
FairCenterSlidingWindow RunSequential(const SlidingWindowOptions& options,
                                      const ColorConstraint& constraint,
                                      const std::vector<Point>& points) {
  FairCenterSlidingWindow window(options, constraint, &kEuclidean, &kJones);
  for (const Point& p : points) window.Update(p);
  return window;
}

// Feeds `points` in batches of `batch_size`.
FairCenterSlidingWindow RunBatched(const SlidingWindowOptions& options,
                                   const ColorConstraint& constraint,
                                   const std::vector<Point>& points,
                                   size_t batch_size) {
  FairCenterSlidingWindow window(options, constraint, &kEuclidean, &kJones);
  size_t i = 0;
  while (i < points.size()) {
    const size_t end = std::min(points.size(), i + batch_size);
    window.UpdateBatch(
        std::vector<Point>(points.begin() + i, points.begin() + end));
    i = end;
  }
  return window;
}

void ExpectIdentical(FairCenterSlidingWindow& expected,
                     FairCenterSlidingWindow& actual, const char* label) {
  EXPECT_EQ(expected.SerializeState(), actual.SerializeState()) << label;
  auto expected_solution = expected.Query();
  auto actual_solution = actual.Query();
  ASSERT_TRUE(expected_solution.ok()) << label;
  ASSERT_TRUE(actual_solution.ok()) << label;
  EXPECT_EQ(expected_solution.value().radius, actual_solution.value().radius)
      << label;
  const auto& expected_centers = expected_solution.value().centers;
  const auto& actual_centers = actual_solution.value().centers;
  ASSERT_EQ(expected_centers.size(), actual_centers.size()) << label;
  for (size_t i = 0; i < expected_centers.size(); ++i) {
    EXPECT_EQ(expected_centers[i].coords, actual_centers[i].coords) << label;
    EXPECT_EQ(expected_centers[i].color, actual_centers[i].color) << label;
  }
}

TEST(UpdateBatchTest, EquivalentToSequentialUpdatesFixedRange) {
  const ColorConstraint constraint({2, 2});
  const auto points = RandomPoints(400, 2, 31);
  const auto options = EngineOptions(/*adaptive=*/false, /*num_threads=*/1);
  auto sequential = RunSequential(options, constraint, points);
  for (size_t batch_size : {1u, 7u, 64u, 400u}) {
    auto batched = RunBatched(options, constraint, points, batch_size);
    ExpectIdentical(sequential, batched,
                    ("fixed batch=" + std::to_string(batch_size)).c_str());
  }
}

TEST(UpdateBatchTest, EquivalentToSequentialUpdatesAdaptive) {
  const ColorConstraint constraint({2, 2});
  const auto points = RandomPoints(400, 2, 37);
  const auto options = EngineOptions(/*adaptive=*/true, /*num_threads=*/1);
  auto sequential = RunSequential(options, constraint, points);
  for (size_t batch_size : {3u, 50u}) {
    auto batched = RunBatched(options, constraint, points, batch_size);
    ExpectIdentical(sequential, batched,
                    ("adaptive batch=" + std::to_string(batch_size)).c_str());
  }
}

TEST(ThreadInvarianceTest, FixedRangeBitIdenticalAcrossThreadCounts) {
  const ColorConstraint constraint({2, 2});
  const auto points = RandomPoints(500, 3, 41);
  auto reference = RunSequential(
      EngineOptions(/*adaptive=*/false, /*num_threads=*/1), constraint,
      points);
  for (int threads : {2, 4}) {
    auto options = EngineOptions(/*adaptive=*/false, threads);
    auto parallel_updates = RunSequential(options, constraint, points);
    ExpectIdentical(reference, parallel_updates, "fixed per-arrival");
    auto parallel_batches = RunBatched(options, constraint, points, 32);
    ExpectIdentical(reference, parallel_batches, "fixed batched");
  }
}

TEST(ThreadInvarianceTest, AdaptiveBitIdenticalAcrossThreadCounts) {
  const ColorConstraint constraint({2, 1});
  const auto points = RandomPoints(500, 3, 43);
  auto reference = RunSequential(
      EngineOptions(/*adaptive=*/true, /*num_threads=*/1), constraint, points);
  for (int threads : {2, 4}) {
    auto options = EngineOptions(/*adaptive=*/true, threads);
    auto parallel_updates = RunSequential(options, constraint, points);
    ExpectIdentical(reference, parallel_updates, "adaptive per-arrival");
    auto parallel_batches = RunBatched(options, constraint, points, 32);
    ExpectIdentical(reference, parallel_batches, "adaptive batched");
  }
}

TEST(ThreadInvarianceTest, ValidationOnlyVariantBitIdentical) {
  const ColorConstraint constraint({3, 2});
  const auto points = RandomPoints(400, 2, 47);
  auto reference = RunSequential(
      EngineOptions(/*adaptive=*/true, /*num_threads=*/1,
                    CoreVariant::kValidationOnly),
      constraint, points);
  auto options = EngineOptions(/*adaptive=*/true, /*num_threads=*/4,
                               CoreVariant::kValidationOnly);
  auto parallel = RunBatched(options, constraint, points, 25);
  ExpectIdentical(reference, parallel, "validation-only");
}

}  // namespace
}  // namespace fkc
