// Tests for the attractor building blocks: per-color capped representative
// sets, expiry semantics, and the Cleanup threshold filters.
#include <gtest/gtest.h>

#include "core/attractor_set.h"

namespace fkc {
namespace {

Point At(double x, int color, int64_t arrival) {
  Point p({x}, color);
  p.arrival = arrival;
  p.id = static_cast<uint64_t>(arrival);
  return p;
}

TEST(AttractorEntryTest, CountColor) {
  AttractorEntry entry{At(0, 0, 1), {At(1, 0, 2), At(2, 1, 3), At(3, 0, 4)}};
  EXPECT_EQ(CountColor(entry, 0), 2);
  EXPECT_EQ(CountColor(entry, 1), 1);
  EXPECT_EQ(CountColor(entry, 2), 0);
}

TEST(AddRepresentativeTest, UnderCapJustAppends) {
  AttractorEntry entry{At(0, 0, 1), {}};
  AddRepresentativeWithCap(&entry, At(1, 0, 2), 2);
  AddRepresentativeWithCap(&entry, At(2, 0, 3), 2);
  EXPECT_EQ(entry.representatives.size(), 2u);
}

TEST(AddRepresentativeTest, OverCapEvictsOldestOfSameColor) {
  AttractorEntry entry{At(0, 0, 1), {}};
  AddRepresentativeWithCap(&entry, At(1, 0, 2), 2);
  AddRepresentativeWithCap(&entry, At(2, 1, 3), 2);  // other color untouched
  AddRepresentativeWithCap(&entry, At(3, 0, 4), 2);
  AddRepresentativeWithCap(&entry, At(4, 0, 5), 2);  // evicts arrival 2
  ASSERT_EQ(entry.representatives.size(), 3u);
  for (const Point& rep : entry.representatives) {
    EXPECT_NE(rep.arrival, 2);
  }
  EXPECT_EQ(CountColor(entry, 0), 2);
  EXPECT_EQ(CountColor(entry, 1), 1);
}

TEST(AddRepresentativeTest, CapOneKeepsMostRecent) {
  AttractorEntry entry{At(0, 0, 1), {}};
  for (int64_t t = 2; t <= 10; ++t) {
    AddRepresentativeWithCap(&entry, At(t, 0, t), 1);
  }
  ASSERT_EQ(entry.representatives.size(), 1u);
  EXPECT_EQ(entry.representatives[0].arrival, 10);
}

TEST(ExpireEntriesTest, ExpiredAttractorOrphansLiveReps) {
  std::vector<AttractorEntry> entries;
  // Attractor arrived at t=1, reps at 5 and 6. Window n=10, now=11:
  // attractor TTL = 10-(11-1) = 0 -> expired; reps still active.
  entries.push_back({At(0, 0, 1), {At(1, 0, 5), At(2, 0, 6)}});
  // Attractor at t=8 survives.
  entries.push_back({At(9, 0, 8), {At(10, 0, 9)}});
  std::vector<Point> orphans;
  ExpireEntries(&entries, &orphans, /*now=*/11, /*window_size=*/10);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].attractor.arrival, 8);
  ASSERT_EQ(orphans.size(), 2u);
}

TEST(ExpireEntriesTest, ExpiredRepsAreDroppedNotOrphaned) {
  std::vector<AttractorEntry> entries;
  // Attractor and its only rep both expired.
  entries.push_back({At(0, 0, 1), {At(0, 0, 1)}});
  std::vector<Point> orphans;
  ExpireEntries(&entries, &orphans, /*now=*/11, /*window_size=*/10);
  EXPECT_TRUE(entries.empty());
  EXPECT_TRUE(orphans.empty());
}

TEST(ExpirePointsTest, DropsExactlyExpired) {
  // n=5, now=10: active iff arrival > 5.
  std::vector<Point> points = {At(0, 0, 4), At(1, 0, 5), At(2, 0, 6),
                               At(3, 0, 10)};
  ExpirePoints(&points, /*now=*/10, /*window_size=*/5);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].arrival, 6);
  EXPECT_EQ(points[1].arrival, 10);
}

TEST(DropEntriesOlderThanTest, KeepsNewRepsOfDroppedAttractor) {
  std::vector<AttractorEntry> entries;
  // Attractor at t=3 (below threshold 5); reps at 4 (dropped) and 7 (kept).
  entries.push_back({At(0, 0, 3), {At(1, 0, 4), At(2, 0, 7)}});
  entries.push_back({At(9, 0, 6), {At(10, 0, 8)}});
  std::vector<Point> orphans;
  DropEntriesOlderThan(&entries, &orphans, /*threshold=*/5);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].attractor.arrival, 6);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].arrival, 7);
}

TEST(DropPointsOlderThanTest, StrictThreshold) {
  std::vector<Point> points = {At(0, 0, 4), At(1, 0, 5), At(2, 0, 6)};
  DropPointsOlderThan(&points, /*threshold=*/5);
  // arrival < 5 dropped; arrival == 5 kept (TTL(q) < t_min is strict).
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].arrival, 5);
}

TEST(CountRepresentativesTest, SumsAcrossEntries) {
  std::vector<AttractorEntry> entries;
  entries.push_back({At(0, 0, 1), {At(1, 0, 2)}});
  entries.push_back({At(2, 0, 3), {At(3, 0, 4), At(4, 0, 5)}});
  EXPECT_EQ(CountRepresentatives(entries), 3);
}

TEST(AddRepresentativeTest, ZeroCapIsAProgrammingError) {
  AttractorEntry entry{At(0, 0, 1), {}};
  EXPECT_DEATH(AddRepresentativeWithCap(&entry, At(1, 0, 2), 0),
               "positive per-color caps");
}

}  // namespace
}  // namespace fkc
