// Tests for the sequential fair-center solvers (Jones, ChenEtAl,
// Kleindessner, brute force): feasibility, approximation guarantees against
// exact optima, matroid-generic behaviour, and edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "matroid/transversal.h"
#include "matroid/uniform_matroid.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/gonzalez.h"
#include "sequential/jones_fair_center.h"
#include "sequential/kleindessner.h"
#include "sequential/radius.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;

Point P(std::initializer_list<double> coords, int color) {
  return Point(Coordinates(coords), color);
}

std::vector<Point> RandomColored(int n, int dim, int ell, uint64_t seed,
                                 double side = 100.0) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    Coordinates coords(dim);
    for (double& x : coords) x = rng.NextUniform(0, side);
    points.emplace_back(std::move(coords),
                        static_cast<int>(rng.NextBounded(ell)));
  }
  return points;
}

TEST(RadiusTest, EmptyWindowAndEmptyCenters) {
  EXPECT_EQ(ClusteringRadius(kMetric, {}, {}), 0.0);
  EXPECT_TRUE(std::isinf(ClusteringRadius(kMetric, {P({0}, 0)}, {})));
}

TEST(RadiusTest, KnownRadiusAndAssignment) {
  const std::vector<Point> window = {P({0}, 0), P({4}, 0), P({10}, 0)};
  const std::vector<Point> centers = {P({0}, 0), P({10}, 0)};
  EXPECT_DOUBLE_EQ(ClusteringRadius(kMetric, window, centers), 4.0);
  EXPECT_EQ(AssignToCenters(kMetric, window, centers),
            (std::vector<int>{0, 0, 1}));
}

TEST(BruteForceTest, FindsExactOptimum) {
  // Two tight pairs; with one center per color the best radius is forced.
  const std::vector<Point> points = {P({0}, 0), P({1}, 1), P({10}, 0),
                                     P({11}, 1)};
  auto result = BruteForceFairCenter(kMetric, points, ColorConstraint({1, 1}));
  ASSERT_TRUE(result.ok());
  // One center near each pair, e.g. {0 (c0), 11 (c1)} -> radius 1.
  EXPECT_DOUBLE_EQ(result.value().radius, 1.0);
}

TEST(BruteForceTest, InfeasibleWhenAllCapsZero) {
  const std::vector<Point> points = {P({0}, 0)};
  auto result = BruteForceFairCenter(kMetric, points, ColorConstraint({0}));
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(BruteForceTest, EmptyInputGivesEmptySolution) {
  auto result = BruteForceFairCenter(kMetric, {}, ColorConstraint({1}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().centers.empty());
}

TEST(BruteForceTest, KCenterMatchesSingleColorFair) {
  const auto points = RandomColored(10, 2, 3, 5);
  auto unconstrained = BruteForceKCenter(kMetric, points, 3);
  std::vector<Point> monochrome = points;
  for (Point& p : monochrome) p.color = 0;
  auto fair = BruteForceFairCenter(kMetric, monochrome, ColorConstraint({3}));
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_TRUE(fair.ok());
  EXPECT_DOUBLE_EQ(unconstrained.value().radius, fair.value().radius);
}

// ---------------------------------------------------------------------------
// Per-solver behaviour.

TEST(JonesTest, EmptyInput) {
  const JonesFairCenter solver;
  auto result = solver.Solve(kMetric, {}, ColorConstraint({1}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().centers.empty());
}

TEST(JonesTest, RejectsOutOfRangeColors) {
  const JonesFairCenter solver;
  auto result = solver.Solve(kMetric, {P({0}, 5)}, ColorConstraint({1}));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(JonesTest, InfeasibleWithZeroCaps) {
  const JonesFairCenter solver;
  auto result =
      solver.Solve(kMetric, {P({0}, 0)}, ColorConstraint({0, 0}));
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(JonesTest, ColorCapForcesCrossColorCenter) {
  // Cluster A is all color 0, cluster B all color 1, caps {0 -> forbidden}:
  // wait, caps must stay >= 0; use cap {1,1} with two clusters of one color
  // each; then use cap {2,0}: color 1 cannot serve, so cluster B must be
  // covered from afar by a color-0 center.
  const std::vector<Point> points = {P({0}, 0), P({1}, 0), P({100}, 1),
                                     P({101}, 1)};
  const JonesFairCenter solver;
  auto capped = solver.Solve(kMetric, points, ColorConstraint({2, 0}));
  ASSERT_TRUE(capped.ok());
  for (const Point& c : capped.value().centers) EXPECT_EQ(c.color, 0);
  EXPECT_GE(capped.value().radius, 99.0);

  auto free = solver.Solve(kMetric, points, ColorConstraint({1, 1}));
  ASSERT_TRUE(free.ok());
  EXPECT_LE(free.value().radius, 1.0 + 1e-9);
}

TEST(JonesTest, SolutionsAlwaysFeasible) {
  const JonesFairCenter solver;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto points = RandomColored(60, 3, 4, seed);
    const ColorConstraint constraint({2, 1, 1, 2});
    auto result = solver.Solve(kMetric, points, constraint);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
    EXPECT_TRUE(std::isfinite(result.value().radius));
  }
}

TEST(ChenTest, EmptyInput) {
  const ChenMatroidCenter solver;
  auto result = solver.Solve(kMetric, {}, ColorConstraint({1}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().centers.empty());
}

TEST(ChenTest, SolutionsAlwaysFeasible) {
  const ChenMatroidCenter solver;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto points = RandomColored(40, 2, 3, seed);
    const ColorConstraint constraint({2, 2, 1});
    auto result = solver.Solve(kMetric, points, constraint);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
  }
}

TEST(ChenTest, GenericMatroidUniformEqualsKCenter) {
  // Matroid center under a uniform matroid is plain k-center: the 3-approx
  // must hold against the exact optimum.
  const auto points = RandomColored(12, 2, 1, 3);
  const UniformMatroid matroid(3, static_cast<int>(points.size()));
  auto chen = SolveMatroidCenter(kMetric, points, matroid);
  auto exact = BruteForceKCenter(kMetric, points, 3);
  ASSERT_TRUE(chen.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(chen.value().radius, 3.0 * exact.value().radius + 1e-9);
}

TEST(ChenTest, GenericTransversalMatroid) {
  // Centers must be matchable into 2 "facility licenses": left vertices
  // 0..5 (points), licenses granted by index parity.
  const auto points = RandomColored(6, 1, 1, 9);
  BipartiteGraph graph(6, 2);
  for (int i = 0; i < 6; ++i) graph.AddEdge(i, i % 2);
  const TransversalMatroid matroid(std::move(graph));
  auto result = SolveMatroidCenter(kMetric, points, matroid);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().centers.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.value().radius));
}

TEST(ChenTest, LadderModeStaysClose) {
  // Force the geometric-ladder candidate mode and compare to exact mode.
  const auto points = RandomColored(50, 2, 2, 13);
  const ColorConstraint constraint({2, 2});
  ChenOptions exact_options;
  ChenOptions ladder_options;
  ladder_options.exact_candidate_limit = 10;  // force ladder
  ladder_options.ladder_factor = 1.05;
  const ChenMatroidCenter exact_solver(exact_options);
  const ChenMatroidCenter ladder_solver(ladder_options);
  auto exact = exact_solver.Solve(kMetric, points, constraint);
  auto ladder = ladder_solver.Solve(kMetric, points, constraint);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(ladder.ok());
  EXPECT_LE(ladder.value().radius,
            1.2 * exact.value().radius + 1e-9);
}

TEST(KleindessnerTest, SolutionsAlwaysFeasible) {
  const KleindessnerFairCenter solver;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto points = RandomColored(60, 2, 3, seed);
    const ColorConstraint constraint({2, 2, 2});
    auto result = solver.Solve(kMetric, points, constraint);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
  }
}

TEST(KleindessnerTest, ShiftsWhenBudgetExhausted) {
  // Three far clusters, two of them purely color 0, caps {1, 2}: the greedy
  // must shift at least one pick to color 1.
  std::vector<Point> points;
  for (int i = 0; i < 5; ++i) points.push_back(P({0.0 + i * 0.1}, 0));
  for (int i = 0; i < 5; ++i) points.push_back(P({100.0 + i * 0.1}, 0));
  for (int i = 0; i < 5; ++i) points.push_back(P({200.0 + i * 0.1}, 1));
  const KleindessnerFairCenter solver;
  auto result = solver.Solve(kMetric, points, ColorConstraint({1, 2}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ColorConstraint({1, 2}).IsFeasible(result.value().centers));
}

// ---------------------------------------------------------------------------
// Approximation-guarantee property sweep: every 3-approx solver within
// 3 * OPT (+ tolerance) of the brute-force optimum on random instances.

struct ApproxCase {
  uint64_t seed;
  int n;
  int ell;
  std::vector<int> caps;
};

class SolverApproximationTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(SolverApproximationTest, JonesWithinThreeTimesOpt) {
  const ApproxCase& c = GetParam();
  const auto points = RandomColored(c.n, 2, c.ell, c.seed);
  const ColorConstraint constraint(c.caps);
  auto exact = BruteForceFairCenter(kMetric, points, constraint);
  ASSERT_TRUE(exact.ok());
  const JonesFairCenter jones;
  auto approx = jones.Solve(kMetric, points, constraint);
  ASSERT_TRUE(approx.ok());
  EXPECT_LE(approx.value().radius, 3.0 * exact.value().radius + 1e-9)
      << "seed=" << c.seed;
}

TEST_P(SolverApproximationTest, ChenWithinThreeTimesOpt) {
  const ApproxCase& c = GetParam();
  const auto points = RandomColored(c.n, 2, c.ell, c.seed);
  const ColorConstraint constraint(c.caps);
  auto exact = BruteForceFairCenter(kMetric, points, constraint);
  ASSERT_TRUE(exact.ok());
  const ChenMatroidCenter chen;
  auto approx = chen.Solve(kMetric, points, constraint);
  ASSERT_TRUE(approx.ok());
  EXPECT_LE(approx.value().radius, 3.0 * exact.value().radius + 1e-9)
      << "seed=" << c.seed;
}

TEST_P(SolverApproximationTest, KleindessnerWithinPublishedFactor) {
  const ApproxCase& c = GetParam();
  const auto points = RandomColored(c.n, 2, c.ell, c.seed);
  const ColorConstraint constraint(c.caps);
  auto exact = BruteForceFairCenter(kMetric, points, constraint);
  ASSERT_TRUE(exact.ok());
  const KleindessnerFairCenter solver;
  auto approx = solver.Solve(kMetric, points, constraint);
  ASSERT_TRUE(approx.ok());
  // Published factor: 3 * 2^(ell-1) - 1.
  const double factor = 3.0 * std::pow(2.0, c.ell - 1) - 1.0;
  EXPECT_LE(approx.value().radius, factor * exact.value().radius + 1e-9)
      << "seed=" << c.seed;
}

std::vector<ApproxCase> ApproxCases() {
  std::vector<ApproxCase> cases;
  uint64_t seed = 1;
  for (int rep = 0; rep < 6; ++rep) {
    cases.push_back({seed++, 12, 2, {1, 1}});
    cases.push_back({seed++, 14, 2, {2, 1}});
    cases.push_back({seed++, 12, 3, {1, 1, 1}});
    cases.push_back({seed++, 10, 4, {1, 1, 1, 1}});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverApproximationTest,
                         ::testing::ValuesIn(ApproxCases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Sanity: on instances where fairness is non-binding, fair solvers should
// not be much worse than unconstrained Gonzalez (they solve a harder
// problem, but OPT coincides when colors are abundant).
TEST(SolverComparisonTest, FairMatchesUnconstrainedWhenColorsAbundant) {
  const auto base = RandomColored(40, 2, 1, 21);
  // Duplicate each location in both colors so any center position is
  // available in any color: fair OPT == unconstrained OPT.
  std::vector<Point> points;
  for (const Point& p : base) {
    points.push_back(p);
    Point q = p;
    q.color = 1;
    points.push_back(q);
  }
  const JonesFairCenter jones;
  auto fair = jones.Solve(kMetric, points, ColorConstraint({2, 2}));
  ASSERT_TRUE(fair.ok());
  const auto greedy = GonzalezKCenter(kMetric, points, 4);
  // Both are <= 2*OPT-ish; fair must stay within 3x of the greedy radius
  // up to its own guarantee.
  EXPECT_LE(fair.value().radius, 3.0 * greedy.coverage_radius + 1e-9);
}

}  // namespace
}  // namespace fkc
