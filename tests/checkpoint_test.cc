// Checkpoint/restore tests: bit-exact round trips, behavioural equivalence
// of original and restored windows under continued streaming, and rejection
// of malformed input.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

FairCenterSlidingWindow MakeWindow(bool adaptive,
                                   CoreVariant variant = CoreVariant::kFull) {
  SlidingWindowOptions options;
  options.window_size = 60;
  options.delta = 1.0;
  options.variant = variant;
  options.adaptive_range = adaptive;
  if (!adaptive) {
    options.d_min = 0.1;
    options.d_max = 500.0;
  }
  return FairCenterSlidingWindow(options, ColorConstraint({2, 2}), &kMetric,
                                 &kJones);
}

void FeedRandom(FairCenterSlidingWindow* window, int count, Rng* rng) {
  for (int i = 0; i < count; ++i) {
    window->Update({rng->NextUniform(0, 200), rng->NextUniform(0, 200)},
                   static_cast<int>(rng->NextBounded(2)));
  }
}

class CheckpointTest : public ::testing::TestWithParam<bool> {};

TEST_P(CheckpointTest, RoundTripPreservesStateExactly) {
  FairCenterSlidingWindow window = MakeWindow(GetParam());
  Rng rng(7);
  FeedRandom(&window, 150, &rng);

  const std::string bytes = window.SerializeState();
  auto restored = FairCenterSlidingWindow::DeserializeState(bytes, &kMetric,
                                                            &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Identical footprint and clocks.
  EXPECT_EQ(window.Memory().ToString(),
            restored.value().Memory().ToString());
  EXPECT_EQ(window.now(), restored.value().now());
  EXPECT_EQ(window.WindowPopulation(), restored.value().WindowPopulation());

  // Identical query answers.
  QueryStats original_stats, restored_stats;
  auto original_solution = window.Query(&original_stats);
  auto restored_solution = restored.value().Query(&restored_stats);
  ASSERT_TRUE(original_solution.ok());
  ASSERT_TRUE(restored_solution.ok());
  EXPECT_DOUBLE_EQ(original_solution.value().radius,
                   restored_solution.value().radius);
  EXPECT_DOUBLE_EQ(original_stats.guess, restored_stats.guess);
  EXPECT_EQ(original_stats.coreset_size, restored_stats.coreset_size);

  // Serialization is deterministic and stable across a round trip.
  EXPECT_EQ(bytes, restored.value().SerializeState());
}

TEST_P(CheckpointTest, RestoredWindowBehavesIdenticallyGoingForward) {
  FairCenterSlidingWindow window = MakeWindow(GetParam());
  Rng rng(11);
  FeedRandom(&window, 120, &rng);

  auto restored = FairCenterSlidingWindow::DeserializeState(
      window.SerializeState(), &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());

  // Feed the same continuation into both; answers must stay identical.
  Rng continuation(13);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 40; ++i) {
      const Coordinates coords = {continuation.NextUniform(0, 200),
                                  continuation.NextUniform(0, 200)};
      const int color = static_cast<int>(continuation.NextBounded(2));
      window.Update(coords, color);
      restored.value().Update(coords, color);
    }
    auto a = window.Query();
    auto b = restored.value().Query();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a.value().radius, b.value().radius) << "round " << round;
    EXPECT_EQ(a.value().centers.size(), b.value().centers.size());
    EXPECT_EQ(window.Memory().ToString(),
              restored.value().Memory().ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CheckpointTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "adaptive" : "fixed";
                         });

TEST(CheckpointTest, LiteVariantRoundTrips) {
  FairCenterSlidingWindow window =
      MakeWindow(true, CoreVariant::kValidationOnly);
  Rng rng(17);
  FeedRandom(&window, 100, &rng);
  auto restored = FairCenterSlidingWindow::DeserializeState(
      window.SerializeState(), &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().options().variant,
            CoreVariant::kValidationOnly);
  EXPECT_EQ(window.Memory().ToString(), restored.value().Memory().ToString());
}

TEST(CheckpointTest, EmptyWindowRoundTrips) {
  FairCenterSlidingWindow window = MakeWindow(true);
  auto restored = FairCenterSlidingWindow::DeserializeState(
      window.SerializeState(), &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  auto solution = restored.value().Query();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution.value().centers.empty());
}

TEST(CheckpointTest, RejectsGarbage) {
  auto bad = FairCenterSlidingWindow::DeserializeState("not a checkpoint",
                                                       &kMetric, &kJones);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto empty =
      FairCenterSlidingWindow::DeserializeState("", &kMetric, &kJones);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsTruncation) {
  FairCenterSlidingWindow window = MakeWindow(true);
  Rng rng(19);
  FeedRandom(&window, 80, &rng);
  const std::string bytes = window.SerializeState();
  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  auto restored = FairCenterSlidingWindow::DeserializeState(truncated,
                                                            &kMetric, &kJones);
  EXPECT_FALSE(restored.ok());
}

TEST(CheckpointTest, RejectsVersionMismatch) {
  FairCenterSlidingWindow window = MakeWindow(true);
  std::string bytes = window.SerializeState();
  bytes.replace(bytes.find("v1"), 2, "v9");
  auto restored =
      FairCenterSlidingWindow::DeserializeState(bytes, &kMetric, &kJones);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fkc
