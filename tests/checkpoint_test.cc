// Checkpoint/restore tests: bit-exact round trips, behavioural equivalence
// of original and restored windows under continued streaming, and rejection
// of malformed input.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

FairCenterSlidingWindow MakeWindow(bool adaptive,
                                   CoreVariant variant = CoreVariant::kFull) {
  SlidingWindowOptions options;
  options.window_size = 60;
  options.delta = 1.0;
  options.variant = variant;
  options.adaptive_range = adaptive;
  if (!adaptive) {
    options.d_min = 0.1;
    options.d_max = 500.0;
  }
  return FairCenterSlidingWindow(options, ColorConstraint({2, 2}), &kMetric,
                                 &kJones);
}

void FeedRandom(FairCenterSlidingWindow* window, int count, Rng* rng) {
  for (int i = 0; i < count; ++i) {
    window->Update({rng->NextUniform(0, 200), rng->NextUniform(0, 200)},
                   static_cast<int>(rng->NextBounded(2)));
  }
}

class CheckpointTest : public ::testing::TestWithParam<bool> {};

TEST_P(CheckpointTest, RoundTripPreservesStateExactly) {
  FairCenterSlidingWindow window = MakeWindow(GetParam());
  Rng rng(7);
  FeedRandom(&window, 150, &rng);

  const std::string bytes = window.SerializeState();
  auto restored = FairCenterSlidingWindow::DeserializeState(bytes, &kMetric,
                                                            &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Identical footprint and clocks.
  EXPECT_EQ(window.Memory().ToString(),
            restored.value().Memory().ToString());
  EXPECT_EQ(window.now(), restored.value().now());
  EXPECT_EQ(window.WindowPopulation(), restored.value().WindowPopulation());

  // Identical query answers.
  QueryStats original_stats, restored_stats;
  auto original_solution = window.Query(&original_stats);
  auto restored_solution = restored.value().Query(&restored_stats);
  ASSERT_TRUE(original_solution.ok());
  ASSERT_TRUE(restored_solution.ok());
  EXPECT_DOUBLE_EQ(original_solution.value().radius,
                   restored_solution.value().radius);
  EXPECT_DOUBLE_EQ(original_stats.guess, restored_stats.guess);
  EXPECT_EQ(original_stats.coreset_size, restored_stats.coreset_size);

  // Serialization is deterministic and stable across a round trip.
  EXPECT_EQ(bytes, restored.value().SerializeState());
}

TEST_P(CheckpointTest, RestoredWindowBehavesIdenticallyGoingForward) {
  FairCenterSlidingWindow window = MakeWindow(GetParam());
  Rng rng(11);
  FeedRandom(&window, 120, &rng);

  auto restored = FairCenterSlidingWindow::DeserializeState(
      window.SerializeState(), &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());

  // Feed the same continuation into both; answers must stay identical.
  Rng continuation(13);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 40; ++i) {
      const Coordinates coords = {continuation.NextUniform(0, 200),
                                  continuation.NextUniform(0, 200)};
      const int color = static_cast<int>(continuation.NextBounded(2));
      window.Update(coords, color);
      restored.value().Update(coords, color);
    }
    auto a = window.Query();
    auto b = restored.value().Query();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a.value().radius, b.value().radius) << "round " << round;
    EXPECT_EQ(a.value().centers.size(), b.value().centers.size());
    EXPECT_EQ(window.Memory().ToString(),
              restored.value().Memory().ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CheckpointTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "adaptive" : "fixed";
                         });

TEST(CheckpointTest, LiteVariantRoundTrips) {
  FairCenterSlidingWindow window =
      MakeWindow(true, CoreVariant::kValidationOnly);
  Rng rng(17);
  FeedRandom(&window, 100, &rng);
  auto restored = FairCenterSlidingWindow::DeserializeState(
      window.SerializeState(), &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().options().variant,
            CoreVariant::kValidationOnly);
  EXPECT_EQ(window.Memory().ToString(), restored.value().Memory().ToString());
}

TEST(CheckpointTest, EmptyWindowRoundTrips) {
  FairCenterSlidingWindow window = MakeWindow(true);
  auto restored = FairCenterSlidingWindow::DeserializeState(
      window.SerializeState(), &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  auto solution = restored.value().Query();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution.value().centers.empty());
}

TEST(CheckpointTest, RejectsGarbage) {
  auto bad = FairCenterSlidingWindow::DeserializeState("not a checkpoint",
                                                       &kMetric, &kJones);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto empty =
      FairCenterSlidingWindow::DeserializeState("", &kMetric, &kJones);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsTruncation) {
  FairCenterSlidingWindow window = MakeWindow(true);
  Rng rng(19);
  FeedRandom(&window, 80, &rng);
  const std::string bytes = window.SerializeState();
  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  auto restored = FairCenterSlidingWindow::DeserializeState(truncated,
                                                            &kMetric, &kJones);
  EXPECT_FALSE(restored.ok());
}

TEST(CheckpointTest, RejectsVersionMismatch) {
  FairCenterSlidingWindow window = MakeWindow(true);
  std::string bytes = window.SerializeState();
  bytes.replace(bytes.find("v1"), 2, "v9");
  auto restored =
      FairCenterSlidingWindow::DeserializeState(bytes, &kMetric, &kJones);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

// Truncation cannot alter interior tokens, so corruption of content a
// restored window would feed into CHECK-guarded code — inconsistent point
// dimensions, non-finite coordinates, aliasing guess exponents, counts far
// beyond the blob — is covered by hand-built blobs: every one must fail
// with InvalidArgument, never abort or over-allocate.
TEST(CheckpointTest, RejectsCorruptInteriorContent) {
  // Minimal adaptive blob: header, {2,1} constraint, now=3, next_id=4, one
  // last point, one estimator bucket, one guess holding one v-attractor.
  const std::string header = "fkc-checkpoint-v1 10 0x1p+1 0x1p+0 0 1 "
                             "0x0p+0 0x0p+0 1 1 2 2 1 3 4 ";
  const std::string point = "2 0x1p+0 0x1p+0 0 3 3 ";
  const std::string buckets = "1 0 3 ";
  auto blob = [&](const std::string& guesses) {
    return header + "1 " + point + buckets + guesses;
  };
  const std::string good_guess =
      std::string("1 0 ") + "1 " + point + "0 " + "0 0 0 ";
  ASSERT_TRUE(FairCenterSlidingWindow::DeserializeState(blob(good_guess),
                                                        &kMetric, &kJones)
                  .ok());

  const struct {
    const char* label;
    std::string guesses;
  } kCases[] = {
      // The attractor's dimension disagrees with the last point's.
      {"inconsistent dim",
       std::string("1 0 ") + "1 " + "1 0x1p+0 0 3 3 " + "0 " + "0 0 0 "},
      {"nan coordinate",
       std::string("1 0 ") + "1 " + "2 nan 0x1p+0 0 3 3 " + "0 " + "0 0 0 "},
      {"color out of range",
       std::string("1 0 ") + "1 " + "2 0x1p+0 0x1p+0 5 3 3 " + "0 " +
           "0 0 0 "},
      // Orphan count far beyond the blob: must reject before resizing.
      {"forged point count",
       std::string("1 0 ") + "1 " + point + "268435455 " + "0 0 0 "},
      // 2^32 + 3 would alias to exponent 3 after an unchecked narrowing.
      {"aliasing exponent",
       std::string("1 4294967299 ") + "1 " + point + "0 " + "0 0 0 "},
      {"duplicate exponent",
       std::string("2 0 ") + "1 " + point + "0 " + "0 0 0 " + "0 " + "1 " +
           point + "0 " + "0 0 0 "},
  };
  for (const auto& c : kCases) {
    auto restored = FairCenterSlidingWindow::DeserializeState(
        blob(c.guesses), &kMetric, &kJones);
    ASSERT_FALSE(restored.ok()) << c.label;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << c.label;
  }
}

// Forged ids and clocks used to pass validation: a negative id aliased to a
// huge uint64 (colliding with future arrivals), an arrival beyond the
// restored clock never expired, and an id counter at or below a stored id
// would re-issue ids that SamePoint treats as identity. All must reject.
TEST(CheckpointTest, RejectsForgedClocksAndIds) {
  // Same minimal adaptive layout as above, with the clock fields and the
  // stored point's "<arrival> <id>" injectable.
  auto blob = [](const char* now_and_next, const char* arrival_and_id) {
    const std::string point =
        std::string("2 0x1p+0 0x1p+0 0 ") + arrival_and_id + " ";
    return std::string("fkc-checkpoint-v1 10 0x1p+1 0x1p+0 0 1 "
                       "0x0p+0 0x0p+0 1 1 2 2 1 ") +
           now_and_next + " 1 " + point + "1 0 3 " + "1 0 " + "1 " + point +
           "0 " + "0 0 0 ";
  };
  ASSERT_TRUE(FairCenterSlidingWindow::DeserializeState(blob("3 4", "3 3"),
                                                        &kMetric, &kJones)
                  .ok());

  // Two forgeries no honest writer can produce, each of which used to
  // CHECK-abort after restore: a zero-dimension point aborts the pool
  // rebuild, and stored points without a last point leave the dimension
  // pin unset so a mismatched ingest reaches the SoA kernels.
  const std::string header = "fkc-checkpoint-v1 10 0x1p+1 0x1p+0 0 1 "
                             "0x0p+0 0x0p+0 1 1 2 2 1 3 4 ";
  const std::string point = "2 0x1p+0 0x1p+0 0 3 3 ";
  const std::string zero_dim_blob = header + "1 " + "0 0 3 3 " + "1 0 3 " +
                                    "1 0 " + "1 " + "0 0 3 3 " + "0 " +
                                    "0 0 0 ";
  const std::string orphaned_points_blob =
      header + "0 " + "1 0 3 " + "1 0 " + "1 " + point + "0 " + "0 0 0 ";
  // An estimator bucket witnessed at t=5 in a window whose clock is 3: the
  // bucket would never expire and permanently inflate the adaptive range.
  const std::string future_bucket_blob =
      header + "1 " + point + "1 0 5 " + "1 0 " + "1 " + point + "0 " +
      "0 0 0 ";

  const struct {
    const char* label;
    std::string bytes;
  } kCases[] = {
      {"negative id counter", blob("3 -1", "3 3")},
      {"negative point id", blob("3 4", "3 -7")},
      {"arrival beyond the clock", blob("3 4", "5 3")},
      {"id counter behind stored ids", blob("3 3", "3 3")},
      {"zero-dimension point", zero_dim_blob},
      {"stored points without a last point", orphaned_points_blob},
      {"bucket witness beyond the clock", future_bucket_blob},
  };
  for (const auto& c : kCases) {
    auto restored =
        FairCenterSlidingWindow::DeserializeState(c.bytes, &kMetric, &kJones);
    ASSERT_FALSE(restored.ok()) << c.label;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << c.label;
  }
}

}  // namespace
}  // namespace fkc
