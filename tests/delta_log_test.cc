// DeltaLog contract: replaying base + delta chain reconstructs the fleet
// bit-exactly (per-shard SerializeState byte-equal to a restore from a
// fresh full checkpoint, at any thread count); the chain re-bases itself
// once it exceeds the configured length/byte budget and replay stays exact
// across re-basings; and the ShardManager background maintenance thread —
// which feeds the log — starts, ticks, and shuts down cleanly under
// adversarial start/stop timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/delta_log.h"
#include "serving/shard_manager.h"
#include "serving/spill_store.h"

namespace fkc {
namespace serving {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const ColorConstraint kConstraint({2, 1, 1});
const char* kKeys[] = {"tenant-a", "tenant-b", "tenant-c"};

ShardManagerOptions Options(int num_threads) {
  ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.num_threads = num_threads;
  return options;
}

std::vector<KeyedPoint> KeyedStream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyedPoint> stream;
  for (int i = 0; i < n; ++i) {
    stream.push_back({kKeys[rng.NextBounded(3)],
                      Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                            static_cast<int>(rng.NextBounded(3)))});
  }
  return stream;
}

// Per-shard byte equality — the strongest equivalence the engine offers.
void ExpectSameFleets(ShardManager* a, ShardManager* b) {
  ASSERT_EQ(a->Keys(), b->Keys());
  for (const std::string& key : a->Keys()) {
    // Query both first so query-time expiry sweeps line up, then compare
    // serialized bytes.
    ASSERT_TRUE(a->Query(key).ok()) << key;
    ASSERT_TRUE(b->Query(key).ok()) << key;
    EXPECT_EQ(a->shard(key)->SerializeState(), b->shard(key)->SerializeState())
        << key;
  }
}

TEST(DeltaLogTest, ReplayWithoutBaseFails) {
  DeltaLog log;
  EXPECT_FALSE(log.has_base());
  auto replayed = log.Replay(&kMetric, &kJones);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kFailedPrecondition);
}

// The acceptance criterion: a fleet restored by replaying the log is
// byte-equal to one restored from a fresh full checkpoint, at multiple
// thread counts, with eviction churn in between captures.
TEST(DeltaLogTest, ReplayMatchesFullRestoreBitExactly) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const auto stream = KeyedStream(360, 83);
    ShardManager leader(Options(threads), kConstraint, &kMetric, &kJones);
    DeltaLog log;

    // Tranches of ingest, eviction churn, and captures: the first capture
    // lays the base, later ones chain deltas.
    for (size_t tranche = 0; tranche < 6; ++tranche) {
      for (size_t i = tranche * 60; i < (tranche + 1) * 60; ++i) {
        ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
      }
      if (tranche % 2 == 1) leader.EvictIdle(/*idle_ttl=*/0);
      auto captured = log.Capture(&leader);
      ASSERT_TRUE(captured.ok()) << captured.status().ToString();
      EXPECT_EQ(captured.value().rebased, tranche == 0)
          << "first capture is the base; the chain stays under budget";
    }
    EXPECT_EQ(log.chain_length(), 5u);
    EXPECT_EQ(leader.dirty_shard_count(), 0u);

    auto replayed = log.Replay(&kMetric, &kJones, threads);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    auto full_blob = leader.CheckpointAll();
    ASSERT_TRUE(full_blob.ok());
    auto full = ShardManager::Restore(full_blob.value(), &kMetric, &kJones,
                                      threads);
    ASSERT_TRUE(full.ok());
    ExpectSameFleets(&full.value(), &replayed.value());
    ExpectSameFleets(&leader, &replayed.value());
  }
}

// Chain-length budget: the capture that finds the chain full re-bases —
// the chain resets, rebases() counts it, and replay stays bit-exact.
TEST(DeltaLogTest, CompactionRebasesPastChainLengthBudget) {
  DeltaLog::Options budget;
  budget.max_chain_length = 2;
  DeltaLog log(budget);
  ShardManager leader(Options(1), kConstraint, &kMetric, &kJones);

  const auto stream = KeyedStream(280, 89);
  size_t fed = 0;
  auto feed_and_capture = [&]() -> DeltaLog::CaptureStats {
    for (size_t end = fed + 40; fed < end; ++fed) {
      EXPECT_TRUE(leader.Ingest(stream[fed].key, stream[fed].point).ok());
    }
    auto captured = log.Capture(&leader);
    EXPECT_TRUE(captured.ok()) << captured.status().ToString();
    return captured.ValueOr(DeltaLog::CaptureStats{});
  };

  EXPECT_TRUE(feed_and_capture().rebased);   // initial base
  EXPECT_FALSE(feed_and_capture().rebased);  // chain: 1
  EXPECT_FALSE(feed_and_capture().rebased);  // chain: 2 (budget)
  const auto compacted = feed_and_capture();  // budget exceeded -> re-base
  EXPECT_TRUE(compacted.rebased);
  EXPECT_EQ(compacted.chain_length, 0u);
  EXPECT_EQ(log.rebases(), 1);

  EXPECT_FALSE(feed_and_capture().rebased);  // chains again after re-base
  EXPECT_EQ(log.chain_length(), 1u);

  auto replayed = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectSameFleets(&leader, &replayed.value());
}

// Byte budget: a tiny max_chain_bytes forces a re-base as soon as any
// delta is chained.
TEST(DeltaLogTest, CompactionRebasesPastByteBudget) {
  DeltaLog::Options budget;
  budget.max_chain_bytes = 1;
  DeltaLog log(budget);
  ShardManager leader(Options(1), kConstraint, &kMetric, &kJones);
  const auto stream = KeyedStream(120, 97);
  for (size_t tranche = 0; tranche < 3; ++tranche) {
    for (size_t i = tranche * 40; i < (tranche + 1) * 40; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
    }
    auto captured = log.Capture(&leader);
    ASSERT_TRUE(captured.ok());
    // Capture 0: base. Capture 1: chains (budget checked before append).
    // Capture 2: chain already over a 1-byte budget -> re-base.
    EXPECT_EQ(captured.value().rebased, tranche != 1) << tranche;
  }
  EXPECT_EQ(log.rebases(), 1);
  auto replayed = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok());
  ExpectSameFleets(&leader, &replayed.value());
}

// An idle fleet must not grow the log: the maintenance tick skips capture
// while nothing is dirty.
TEST(DeltaLogTest, MaintenanceTickSkipsCaptureWhileClean) {
  ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("tenant-a", Point({1.0, 2.0}, 0)).ok());
  DeltaLog log;
  MaintenanceOptions options;
  options.delta_log = &log;

  auto first = manager.RunMaintenanceTick(options);
  EXPECT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_TRUE(first.rebased) << "first capture lays the base";
  for (int i = 0; i < 5; ++i) {
    auto tick = manager.RunMaintenanceTick(options);
    EXPECT_EQ(tick.capture_bytes, 0u) << "idle fleet, no capture";
  }
  EXPECT_EQ(log.chain_length(), 0u);

  ASSERT_TRUE(manager.Ingest("tenant-a", Point({3.0, 4.0}, 1)).ok());
  auto dirty_tick = manager.RunMaintenanceTick(options);
  EXPECT_GT(dirty_tick.capture_bytes, 0u);
  EXPECT_EQ(log.chain_length(), 1u);
}

// One deterministic tick: eviction sweep + capture + GC, reported through
// the test-visible hook.
TEST(DeltaLogTest, RunMaintenanceTickReportsItsWork) {
  auto store = std::make_shared<InMemorySpillStore>();
  ShardManagerOptions with_store = Options(1);
  with_store.spill_store = store;
  ShardManager manager(with_store, kConstraint, &kMetric, &kJones);
  for (const auto& kp : KeyedStream(90, 101)) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  // An orphan entry no shard owns: the tick's GC must sweep it.
  ASSERT_TRUE(store->Put("stale-tenant", "stale bytes").ok());

  DeltaLog log;
  MaintenanceOptions options;
  options.idle_ttl = 0;  // spill everything idle
  options.delta_log = &log;
  options.gc_every = 1;
  MaintenanceTickReport hook_report;
  int hook_calls = 0;
  options.on_tick = [&](const MaintenanceTickReport& report) {
    hook_report = report;
    ++hook_calls;
  };

  const auto report = manager.RunMaintenanceTick(options);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.evicted, 2) << "all but the most recently touched";
  EXPECT_GT(report.capture_bytes, 0u);
  EXPECT_EQ(report.gc_removed, 1) << "exactly the stale entry";
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(hook_report.evicted, report.evicted);
  EXPECT_EQ(manager.maintenance_ticks(), 1);
  EXPECT_EQ(store->Get("stale-tenant").status().code(), StatusCode::kNotFound);
}

// The background thread end to end: ticks happen, the log fills, shutdown
// is prompt and clean, and the replayed log matches the leader.
TEST(DeltaLogTest, MaintenanceThreadCapturesAndReplaysExactly) {
  ShardManager leader(Options(2), kConstraint, &kMetric, &kJones);
  DeltaLog log;
  MaintenanceOptions options;
  options.cadence = std::chrono::milliseconds(1);
  options.idle_ttl = 50;
  options.delta_log = &log;
  options.gc_every = 2;
  std::atomic<int64_t> ticks_seen{0};
  options.on_tick = [&](const MaintenanceTickReport& report) {
    EXPECT_TRUE(report.status.ok()) << report.status.ToString();
    ticks_seen.fetch_add(1);
  };
  ASSERT_TRUE(leader.StartMaintenance(options).ok());
  EXPECT_TRUE(leader.maintenance_running());
  EXPECT_EQ(leader.StartMaintenance(options).code(),
            StatusCode::kFailedPrecondition)
      << "double start must fail";

  const auto stream = KeyedStream(400, 103);
  for (const auto& kp : stream) {
    ASSERT_TRUE(leader.Ingest(kp.key, kp.point).ok());
  }
  // Wait until the thread has demonstrably ticked with the fleet in place.
  while (ticks_seen.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  leader.StopMaintenance();
  EXPECT_FALSE(leader.maintenance_running());
  const int64_t ticks_at_stop = leader.maintenance_ticks();
  EXPECT_GE(ticks_at_stop, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(leader.maintenance_ticks(), ticks_at_stop)
      << "no ticks after shutdown";

  // Flush whatever the last tick missed, then replay must match the leader.
  ASSERT_TRUE(log.Capture(&leader).ok());
  auto replayed = log.Replay(&kMetric, &kJones);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectSameFleets(&leader, &replayed.value());
}

// Shutdown races: stop-without-start, immediate stop after start, repeated
// start/stop cycles with concurrent ingest, and destruction with the
// thread still running — none may hang, crash, or leak (ASan job).
TEST(DeltaLogTest, MaintenanceShutdownRaces) {
  ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  manager.StopMaintenance();  // never started: no-op

  MaintenanceOptions options;
  options.cadence = std::chrono::milliseconds(1);
  options.idle_ttl = 0;
  EXPECT_EQ(
      manager.StartMaintenance([] {
        MaintenanceOptions bad;
        bad.cadence = std::chrono::milliseconds(0);
        return bad;
      }()).code(),
      StatusCode::kInvalidArgument);

  const auto stream = KeyedStream(40, 107);
  for (int cycle = 0; cycle < 20; ++cycle) {
    ASSERT_TRUE(manager.StartMaintenance(options).ok());
    for (const auto& kp : stream) {
      ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
    }
    manager.StopMaintenance();
    manager.StopMaintenance();  // idempotent
  }

  // Destructor shutdown: leave the thread running at scope exit.
  {
    ShardManager doomed(Options(1), kConstraint, &kMetric, &kJones);
    ASSERT_TRUE(doomed.Ingest("t", Point({1.0, 1.0}, 0)).ok());
    ASSERT_TRUE(doomed.StartMaintenance(options).ok());
  }
}

// An on_tick hook that stops maintenance runs ON the maintenance thread:
// the re-entrant Stop must not self-join (std::terminate) — it signals the
// loop to exit and a later Stop/destructor reaps the thread.
TEST(DeltaLogTest, StopMaintenanceFromTheTickHookDoesNotSelfJoin) {
  ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("t", Point({1.0, 1.0}, 0)).ok());

  std::atomic<int64_t> hook_ticks{0};
  MaintenanceOptions options;
  options.cadence = std::chrono::milliseconds(1);
  options.idle_ttl = 0;
  options.on_tick = [&](const MaintenanceTickReport&) {
    hook_ticks.fetch_add(1);
    manager.StopMaintenance();  // re-entrant, from the maintenance thread
  };
  ASSERT_TRUE(manager.StartMaintenance(options).ok());
  while (hook_ticks.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The loop exits after that tick; this (non-maintenance-thread) Stop
  // reaps it and the manager is startable again.
  manager.StopMaintenance();
  EXPECT_FALSE(manager.maintenance_running());
  const int64_t settled = manager.maintenance_ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(manager.maintenance_ticks(), settled);
  ASSERT_TRUE(manager.StartMaintenance(options).ok());
  manager.StopMaintenance();
}

}  // namespace
}  // namespace serving
}  // namespace fkc
