// Determinism guarantees: identical configurations over identical streams
// must produce bit-identical results, across every algorithm in the library.
// Reproducibility is a stated property of the experiment harness (README).
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_lite.h"
#include "core/fair_center_sliding_window.h"
#include "core/insertion_only_fair_center.h"
#include "datasets/registry.h"
#include "metric/metric.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/jones_fair_center.h"
#include "sequential/kleindessner.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

std::vector<Point> Stream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(Point({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                           static_cast<int>(rng.NextBounded(3))));
  }
  return points;
}

bool SameCenters(const std::vector<Point>& a, const std::vector<Point>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].color != b[i].color) return false;
  }
  return true;
}

TEST(DeterminismTest, SlidingWindowIdenticalRuns) {
  const ColorConstraint constraint({2, 1, 1});
  const auto points = Stream(300, 7);

  auto run = [&]() {
    SlidingWindowOptions options;
    options.window_size = 100;
    options.delta = 1.0;
    options.adaptive_range = true;
    FairCenterSlidingWindow window(options, constraint, &kMetric, &kJones);
    std::vector<double> radii;
    std::vector<Point> last_centers;
    for (size_t i = 0; i < points.size(); ++i) {
      window.Update(points[i]);
      if (i % 40 == 39) {
        auto result = window.Query();
        EXPECT_TRUE(result.ok());
        radii.push_back(result.value().radius);
        last_centers = result.value().centers;
      }
    }
    return std::make_pair(radii, last_centers);
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_TRUE(SameCenters(first.second, second.second));
}

TEST(DeterminismTest, LiteAndInsertionOnlyIdenticalRuns) {
  const ColorConstraint constraint({2, 2, 1});  // streams emit 3 colors
  const auto points = Stream(200, 11);

  auto run_lite = [&]() {
    SlidingWindowOptions options;
    options.window_size = 80;
    options.adaptive_range = true;
    FairCenterLite lite(options, constraint, &kMetric, &kJones);
    for (const Point& p : points) lite.Update(p);
    auto result = lite.Query();
    EXPECT_TRUE(result.ok());
    return result.value().centers;
  };
  EXPECT_TRUE(SameCenters(run_lite(), run_lite()));

  auto run_insertion = [&]() {
    InsertionOnlyFairCenter summary(InsertionOnlyOptions{}, constraint,
                                    &kMetric, &kJones);
    for (const Point& p : points) summary.Update(p);
    auto result = summary.Query();
    EXPECT_TRUE(result.ok());
    return result.value().centers;
  };
  EXPECT_TRUE(SameCenters(run_insertion(), run_insertion()));
}

TEST(DeterminismTest, SequentialSolversAreDeterministic) {
  const auto points = Stream(80, 13);
  const ColorConstraint constraint({2, 2, 1});
  const ChenMatroidCenter chen;
  const KleindessnerFairCenter kleindessner;

  for (const FairCenterSolver* solver :
       std::initializer_list<const FairCenterSolver*>{&kJones, &chen,
                                                      &kleindessner}) {
    auto a = solver->Solve(kMetric, points, constraint);
    auto b = solver->Solve(kMetric, points, constraint);
    ASSERT_TRUE(a.ok()) << solver->Name();
    ASSERT_TRUE(b.ok()) << solver->Name();
    EXPECT_DOUBLE_EQ(a.value().radius, b.value().radius) << solver->Name();
    EXPECT_TRUE(SameCenters(a.value().centers, b.value().centers))
        << solver->Name();
  }
}

TEST(DeterminismTest, DatasetsReproducePerSeed) {
  for (const std::string& name :
       {std::string("phones"), std::string("higgs"), std::string("covtype"),
        std::string("blobs4"), std::string("rotated6")}) {
    auto a = datasets::MakeDataset(name, 150, 99);
    auto b = datasets::MakeDataset(name, 150, 99);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().points.size(), b.value().points.size());
    for (size_t i = 0; i < a.value().points.size(); ++i) {
      EXPECT_EQ(a.value().points[i].coords, b.value().points[i].coords)
          << name << "[" << i << "]";
      EXPECT_EQ(a.value().points[i].color, b.value().points[i].color);
    }
  }
}

}  // namespace
}  // namespace fkc
