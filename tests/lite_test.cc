// Tests for the Corollary-2 variant (FairCenterLite): configuration,
// quality, fairness, and the space advantage over the full algorithm in
// higher-dimensional data.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_lite.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

SlidingWindowOptions BaseOptions(int64_t window_size) {
  SlidingWindowOptions options;
  options.window_size = window_size;
  options.beta = 2.0;
  options.d_min = 0.05;
  options.d_max = 2000.0;
  return options;
}

TEST(FairCenterLiteTest, ForcesValidationOnlyVariant) {
  FairCenterLite lite(BaseOptions(10), ColorConstraint({1, 1}), &kMetric,
                      &kJones);
  EXPECT_EQ(lite.window().options().variant, CoreVariant::kValidationOnly);
  EXPECT_DOUBLE_EQ(lite.window().options().delta, 4.0);
}

TEST(FairCenterLiteTest, SolutionsFeasibleAndNonEmpty) {
  const ColorConstraint constraint({2, 1});
  FairCenterLite lite(BaseOptions(50), constraint, &kMetric, &kJones);
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    lite.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                static_cast<int>(rng.NextBounded(2)));
    if (t > 20 && t % 25 == 0) {
      auto result = lite.Query();
      ASSERT_TRUE(result.ok());
      EXPECT_FALSE(result.value().centers.empty());
      EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
    }
  }
}

TEST(FairCenterLiteTest, ConstantFactorOnSolvableInstances) {
  // Corollary 2 guarantees 31 + O(eps); verify a loose constant factor
  // against brute-force optima on tiny windows.
  const ColorConstraint constraint({1, 1});
  SlidingWindowOptions options = BaseOptions(12);
  options.beta = 0.5;
  FairCenterLite lite(options, constraint, &kMetric, &kJones);
  ReferenceWindow truth(12);
  Rng rng(11);
  for (int t = 0; t < 60; ++t) {
    Point p({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
            static_cast<int>(rng.NextBounded(2)));
    p.arrival = t + 1;
    truth.Update(p);
    lite.Update(p);
    if (t < 20 || t % 9 != 0) continue;
    auto streaming = lite.Query();
    ASSERT_TRUE(streaming.ok());
    auto exact = BruteForceFairCenter(kMetric, truth.Snapshot(), constraint);
    ASSERT_TRUE(exact.ok());
    const double radius =
        ClusteringRadius(kMetric, truth.Snapshot(), streaming.value().centers);
    EXPECT_LE(radius, 35.0 * exact.value().radius + 1e-9) << "t=" << t;
  }
}

TEST(FairCenterLiteTest, NoCoresetStructuresAllocated) {
  FairCenterLite lite(BaseOptions(30), ColorConstraint({1, 1}), &kMetric,
                      &kJones);
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    lite.Update({rng.NextUniform(0, 100)}, static_cast<int>(t % 2));
  }
  const MemoryStats memory = lite.Memory();
  EXPECT_EQ(memory.c_attractors, 0);
  EXPECT_EQ(memory.c_representatives, 0);
  EXPECT_GT(memory.v_representatives, 0);
}

TEST(FairCenterLiteTest, UsesLessMemoryThanSmallDeltaFull) {
  // In moderate dimension the full algorithm's coreset at delta = 0.5 packs
  // many c-attractors; the Lite variant keeps only O(k) points per guess.
  const ColorConstraint constraint = ColorConstraint::Uniform(3, 2);
  SlidingWindowOptions options = BaseOptions(300);
  options.delta = 0.5;
  FairCenterSlidingWindow full(options, constraint, &kMetric, &kJones);
  FairCenterLite lite(BaseOptions(300), constraint, &kMetric, &kJones);

  Rng rng(13);
  for (int t = 0; t < 900; ++t) {
    Coordinates coords(5);
    for (double& x : coords) x = rng.NextUniform(0, 200);
    const int color = static_cast<int>(rng.NextBounded(3));
    Point p(coords, color);
    full.Update(p);
    lite.Update(std::move(p));
  }
  EXPECT_LT(lite.Memory().TotalPoints(), full.Memory().TotalPoints());
}

}  // namespace
}  // namespace fkc
