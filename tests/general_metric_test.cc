// The paper's algorithms work in *general* metric spaces. These tests run
// the full stack (sequential solvers and the sliding window) under the
// Manhattan and Chebyshev metrics and check that every guarantee that is
// metric-independent still holds.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

namespace fkc {
namespace {

const ManhattanMetric kManhattan;
const ChebyshevMetric kChebyshev;

std::vector<Point> RandomColored(int n, int ell, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50),
                            rng.NextUniform(0, 50)},
                           static_cast<int>(rng.NextBounded(ell))));
  }
  return points;
}

class GeneralMetricSolverTest : public ::testing::TestWithParam<const Metric*> {
};

TEST_P(GeneralMetricSolverTest, JonesWithinThreeTimesOpt) {
  const Metric& metric = *GetParam();
  const JonesFairCenter jones;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto points = RandomColored(12, 2, seed);
    const ColorConstraint constraint({1, 1});
    auto exact = BruteForceFairCenter(metric, points, constraint);
    auto approx = jones.Solve(metric, points, constraint);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    EXPECT_LE(approx.value().radius, 3.0 * exact.value().radius + 1e-9)
        << metric.Name() << " seed=" << seed;
  }
}

TEST_P(GeneralMetricSolverTest, ChenWithinThreeTimesOpt) {
  const Metric& metric = *GetParam();
  const ChenMatroidCenter chen;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto points = RandomColored(12, 2, seed);
    const ColorConstraint constraint({1, 1});
    auto exact = BruteForceFairCenter(metric, points, constraint);
    auto approx = chen.Solve(metric, points, constraint);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    EXPECT_LE(approx.value().radius, 3.0 * exact.value().radius + 1e-9)
        << metric.Name() << " seed=" << seed;
  }
}

TEST_P(GeneralMetricSolverTest, SlidingWindowTheoremOneBound) {
  const Metric& metric = *GetParam();
  const JonesFairCenter jones;
  const ColorConstraint constraint({1, 1});

  SlidingWindowOptions options;
  options.window_size = 12;
  options.beta = 0.5;
  options.delta = 1.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, constraint, &metric, &jones);
  ReferenceWindow truth(12);

  Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    Point p({rng.NextUniform(0, 40), rng.NextUniform(0, 40)},
            static_cast<int>(rng.NextBounded(2)));
    p.arrival = t + 1;
    truth.Update(p);
    window.Update(p);
    if (t < 15 || t % 8 != 0) continue;

    auto streaming = window.Query();
    ASSERT_TRUE(streaming.ok());
    auto exact = BruteForceFairCenter(metric, truth.Snapshot(), constraint);
    ASSERT_TRUE(exact.ok());
    const double radius = ClusteringRadius(metric, truth.Snapshot(),
                                           streaming.value().centers);
    const double eps = EpsilonForDelta(options.delta, options.beta, 3.0);
    EXPECT_LE(radius, (3.0 + eps) * exact.value().radius + 1e-9)
        << metric.Name() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, GeneralMetricSolverTest,
                         ::testing::Values(&kManhattan, &kChebyshev),
                         [](const auto& info) { return info.param->Name(); });

TEST(GeneralMetricTest, MetricsDisagreeOnGeometry) {
  // Sanity that the three metrics genuinely produce different clusterings on
  // anisotropic data (so the parameterized suites exercise distinct paths).
  const Point origin({0, 0}, 0);
  const Point far_l1({3, 3}, 0);
  const Point far_linf({4, 0}, 0);
  EXPECT_GT(kManhattan.Distance(origin, far_l1),
            kManhattan.Distance(origin, far_linf));
  EXPECT_LT(kChebyshev.Distance(origin, far_l1),
            kChebyshev.Distance(origin, far_linf));
}

}  // namespace
}  // namespace fkc
