// End-to-end behaviour of FairCenterSlidingWindow (Algorithms 1-3): window
// semantics, fairness of returned solutions, approximation quality against
// exact optima, space bounds, and agreement between fixed-range and adaptive
// modes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "matroid/color_constraint.h"
#include "metric/aspect_ratio.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

namespace fkc {
namespace {

Point P(std::initializer_list<double> coords, int color) {
  return Point(Coordinates(coords), color);
}

// Builds a window in fixed-range mode with sane defaults for tiny tests.
FairCenterSlidingWindow MakeWindow(int64_t window_size,
                                   ColorConstraint constraint, double d_min,
                                   double d_max, double delta = 0.5,
                                   double beta = 2.0) {
  SlidingWindowOptions options;
  options.window_size = window_size;
  options.beta = beta;
  options.delta = delta;
  options.d_min = d_min;
  options.d_max = d_max;
  static const EuclideanMetric metric;
  static const JonesFairCenter solver;
  return FairCenterSlidingWindow(options, std::move(constraint), &metric,
                                 &solver);
}

TEST(SlidingWindowTest, EmptyWindowReturnsEmptySolution) {
  auto window = MakeWindow(10, ColorConstraint({1, 1}), 0.1, 100.0);
  auto result = window.Query();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().centers.empty());
  EXPECT_EQ(result.value().radius, 0.0);
}

TEST(SlidingWindowTest, SinglePointIsItsOwnCenter) {
  auto window = MakeWindow(10, ColorConstraint({1, 1}), 0.1, 100.0);
  window.Update({1.0, 2.0}, 0);
  auto result = window.Query();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().centers.size(), 1u);
  EXPECT_EQ(result.value().centers[0].coords, Coordinates({1.0, 2.0}));
}

TEST(SlidingWindowTest, SolutionsAlwaysRespectColorCaps) {
  const ColorConstraint constraint({2, 1});
  auto window = MakeWindow(50, constraint, 0.1, 1000.0);
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    window.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                  static_cast<int>(rng.NextBounded(2)));
    if (t % 10 == 9) {
      auto result = window.Query();
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
      EXPECT_FALSE(result.value().centers.empty());
    }
  }
}

TEST(SlidingWindowTest, ExpiredPointsDoNotServeAsCenters) {
  // Two clusters; the first cluster fully expires, so returned centers must
  // come from the second cluster only.
  auto window = MakeWindow(4, ColorConstraint({2}), 0.1, 1000.0);
  for (int i = 0; i < 4; ++i) {
    window.Update({0.0 + 0.01 * i}, 0);
  }
  for (int i = 0; i < 4; ++i) {
    window.Update({500.0 + 0.01 * i}, 0);
  }
  auto result = window.Query();
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().centers.empty());
  for (const Point& c : result.value().centers) {
    EXPECT_GE(c.coords[0], 499.0) << "center from expired region";
  }
}

TEST(SlidingWindowTest, RadiusTracksWindowNotStream) {
  // Window slides from a wide regime into a tight cluster; radius over the
  // *current window* must shrink accordingly.
  auto window = MakeWindow(10, ColorConstraint({1}), 0.01, 10000.0);
  ReferenceWindow truth(10);
  const EuclideanMetric metric;
  Rng rng(3);
  // Phase 1: spread over [0, 1000].
  for (int i = 0; i < 20; ++i) {
    Point p = P({rng.NextUniform(0, 1000)}, 0);
    p.arrival = window.now() + 1;
    truth.Update(p);
    window.Update(p);
  }
  // Phase 2: tight cluster at 5000.
  for (int i = 0; i < 15; ++i) {
    Point p = P({5000.0 + rng.NextUniform(0, 1.0)}, 0);
    p.arrival = window.now() + 1;
    truth.Update(p);
    window.Update(p);
  }
  auto result = window.Query();
  ASSERT_TRUE(result.ok());
  const double radius_on_window =
      ClusteringRadius(metric, truth.Snapshot(), result.value().centers);
  EXPECT_LE(radius_on_window, 2.0) << "window is a unit-size cluster";
}

// Property sweep: streaming radius within the theoretical factor of the
// exact optimum on brute-force-solvable instances.
struct QualityCase {
  uint64_t seed;
  double delta;
  int colors;
};

class SlidingWindowQualityTest
    : public ::testing::TestWithParam<QualityCase> {};

TEST_P(SlidingWindowQualityTest, RadiusWithinTheoreticalFactor) {
  const QualityCase param = GetParam();
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  std::vector<int> caps(param.colors, 1);
  const ColorConstraint constraint(caps);

  SlidingWindowOptions options;
  options.window_size = 12;
  options.beta = 0.5;
  options.delta = param.delta;
  options.d_min = 0.05;
  options.d_max = 500.0;
  FairCenterSlidingWindow window(options, constraint, &metric, &jones);
  ReferenceWindow truth(12);

  Rng rng(param.seed);
  for (int t = 0; t < 60; ++t) {
    Point p = P({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                static_cast<int>(rng.NextBounded(param.colors)));
    p.arrival = t + 1;
    truth.Update(p);
    window.Update(p);
    if (t < 20 || t % 7 != 0) continue;

    auto streaming = window.Query();
    ASSERT_TRUE(streaming.ok());
    auto exact = BruteForceFairCenter(metric, truth.Snapshot(), constraint);
    ASSERT_TRUE(exact.ok());
    const double streaming_radius =
        ClusteringRadius(metric, truth.Snapshot(), streaming.value().centers);
    // Theorem 1: radius <= (alpha + eps) * OPT with
    // eps = delta * (1 + beta) * (1 + 2 * alpha); alpha = 3 for Jones.
    const double eps = EpsilonForDelta(param.delta, options.beta, 3.0);
    const double bound = (3.0 + eps) * exact.value().radius + 1e-9;
    EXPECT_LE(streaming_radius, bound)
        << "seed=" << param.seed << " t=" << t
        << " opt=" << exact.value().radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingWindowQualityTest,
    ::testing::Values(QualityCase{1, 0.5, 2}, QualityCase{2, 0.5, 3},
                      QualityCase{3, 1.0, 2}, QualityCase{4, 2.0, 2},
                      QualityCase{5, 4.0, 3}, QualityCase{6, 0.5, 1},
                      QualityCase{7, 1.5, 4}, QualityCase{8, 3.0, 2}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_delta" +
             std::to_string(static_cast<int>(info.param.delta * 10)) +
             "_ell" + std::to_string(info.param.colors);
    });

TEST(SlidingWindowTest, MemoryIndependentOfWindowSize) {
  // Same stream, two window sizes 10x apart: stored points must not scale
  // with the window (Theorem 2).
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ColorConstraint constraint({2, 2});

  auto run = [&](int64_t window_size) {
    SlidingWindowOptions options;
    options.window_size = window_size;
    options.delta = 1.0;
    options.d_min = 0.1;
    options.d_max = 2000.0;
    FairCenterSlidingWindow window(options, constraint, &metric, &jones);
    Rng rng(11);
    for (int t = 0; t < 4000; ++t) {
      window.Update({rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)},
                    static_cast<int>(rng.NextBounded(2)));
    }
    return window.Memory().TotalPoints();
  };

  const int64_t small = run(200);
  const int64_t large = run(2000);
  // Allow slack for the larger window genuinely containing more distinct
  // scales, but reject anything close to linear growth.
  EXPECT_LT(large, small * 3 + 200);
}

TEST(SlidingWindowTest, AdaptiveModeMatchesFixedModeQuality) {
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ColorConstraint constraint({2, 2});

  SlidingWindowOptions fixed_options;
  fixed_options.window_size = 100;
  fixed_options.delta = 0.5;
  fixed_options.d_min = 0.05;
  fixed_options.d_max = 2000.0;
  FairCenterSlidingWindow fixed(fixed_options, constraint, &metric, &jones);

  SlidingWindowOptions adaptive_options = fixed_options;
  adaptive_options.adaptive_range = true;
  adaptive_options.d_min = adaptive_options.d_max = 0.0;
  FairCenterSlidingWindow adaptive(adaptive_options, constraint, &metric,
                                   &jones);

  ReferenceWindow truth(100);
  Rng rng(23);
  for (int t = 0; t < 500; ++t) {
    Point p = P({rng.NextUniform(0, 500), rng.NextUniform(0, 500)},
                static_cast<int>(rng.NextBounded(2)));
    p.arrival = t + 1;
    truth.Update(p);
    fixed.Update(p);
    adaptive.Update(p);

    if (t > 150 && t % 50 == 0) {
      auto fixed_result = fixed.Query();
      auto adaptive_result = adaptive.Query();
      ASSERT_TRUE(fixed_result.ok());
      ASSERT_TRUE(adaptive_result.ok());
      const double fixed_radius = ClusteringRadius(
          metric, truth.Snapshot(), fixed_result.value().centers);
      const double adaptive_radius = ClusteringRadius(
          metric, truth.Snapshot(), adaptive_result.value().centers);
      // The paper finds the two variants comparable; allow generous slack.
      EXPECT_LE(adaptive_radius, 3.0 * fixed_radius + 1e-9);
      EXPECT_LE(fixed_radius, 3.0 * adaptive_radius + 1e-9);
    }
  }
  // Adaptive mode uses no more memory than fixed mode (typically less).
  EXPECT_LE(adaptive.Memory().TotalPoints(),
            fixed.Memory().TotalPoints() * 2);
}

TEST(SlidingWindowTest, DuplicatePointsOnlyWindow) {
  // All points identical: no guess structures can be witnessed in adaptive
  // mode; the fallback single-point solution must kick in.
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  SlidingWindowOptions options;
  options.window_size = 10;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, ColorConstraint({1}), &metric,
                                 &jones);
  for (int i = 0; i < 20; ++i) window.Update({7.0, 7.0}, 0);
  auto result = window.Query();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().centers.size(), 1u);
  EXPECT_EQ(result.value().radius, 0.0);
}

TEST(SlidingWindowTest, QueryStatsPopulated) {
  auto window = MakeWindow(20, ColorConstraint({1, 1}), 0.1, 100.0);
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    window.Update({rng.NextUniform(0, 50)}, static_cast<int>(i % 2));
  }
  QueryStats stats;
  auto result = window.Query(&stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.guess, 0.0);
  EXPECT_GT(stats.coreset_size, 0);
  EXPECT_GT(stats.guesses_inspected, 0);
}

TEST(SlidingWindowTest, FixedModeRejectsMissingBounds) {
  SlidingWindowOptions options;
  options.window_size = 10;
  options.adaptive_range = false;
  options.d_min = 0.0;  // missing
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  EXPECT_DEATH(FairCenterSlidingWindow(options, ColorConstraint({1}), &metric,
                                       &jones),
               "d_min");
}

TEST(SlidingWindowTest, DeltaEpsilonRoundTrip) {
  const double delta = DeltaForEpsilon(0.5, 2.0, 3.0);
  EXPECT_NEAR(EpsilonForDelta(delta, 2.0, 3.0), 0.5, 1e-12);
  // Theorem 1's formula: eps / ((1+beta)(1+2alpha)) = 0.5 / (3 * 7).
  EXPECT_NEAR(delta, 0.5 / 21.0, 1e-12);
}

}  // namespace
}  // namespace fkc
