// Tests for the Gonzalez farthest-point greedy: selection invariants, the
// classic 2-approximation, and the head-separation properties the fair
// solvers rely on.
#include <gtest/gtest.h>

#include "common/random.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/gonzalez.h"
#include "sequential/radius.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;

Point P(std::initializer_list<double> coords) {
  return Point(Coordinates(coords), 0);
}

std::vector<Point> RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    Coordinates coords(dim);
    for (double& x : coords) x = rng.NextUniform(0, 100);
    points.emplace_back(std::move(coords), 0);
  }
  return points;
}

TEST(GonzalezTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(GonzalezKCenter(kMetric, {}, 3).head_indices.empty());
  EXPECT_TRUE(GonzalezKCenter(kMetric, {P({1})}, 0).head_indices.empty());
  const auto result = GonzalezKCenter(kMetric, {P({1})}, 5);
  EXPECT_EQ(result.head_indices.size(), 1u);
  EXPECT_EQ(result.coverage_radius, 0.0);
}

TEST(GonzalezTest, PicksExtremesOnALine) {
  // Points 0, 1, 10: first head is index 0, second must be the far end.
  const std::vector<Point> points = {P({0}), P({1}), P({10})};
  const auto result = GonzalezKCenter(kMetric, points, 2);
  ASSERT_EQ(result.head_indices.size(), 2u);
  EXPECT_EQ(result.head_indices[0], 0);
  EXPECT_EQ(result.head_indices[1], 2);
  EXPECT_DOUBLE_EQ(result.coverage_radius, 1.0);
  EXPECT_DOUBLE_EQ(result.insertion_distances[1], 10.0);
}

TEST(GonzalezTest, InsertionDistancesNonIncreasing) {
  const auto points = RandomPoints(200, 3, 7);
  const auto result = GonzalezKCenter(kMetric, points, 20);
  for (size_t j = 2; j < result.insertion_distances.size(); ++j) {
    EXPECT_LE(result.insertion_distances[j],
              result.insertion_distances[j - 1] + 1e-12);
  }
}

TEST(GonzalezTest, HeadsPairwiseSeparated) {
  // Pairwise head distances >= the last insertion distance >= coverage.
  const auto points = RandomPoints(150, 2, 9);
  const auto result = GonzalezKCenter(kMetric, points, 10);
  const auto heads = HeadPoints(points, result);
  const double last_delta = result.insertion_distances.back();
  for (size_t i = 0; i < heads.size(); ++i) {
    for (size_t j = i + 1; j < heads.size(); ++j) {
      EXPECT_GE(kMetric.Distance(heads[i], heads[j]), last_delta - 1e-9);
    }
  }
  EXPECT_GE(last_delta, result.coverage_radius - 1e-9);
}

TEST(GonzalezTest, CoverageRadiusIsExact) {
  const auto points = RandomPoints(100, 2, 11);
  const auto result = GonzalezKCenter(kMetric, points, 5);
  const auto heads = HeadPoints(points, result);
  EXPECT_NEAR(result.coverage_radius, ClusteringRadius(kMetric, points, heads),
              1e-12);
}

class GonzalezApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(GonzalezApproximationTest, WithinTwiceOptimal) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<Point> points;
  for (int i = 0; i < 14; ++i) {
    points.push_back(P({rng.NextUniform(0, 50), rng.NextUniform(0, 50)}));
  }
  for (int k = 1; k <= 4; ++k) {
    const auto greedy = GonzalezKCenter(kMetric, points, k);
    const auto exact = BruteForceKCenter(kMetric, points, k);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(greedy.coverage_radius, 2.0 * exact.value().radius + 1e-9)
        << "k=" << k << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GonzalezApproximationTest,
                         ::testing::Range(1, 16));

TEST(GonzalezTest, AllDuplicatePointsTerminate) {
  const std::vector<Point> points(5, P({3, 3}));
  const auto result = GonzalezKCenter(kMetric, points, 3);
  EXPECT_EQ(result.head_indices.size(), 1u);  // early break: all covered
  EXPECT_DOUBLE_EQ(result.coverage_radius, 0.0);
}

TEST(GonzalezTest, FirstIndexSelectable) {
  const std::vector<Point> points = {P({0}), P({5}), P({10})};
  const auto result = GonzalezKCenter(kMetric, points, 2, /*first_index=*/1);
  EXPECT_EQ(result.head_indices[0], 1);
  // Farthest from 5 is 0 or 10 (distance 5 either way).
  EXPECT_DOUBLE_EQ(result.insertion_distances[1], 5.0);
}

}  // namespace
}  // namespace fkc
