// Property tests for the per-guess structures against a mirrored naive
// window: the structural invariants of Section 3 and the coverage guarantees
// of Lemma 1, checked exhaustively at every time step of randomized streams.
#include <gtest/gtest.h>

#include <deque>
#include <limits>

#include "common/random.h"
#include "core/guess_structure.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;

struct InvariantCase {
  uint64_t seed;
  double gamma;
  double delta;
  int64_t window_size;
  int colors;
  CoreVariant variant;
};

class GuessStructureInvariantsTest
    : public ::testing::TestWithParam<InvariantCase> {};

// Minimum arrival among v-attractors (the Cleanup threshold).
int64_t OldestVAttractor(const GuessStructure& guess) {
  int64_t oldest = std::numeric_limits<int64_t>::max();
  for (const AttractorEntry& entry : guess.v_entries()) {
    oldest = std::min(oldest, entry.attractor.arrival);
  }
  return oldest;
}

TEST_P(GuessStructureInvariantsTest, HoldAtEveryStep) {
  const InvariantCase c = GetParam();
  const ColorConstraint constraint(std::vector<int>(c.colors, 2));
  const int k = constraint.TotalK();
  GuessStructure guess(c.gamma, c.delta, c.window_size, constraint,
                       c.variant);

  std::deque<Point> window;
  Rng rng(c.seed);
  for (int64_t t = 1; t <= 6 * c.window_size; ++t) {
    Point p({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
            static_cast<int>(rng.NextBounded(c.colors)));
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    window.push_back(p);
    if (static_cast<int64_t>(window.size()) > c.window_size) {
      window.pop_front();
    }
    guess.Update(p, t, kMetric, nullptr);

    // --- Structural invariants. ---
    // |AV| <= k + 1 after every update.
    ASSERT_LE(guess.v_attractor_count(), k + 1);
    // v-attractors pairwise > 2*gamma.
    const auto& v = guess.v_entries();
    for (size_t i = 0; i < v.size(); ++i) {
      for (size_t j = i + 1; j < v.size(); ++j) {
        ASSERT_GT(kMetric.Distance(v[i].attractor, v[j].attractor),
                  2.0 * c.gamma);
      }
    }
    // c-attractors pairwise > delta*gamma/2.
    const auto& ca = guess.c_entries();
    for (size_t i = 0; i < ca.size(); ++i) {
      for (size_t j = i + 1; j < ca.size(); ++j) {
        ASSERT_GT(kMetric.Distance(ca[i].attractor, ca[j].attractor),
                  c.delta * c.gamma / 2.0);
      }
    }
    // Every stored point is active; representatives sit within attraction
    // radius of their attractor; per-color caps are respected.
    for (const AttractorEntry& entry : v) {
      ASSERT_TRUE(IsActive(entry.attractor, t, c.window_size));
      for (const Point& rep : entry.representatives) {
        ASSERT_TRUE(IsActive(rep, t, c.window_size));
        ASSERT_LE(kMetric.Distance(rep, entry.attractor),
                  2.0 * c.gamma + 1e-12);
      }
      for (int color = 0; color < c.colors; ++color) {
        ASSERT_LE(CountColor(entry, color),
                  c.variant == CoreVariant::kFull ? 1 : constraint.cap(color));
      }
    }
    for (const AttractorEntry& entry : ca) {
      ASSERT_TRUE(IsActive(entry.attractor, t, c.window_size));
      for (const Point& rep : entry.representatives) {
        ASSERT_TRUE(IsActive(rep, t, c.window_size));
        ASSERT_LE(kMetric.Distance(rep, entry.attractor),
                  c.delta * c.gamma / 2.0 + 1e-12);
      }
      for (int color = 0; color < c.colors; ++color) {
        ASSERT_LE(CountColor(entry, color), constraint.cap(color));
      }
    }
    for (const Point& orphan : guess.v_orphans()) {
      ASSERT_TRUE(IsActive(orphan, t, c.window_size));
    }
    for (const Point& orphan : guess.c_orphans()) {
      ASSERT_TRUE(IsActive(orphan, t, c.window_size));
    }

    // --- Lemma 1 coverage. ---
    // Relevant points: the whole window when the guess is valid, otherwise
    // the suffix younger than the oldest v-attractor.
    const bool valid = guess.IsValid();
    const int64_t threshold = valid ? 0 : OldestVAttractor(guess);
    const std::vector<Point> rv = guess.ValidationPoints();
    const std::vector<Point> r = guess.CoresetPoints();
    for (const Point& q : window) {
      if (!valid && q.arrival < threshold) continue;
      ASSERT_LE(DistanceToSet(kMetric, q, rv), 4.0 * c.gamma + 1e-9)
          << "RV coverage broken at t=" << t << " for " << q.ToString();
      if (c.variant == CoreVariant::kFull) {
        ASSERT_LE(DistanceToSet(kMetric, q, r), c.delta * c.gamma + 1e-9)
            << "R coverage broken at t=" << t << " for " << q.ToString();
      }
    }

    // Memory accounting is consistent with the exposed containers.
    const MemoryStats memory = guess.Memory();
    ASSERT_EQ(memory.v_attractors, static_cast<int64_t>(v.size()));
    ASSERT_EQ(memory.v_representatives,
              CountRepresentatives(v) +
                  static_cast<int64_t>(guess.v_orphans().size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuessStructureInvariantsTest,
    ::testing::Values(
        // gamma large enough that the guess stays valid.
        InvariantCase{1, 40.0, 0.5, 30, 2, CoreVariant::kFull},
        // gamma small: the guess is mostly invalid, exercising Cleanup.
        InvariantCase{2, 1.0, 0.5, 30, 2, CoreVariant::kFull},
        // Intermediate scale, more colors, different deltas.
        InvariantCase{3, 8.0, 1.0, 25, 3, CoreVariant::kFull},
        InvariantCase{4, 8.0, 4.0, 25, 3, CoreVariant::kFull},
        InvariantCase{5, 15.0, 2.0, 40, 1, CoreVariant::kFull},
        // Corollary-2 variant at several scales.
        InvariantCase{6, 40.0, 4.0, 30, 2, CoreVariant::kValidationOnly},
        InvariantCase{7, 8.0, 4.0, 25, 3, CoreVariant::kValidationOnly},
        InvariantCase{8, 2.0, 4.0, 20, 2, CoreVariant::kValidationOnly}),
    [](const auto& info) {
      return "case" + std::to_string(info.param.seed);
    });

TEST(GuessStructureTest, RejectsZeroCapArrival) {
  const ColorConstraint constraint({1, 0});
  GuessStructure guess(1.0, 0.5, 10, constraint, CoreVariant::kFull);
  Point p({0.0}, 1);
  p.arrival = 1;
  p.id = 1;
  EXPECT_DEATH(guess.Update(p, 1, kMetric, nullptr), "zero-cap color");
}

TEST(GuessStructureTest, ValidityFlipsWithScale) {
  // Points on a line spaced 10 apart, k = 1: a guess with gamma = 1 must
  // become invalid (two attractors > 2 apart), gamma = 100 stays valid.
  const ColorConstraint constraint({1});
  GuessStructure small(1.0, 0.5, 100, constraint, CoreVariant::kFull);
  GuessStructure large(100.0, 0.5, 100, constraint, CoreVariant::kFull);
  for (int64_t t = 1; t <= 5; ++t) {
    Point p({10.0 * static_cast<double>(t)}, 0);
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    small.Update(p, t, kMetric, nullptr);
    large.Update(p, t, kMetric, nullptr);
  }
  EXPECT_FALSE(small.IsValid());
  EXPECT_TRUE(large.IsValid());
}

TEST(GuessStructureTest, ValidityRecoversAfterExpiry) {
  // k = 1, window 4: two far points make the guess invalid; once the first
  // expires, validity returns.
  const ColorConstraint constraint({1});
  GuessStructure guess(1.0, 0.5, 4, constraint, CoreVariant::kFull);
  int64_t t = 0;
  auto feed = [&](double x) {
    ++t;
    Point p({x}, 0);
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    guess.Update(p, t, kMetric, nullptr);
  };
  feed(0.0);
  feed(100.0);
  EXPECT_FALSE(guess.IsValid());
  feed(100.1);
  feed(100.2);
  feed(100.3);  // t=5: the point at 0.0 (arrival 1) has expired
  EXPECT_TRUE(guess.IsValid());
}

TEST(GuessStructureTest, ReplayReproducesCoverage) {
  // Replaying a structure's stored points into a fresh structure of the same
  // gamma must preserve the RV coverage property for the replayed points.
  const ColorConstraint constraint({2, 2});
  GuessStructure source(5.0, 1.0, 50, constraint, CoreVariant::kFull);
  Rng rng(7);
  int64_t t = 0;
  for (; t < 40;) {
    ++t;
    Point p({rng.NextUniform(0, 30)}, static_cast<int>(rng.NextBounded(2)));
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    source.Update(p, t, kMetric, nullptr);
  }
  GuessStructure copy(5.0, 1.0, 50, constraint, CoreVariant::kFull);
  source.ReplayInto(&copy, t, kMetric);
  // Every point stored in the source is 4*gamma-covered in the copy's RV.
  const std::vector<Point> rv = copy.ValidationPoints();
  for (const Point& q : source.ValidationPoints()) {
    EXPECT_LE(DistanceToSet(kMetric, q, rv), 4.0 * 5.0 + 1e-9);
  }
}

TEST(MemoryStatsTest, AdditionAndToString) {
  MemoryStats a;
  a.v_attractors = 1;
  a.v_representatives = 2;
  a.c_attractors = 3;
  a.c_representatives = 4;
  a.guesses = 1;
  MemoryStats b = a;
  b += a;
  EXPECT_EQ(b.TotalPoints(), 20);
  EXPECT_EQ(b.guesses, 2);
  EXPECT_NE(a.ToString().find("total=10"), std::string::npos);
}

}  // namespace
}  // namespace fkc
