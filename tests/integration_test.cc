// End-to-end integration: datasets -> driver -> streaming algorithms vs
// sequential baselines, verifying the paper's qualitative claims at
// miniature scale (solution quality within a small factor of the baselines,
// sub-window memory, fairness everywhere).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/fair_center_lite.h"
#include "core/fair_center_sliding_window.h"
#include "datasets/registry.h"
#include "metric/aspect_ratio.h"
#include "metric/metric.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/jones_fair_center.h"
#include "stream/window_driver.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const ChenMatroidCenter kChen;

class DatasetIntegrationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetIntegrationTest, FullPipelineMatchesPaperClaims) {
  const std::string dataset_name = GetParam();
  const int64_t window_size = 300;
  const int64_t stream_length = 900;

  auto dataset = datasets::MakeDataset(dataset_name, stream_length);
  ASSERT_TRUE(dataset.ok());
  const int ell = dataset.value().ell;
  const ColorConstraint constraint =
      ColorConstraint::Proportional(dataset.value().points, ell, 14);

  // Distance bounds for the fixed-range variant, as the paper's Ours.
  std::vector<Point> sample;
  for (size_t i = 0; i < dataset.value().points.size(); i += 3) {
    sample.push_back(dataset.value().points[i]);
  }
  const DistanceExtrema extrema = ComputeDistanceExtrema(kMetric, sample);
  ASSERT_GT(extrema.max_distance, 0.0);

  SlidingWindowOptions fixed;
  fixed.window_size = window_size;
  fixed.beta = 2.0;
  fixed.delta = 0.5;
  fixed.d_min = extrema.min_distance;
  fixed.d_max = extrema.max_distance * 1.5;  // sample slack
  FairCenterSlidingWindow ours(fixed, constraint, &kMetric, &kJones);

  SlidingWindowOptions adaptive = fixed;
  adaptive.adaptive_range = true;
  adaptive.d_min = adaptive.d_max = 0.0;
  FairCenterSlidingWindow oblivious(adaptive, constraint, &kMetric, &kJones);

  FairCenterLite lite(adaptive, constraint, &kMetric, &kJones);

  WindowDriver driver(&kMetric, constraint, window_size);
  driver.AddStreaming("Ours", &ours);
  driver.AddStreaming("OursOblivious", &oblivious);
  driver.AddStreaming("Lite", &lite);
  driver.AddBaseline("Jones", &kJones);
  driver.AddBaseline("ChenEtAl", &kChen);

  auto stream = datasets::MakeStream(std::move(dataset).value());
  DriverOptions run;
  run.stream_length = stream_length;
  run.num_queries = 10;
  run.query_stride = 5;
  const auto reports = driver.Run(stream.get(), run);
  ASSERT_EQ(reports.size(), 5u);

  const auto& ours_report = reports[0];
  const auto& oblivious_report = reports[1];
  const auto& lite_report = reports[2];

  // Paper, Fig. 1: streaming solutions within ~2x of the best baseline even
  // at coarse coresets; delta = 0.5 is the most accurate setting. Allow a
  // generous margin for the tiny windows used here.
  EXPECT_LT(ours_report.mean_ratio, 2.5) << dataset_name;
  EXPECT_LT(oblivious_report.mean_ratio, 2.5) << dataset_name;
  // Lite is the weakest variant, but still constant-factor.
  EXPECT_LT(lite_report.mean_ratio, 6.0) << dataset_name;

  // Memory: the asymptotic below-window claim needs real window sizes (the
  // benches show it); at this miniature scale just bound the overhead — the
  // per-guess structures must not blow past a small multiple of the window.
  EXPECT_LT(lite_report.mean_memory_points, 1.5 * window_size);
  EXPECT_DOUBLE_EQ(reports[3].mean_memory_points,
                   static_cast<double>(window_size));
  EXPECT_DOUBLE_EQ(reports[4].mean_memory_points,
                   static_cast<double>(window_size));

  // Baseline ratios: each baseline's per-window ratio is >= 1 by definition
  // of the denominator (best baseline radius of that window); the better of
  // the two means stays near 1 (they alternate as per-window winners).
  EXPECT_GE(reports[3].mean_ratio, 1.0 - 1e-9);
  EXPECT_GE(reports[4].mean_ratio, 1.0 - 1e-9);
  EXPECT_LE(std::min(reports[3].mean_ratio, reports[4].mean_ratio), 1.15);
}

INSTANTIATE_TEST_SUITE_P(RealDatasets, DatasetIntegrationTest,
                         ::testing::Values("phones", "higgs", "covtype"),
                         [](const auto& info) { return info.param; });

TEST(IntegrationTest, SyntheticFamiliesRunEndToEnd) {
  for (const std::string name : {"blobs3", "rotated6"}) {
    auto dataset = datasets::MakeDataset(name, 600);
    ASSERT_TRUE(dataset.ok());
    const ColorConstraint constraint = ColorConstraint::Uniform(7, 3);

    SlidingWindowOptions options;
    options.window_size = 200;
    options.delta = 2.0;
    options.adaptive_range = true;
    FairCenterSlidingWindow window(options, constraint, &kMetric, &kJones);

    WindowDriver driver(&kMetric, constraint, 200);
    driver.AddStreaming("Ours", &window);
    driver.AddBaseline("Jones", &kJones);

    auto stream = datasets::MakeStream(std::move(dataset).value());
    DriverOptions run;
    run.stream_length = 600;
    run.num_queries = 5;
    run.query_stride = 3;
    const auto reports = driver.Run(stream.get(), run);
    EXPECT_LT(reports[0].mean_ratio, 3.0) << name;
  }
}

TEST(IntegrationTest, ConceptDriftRecovery) {
  // An abrupt distribution shift: the window slides off the old regime and
  // the streaming solution must track the new one within a few window
  // lengths (the whole point of sliding windows vs insertion-only).
  const ColorConstraint constraint({2, 2});
  SlidingWindowOptions options;
  options.window_size = 150;
  options.delta = 1.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, constraint, &kMetric, &kJones);

  Rng rng(17);
  ReferenceWindow truth(150);
  int64_t t = 0;
  auto feed = [&](double lo, double hi) {
    ++t;
    Point p({rng.NextUniform(lo, hi), rng.NextUniform(lo, hi)},
            static_cast<int>(rng.NextBounded(2)));
    p.arrival = t;
    truth.Update(p);
    window.Update(p);
  };
  // Regime A: huge spread.
  for (int i = 0; i < 300; ++i) feed(0.0, 5000.0);
  // Regime B: tight cluster.
  for (int i = 0; i < 300; ++i) feed(100.0, 101.0);

  auto result = window.Query();
  ASSERT_TRUE(result.ok());
  const double radius =
      ClusteringRadius(kMetric, truth.Snapshot(), result.value().centers);
  EXPECT_LT(radius, 5.0) << "failed to adapt to the post-drift regime";
}

}  // namespace
}  // namespace fkc
