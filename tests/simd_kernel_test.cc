// Bit-identity and invariant tests for the SoA distance engine: every
// compiled SIMD kernel set must reproduce the scalar reference — and the
// virtual per-pair Distance — bit for bit (lane-per-pair contract, see
// simd_kernels.h), across awkward dimensions, counts that straddle vector
// widths, and subnormal coordinates; and the CoordinatePool must hold its
// layout invariants under arbitrary insert/remove/compaction churn.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "metric/coordinate_pool.h"
#include "metric/counting_metric.h"
#include "metric/metric.h"
#include "metric/simd_kernels.h"

namespace fkc {
namespace {

std::vector<Point> RandomPoints(size_t count, size_t dim, Rng* rng,
                                double lo = -100.0, double hi = 100.0) {
  std::vector<Point> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Coordinates coords(dim);
    for (size_t d = 0; d < dim; ++d) coords[d] = rng->NextUniform(lo, hi);
    points.emplace_back(std::move(coords), 0);
  }
  return points;
}

CoordinatePool PoolOf(const std::vector<Point>& points, size_t dim) {
  CoordinatePool pool(dim);
  for (const Point& p : points) pool.Append(p);
  return pool;
}

// Runs `kernel` and the scalar reference over the same pool and requires the
// outputs to be bit-identical (memcmp, not epsilon).
void ExpectKernelMatchesScalar(simd::DistanceKernel kernel,
                               simd::DistanceKernel scalar_kernel,
                               const Point& query, const CoordinatePool& pool,
                               const char* set_name, const char* metric_name) {
  const size_t count = pool.size();
  std::vector<double> got(count, -1.0), want(count, -1.0);
  scalar_kernel(query.coords.data(), pool.Row(0), pool.stride(), pool.dim(),
                count, want.data());
  kernel(query.coords.data(), pool.Row(0), pool.stride(), pool.dim(), count,
         got.data());
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(want[i], got[i])
        << set_name << "/" << metric_name << " diverged at pair " << i
        << " (dim=" << pool.dim() << ", count=" << count << ")";
  }
  EXPECT_EQ(std::memcmp(want.data(), got.data(), count * sizeof(double)), 0)
      << set_name << "/" << metric_name << " not bit-identical";
}

TEST(SimdKernelTest, ScalarSetIsAlwaysPresentAndActiveIsSupported) {
  const auto sets = simd::CompiledKernelSets();
  ASSERT_FALSE(sets.empty());
  EXPECT_EQ(sets[0], &simd::ScalarKernels());
  EXPECT_TRUE(simd::CpuSupports(simd::ScalarKernels()));
  EXPECT_TRUE(simd::CpuSupports(simd::ActiveKernels()));
  EXPECT_GE(simd::ActiveKernels().lanes, 1u);
}

TEST(SimdKernelTest, CompiledSetsMatchScalarBitForBit) {
  const size_t dims[] = {1, 3, 7, 53};
  // Counts straddling every vector width: below, at, and just past 4 (AVX2)
  // and 8 (AVX-512) lane boundaries, plus larger ragged tails.
  const size_t counts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};
  Rng rng(123);
  for (size_t dim : dims) {
    for (size_t count : counts) {
      const auto stored = RandomPoints(count, dim, &rng);
      const auto pool = PoolOf(stored, dim);
      const Point query = RandomPoints(1, dim, &rng)[0];
      for (const simd::KernelSet* set : simd::CompiledKernelSets()) {
        if (!simd::CpuSupports(*set)) continue;
        const auto& scalar = simd::ScalarKernels();
        ExpectKernelMatchesScalar(set->euclidean, scalar.euclidean, query,
                                  pool, set->name, "euclidean");
        ExpectKernelMatchesScalar(set->manhattan, scalar.manhattan, query,
                                  pool, set->name, "manhattan");
        ExpectKernelMatchesScalar(set->chebyshev, scalar.chebyshev, query,
                                  pool, set->name, "chebyshev");
      }
    }
  }
}

TEST(SimdKernelTest, SubnormalCoordinatesStayBitIdentical) {
  // Differences in the subnormal range: vector units must not flush to zero
  // (no DAZ/FTZ in a standard build) and must round exactly like the scalar
  // path.
  const size_t dim = 7, count = 13;
  const double tiny = std::numeric_limits<double>::denorm_min();
  Rng rng(77);
  CoordinatePool pool(dim);
  std::vector<Point> stored;
  for (size_t i = 0; i < count; ++i) {
    Coordinates coords(dim);
    for (size_t d = 0; d < dim; ++d) {
      coords[d] = static_cast<double>(rng.NextBounded(1000)) * tiny;
    }
    stored.emplace_back(std::move(coords), 0);
    pool.Append(stored.back());
  }
  Coordinates query_coords(dim);
  for (size_t d = 0; d < dim; ++d) {
    query_coords[d] = static_cast<double>(rng.NextBounded(1000)) * tiny;
  }
  const Point query(std::move(query_coords), 0);
  for (const simd::KernelSet* set : simd::CompiledKernelSets()) {
    if (!simd::CpuSupports(*set)) continue;
    const auto& scalar = simd::ScalarKernels();
    ExpectKernelMatchesScalar(set->euclidean, scalar.euclidean, query, pool,
                              set->name, "euclidean");
    ExpectKernelMatchesScalar(set->manhattan, scalar.manhattan, query, pool,
                              set->name, "manhattan");
    ExpectKernelMatchesScalar(set->chebyshev, scalar.chebyshev, query, pool,
                              set->name, "chebyshev");
  }
}

TEST(SimdKernelTest, DistanceSoAMatchesVirtualDistanceBitForBit) {
  const EuclideanMetric euclidean;
  const ManhattanMetric manhattan;
  const ChebyshevMetric chebyshev;
  const Metric* metrics[] = {&euclidean, &manhattan, &chebyshev};
  Rng rng(31);
  for (size_t dim : {1u, 3u, 16u, 53u}) {
    for (size_t count : {1u, 5u, 9u, 40u}) {
      const auto stored = RandomPoints(count, dim, &rng);
      const auto pool = PoolOf(stored, dim);
      const Point query = RandomPoints(1, dim, &rng)[0];
      for (const Metric* metric : metrics) {
        std::vector<double> soa(count, -1.0);
        metric->DistanceSoA(query, pool, soa.data());
        for (size_t i = 0; i < count; ++i) {
          EXPECT_EQ(metric->Distance(query, stored[i]), soa[i])
              << metric->Name() << " dim=" << dim << " pair " << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, GenericMetricFallbackGathersColumns) {
  // A metric that overrides nothing but Distance must still get correct SoA
  // results through the base-class gather path.
  class HalfEuclidean final : public Metric {
   public:
    double Distance(const Point& a, const Point& b) const override {
      return 0.5 * base_.Distance(a, b);
    }
    std::string Name() const override { return "half"; }

   private:
    EuclideanMetric base_;
  };
  const HalfEuclidean metric;
  Rng rng(9);
  const auto stored = RandomPoints(11, 5, &rng);
  const auto pool = PoolOf(stored, 5);
  const Point query = RandomPoints(1, 5, &rng)[0];
  std::vector<double> out(stored.size(), -1.0);
  metric.DistanceSoA(query, pool, out.data());
  for (size_t i = 0; i < stored.size(); ++i) {
    EXPECT_EQ(metric.Distance(query, stored[i]), out[i]);
  }
}

TEST(SimdKernelTest, CountingMetricCountsOnePerPairOnSoA) {
  const EuclideanMetric inner;
  CountingMetric counting(&inner);
  Rng rng(5);
  const auto stored = RandomPoints(17, 4, &rng);
  const auto pool = PoolOf(stored, 4);
  const Point query = RandomPoints(1, 4, &rng)[0];
  std::vector<double> out(stored.size());
  counting.DistanceSoA(query, pool, out.data());
  EXPECT_EQ(counting.count(), 17);
  counting.DistanceSoA(query, pool, out.data());
  EXPECT_EQ(counting.count(), 34);
  for (size_t i = 0; i < stored.size(); ++i) {
    EXPECT_EQ(inner.Distance(query, stored[i]), out[i]);
  }
}

// --- CoordinatePool invariants under churn. ---

TEST(CoordinatePoolTest, AppendAssignsDensePositionsInOrder) {
  CoordinatePool pool(3);
  Rng rng(2);
  const auto points = RandomPoints(20, 3, &rng);
  std::vector<uint32_t> slots;
  for (const Point& p : points) slots.push_back(pool.Append(p));
  ASSERT_EQ(pool.size(), 20u);
  pool.CheckInvariants();
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(pool.DensePos(slots[i]), i);
    EXPECT_EQ(pool.SlotAt(i), slots[i]);
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(pool.At(i, d), points[i].coords[d]);
    }
  }
}

TEST(CoordinatePoolTest, RemoveShiftsTailAndPreservesOrder) {
  CoordinatePool pool(2);
  Rng rng(3);
  const auto points = RandomPoints(5, 2, &rng);
  std::vector<uint32_t> slots;
  for (const Point& p : points) slots.push_back(pool.Append(p));
  pool.Remove(slots[1]);
  pool.CheckInvariants();
  ASSERT_EQ(pool.size(), 4u);
  EXPECT_FALSE(pool.Contains(slots[1]));
  // Order-preserving compaction: 0,2,3,4 in that dense order.
  const size_t survivors[] = {0, 2, 3, 4};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.SlotAt(i), slots[survivors[i]]);
    EXPECT_EQ(pool.At(i, 0), points[survivors[i]].coords[0]);
  }
}

TEST(CoordinatePoolTest, RandomChurnAgainstMirror) {
  // Random Append/Remove/RemoveMasked churn checked against a plain mirror
  // vector after every operation: dense order, slot stability, coordinates,
  // and the padding/stride invariants (via CheckInvariants) must all hold.
  const size_t dim = 5;
  CoordinatePool pool(dim);
  Rng rng(99);
  struct MirrorEntry {
    uint32_t slot;
    Coordinates coords;
  };
  std::vector<MirrorEntry> mirror;

  for (int step = 0; step < 600; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 5 || mirror.empty()) {
      Coordinates coords(dim);
      for (size_t d = 0; d < dim; ++d) coords[d] = rng.NextUniform(-10, 10);
      const uint32_t slot = pool.Append(coords.data());
      mirror.push_back({slot, std::move(coords)});
    } else if (op < 8) {
      const size_t victim = rng.NextBounded(mirror.size());
      pool.Remove(mirror[victim].slot);
      mirror.erase(mirror.begin() + static_cast<long>(victim));
    } else {
      std::vector<unsigned char> mask(mirror.size());
      for (size_t i = 0; i < mirror.size(); ++i) {
        mask[i] = rng.NextBernoulli(0.3) ? 1 : 0;
      }
      pool.RemoveMasked(mask);
      std::vector<MirrorEntry> kept;
      for (size_t i = 0; i < mirror.size(); ++i) {
        if (!mask[i]) kept.push_back(std::move(mirror[i]));
      }
      mirror = std::move(kept);
    }

    pool.CheckInvariants();
    ASSERT_EQ(pool.size(), mirror.size());
    for (size_t i = 0; i < mirror.size(); ++i) {
      ASSERT_EQ(pool.SlotAt(i), mirror[i].slot) << "step " << step;
      ASSERT_EQ(pool.DensePos(mirror[i].slot), i);
      for (size_t d = 0; d < dim; ++d) {
        ASSERT_EQ(pool.At(i, d), mirror[i].coords[d]);
      }
    }
  }
}

TEST(CoordinatePoolTest, ClearAndResetDim) {
  CoordinatePool pool(3);
  Rng rng(4);
  for (const Point& p : RandomPoints(10, 3, &rng)) pool.Append(p);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  pool.CheckInvariants();
  // After Clear the dimension survives and appends restart at position 0.
  const auto fresh = RandomPoints(2, 3, &rng);
  pool.Append(fresh[0]);
  EXPECT_EQ(pool.At(0, 1), fresh[0].coords[1]);

  pool.ResetDim(6);
  EXPECT_EQ(pool.dim(), 6u);
  EXPECT_EQ(pool.size(), 0u);
  const auto wide = RandomPoints(1, 6, &rng);
  pool.Append(wide[0]);
  pool.CheckInvariants();
  EXPECT_EQ(pool.At(0, 5), wide[0].coords[5]);
}

TEST(CoordinatePoolTest, PaddingIsReadableToLaneBoundary) {
  // The over-read contract the kernels rely on: every row must be readable
  // (and zero) out to RoundUpToLanes(size()).
  CoordinatePool pool(4);
  Rng rng(8);
  for (const Point& p : RandomPoints(11, 4, &rng)) pool.Append(p);
  ASSERT_GE(pool.stride(), simd::RoundUpToLanes(pool.size()));
  for (size_t d = 0; d < pool.dim(); ++d) {
    const double* row = pool.Row(d);
    for (size_t i = pool.size(); i < simd::RoundUpToLanes(pool.size()); ++i) {
      EXPECT_EQ(row[i], 0.0);
    }
  }
}

}  // namespace
}  // namespace fkc
