// ShardManager contract: keyed routing equals standalone windows, batched
// ingest equals per-point ingest at any thread count, query multiplexing is
// deterministic, and the fleet survives a kill/restore cycle — every shard
// answers identically before and after, including under interleaved
// post-restore updates.
//
// Multi-tenant hardening contract: invalid arrivals are rejected without
// aborting (dropping only the offenders), per-tenant option overrides apply
// at creation and survive checkpoints, TTL/LRU eviction is transparent
// (spilled shards answer identically and rehydrate bit-exactly), delta
// checkpoints reproduce the full-checkpoint fleet, v1 blobs still restore,
// and no truncation of any blob can crash the process.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/checkpoint_io.h"
#include "common/random.h"
#include "core/options_io.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const char* kKeys[] = {"tenant-a", "tenant-b", "tenant-c"};

std::vector<serving::KeyedPoint> KeyedStream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<serving::KeyedPoint> stream;
  for (int i = 0; i < n; ++i) {
    serving::KeyedPoint kp;
    kp.key = kKeys[rng.NextBounded(3)];
    kp.point = Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                     static_cast<int>(rng.NextBounded(3)));
    stream.push_back(std::move(kp));
  }
  return stream;
}

serving::ShardManagerOptions Options(int num_threads) {
  serving::ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.num_threads = num_threads;
  return options;
}

const ColorConstraint kConstraint({2, 1, 1});

// CheckpointAll / CheckpointDelta are fallible now (a spill backend read
// may fail); the happy-path tests unwrap through these.
std::string MustCheckpoint(serving::ShardManager* manager) {
  auto blob = manager->CheckpointAll();
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  return blob.ValueOr("");
}

std::string MustDelta(serving::ShardManager* manager) {
  auto blob = manager->CheckpointDelta();
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  return blob.ValueOr("");
}

bool SameSolution(const ObjectiveSolution& a, const ObjectiveSolution& b) {
  if (a.value != b.value || a.centers.size() != b.centers.size()) {
    return false;
  }
  for (size_t i = 0; i < a.centers.size(); ++i) {
    if (a.centers[i].coords != b.centers[i].coords ||
        a.centers[i].color != b.centers[i].color) {
      return false;
    }
  }
  return true;
}

void ExpectSameAnswers(const std::vector<serving::ShardAnswer>& a,
                       const std::vector<serving::ShardAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    ASSERT_EQ(a[i].solution.ok(), b[i].solution.ok()) << a[i].key;
    if (a[i].solution.ok()) {
      EXPECT_TRUE(
          SameSolution(a[i].solution.value(), b[i].solution.value()))
          << a[i].key;
    }
    EXPECT_EQ(a[i].stats.guess, b[i].stats.guess) << a[i].key;
    EXPECT_EQ(a[i].stats.coreset_size, b[i].stats.coreset_size) << a[i].key;
    EXPECT_EQ(a[i].stats.guesses_inspected, b[i].stats.guesses_inspected)
        << a[i].key;
  }
}

TEST(ShardManagerTest, RoutesByKeyLikeStandaloneWindows) {
  const auto stream = KeyedStream(200, 7);
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) manager.Ingest(kp.key, kp.point);

  for (const char* key : kKeys) {
    FairCenterSlidingWindow standalone(Options(1).window, kConstraint,
                                       &kMetric, &kJones);
    for (const auto& kp : stream) {
      if (kp.key == key) standalone.Update(kp.point);
    }
    ASSERT_NE(manager.shard(key), nullptr);
    EXPECT_EQ(manager.shard(key)->SerializeState(),
              standalone.SerializeState())
        << key;
  }
}

TEST(ShardManagerTest, IngestBatchMatchesPerPointIngestAtAnyThreadCount) {
  const auto stream = KeyedStream(300, 11);
  serving::ShardManager reference(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) reference.Ingest(kp.key, kp.point);

  for (int threads : {1, 4}) {
    serving::ShardManager batched(Options(threads), kConstraint, &kMetric,
                                  &kJones);
    for (size_t start = 0; start < stream.size(); start += 48) {
      std::vector<serving::KeyedPoint> batch(
          stream.begin() + start,
          stream.begin() + std::min(start + 48, stream.size()));
      batched.IngestBatch(std::move(batch));
    }
    ASSERT_EQ(batched.Keys(), reference.Keys());
    for (const std::string& key : reference.Keys()) {
      EXPECT_EQ(batched.shard(key)->SerializeState(),
                reference.shard(key)->SerializeState())
          << key << " at " << threads << " threads";
    }
  }
}

TEST(ShardManagerTest, QueryAllMatchesPerShardQueries) {
  const auto stream = KeyedStream(240, 13);
  serving::ShardManager fanout(Options(4), kConstraint, &kMetric, &kJones);
  serving::ShardManager single(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) {
    fanout.Ingest(kp.key, kp.point);
    single.Ingest(kp.key, kp.point);
  }

  const auto answers = fanout.QueryAll();
  ASSERT_EQ(answers.size(), single.shard_count());
  for (const auto& answer : answers) {
    QueryStats stats;
    auto expected = single.Query(answer.key, &stats);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(answer.solution.ok());
    EXPECT_TRUE(SameSolution(answer.solution.value(), expected.value()))
        << answer.key;
    EXPECT_EQ(answer.stats.guess, stats.guess);
    EXPECT_EQ(answer.stats.coreset_size, stats.coreset_size);
    EXPECT_EQ(answer.stats.guesses_inspected, stats.guesses_inspected);
  }
}

TEST(ShardManagerTest, QueryUnknownKeyIsNotFound) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  auto result = manager.Query("never-seen");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// The acceptance criterion: checkpoint all shards, reconstruct, and answer
// queries identically — also after further interleaved per-shard updates.
TEST(ShardManagerTest, SurvivesKillRestoreCycle) {
  const auto stream = KeyedStream(320, 17);
  const auto more = KeyedStream(160, 19);

  serving::ShardManager original(Options(2), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) original.Ingest(kp.key, kp.point);
  const auto before = original.QueryAll();

  const std::string blob = MustCheckpoint(&original);
  auto restored =
      serving::ShardManager::Restore(blob, &kMetric, &kJones, /*threads=*/4);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().shard_count(), original.shard_count());

  // Identical answers immediately after restore.
  ExpectSameAnswers(before, restored.value().QueryAll());

  // Identical behaviour under further interleaved per-shard updates.
  for (const auto& kp : more) {
    original.Ingest(kp.key, kp.point);
    restored.value().Ingest(kp.key, kp.point);
  }
  ExpectSameAnswers(original.QueryAll(), restored.value().QueryAll());
  for (const std::string& key : original.Keys()) {
    EXPECT_EQ(original.shard(key)->SerializeState(),
              restored.value().shard(key)->SerializeState())
        << key;
  }
}

// The restored manager keeps the window template: tenants first seen after
// the restore get a shard with the same configuration.
TEST(ShardManagerTest, NewTenantAfterRestoreUsesTemplate) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  manager.Ingest("tenant-a", Point({1.0, 2.0}, 0));
  auto restored = serving::ShardManager::Restore(MustCheckpoint(&manager),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  restored.value().Ingest("tenant-new", Point({3.0, 4.0}, 1));
  ASSERT_NE(restored.value().shard("tenant-new"), nullptr);
  EXPECT_EQ(restored.value().shard("tenant-new")->options().window_size,
            Options(1).window.window_size);
  EXPECT_EQ(restored.value().shard("tenant-new")->now(), 1);
}

TEST(ShardManagerTest, RestoreRejectsGarbage) {
  auto bad_magic =
      serving::ShardManager::Restore("not-a-checkpoint 1 2 3", &kMetric,
                                     &kJones);
  EXPECT_FALSE(bad_magic.ok());

  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  manager.Ingest("tenant-a", Point({1.0, 2.0}, 0));
  std::string truncated = MustCheckpoint(&manager);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(
      serving::ShardManager::Restore(truncated, &kMetric, &kJones).ok());
}

// A front-end must reject one tenant's garbage without taking down the
// fleet: oversized keys and out-of-range colors fail with InvalidArgument,
// and a mixed batch drops exactly the offending arrivals.
TEST(ShardManagerTest, InvalidArrivalsAreRejectedNotFatal) {
  const auto stream = KeyedStream(120, 23);
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  serving::ShardManager reference(Options(1), kConstraint, &kMetric, &kJones);

  const std::string oversized(1u << 20, 'k');
  auto status = manager.Ingest(oversized, Point({1.0, 1.0}, 0));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Ingest("ok", Point({1.0, 1.0}, 7)).code(),
            StatusCode::kInvalidArgument)
      << "color 7 is outside the 3-color constraint";
  EXPECT_EQ(manager.shard_count(), 0u) << "nothing was consumed";

  // A batch with offenders sprinkled in: every valid arrival lands, the
  // offenders are dropped, and the status names the problem.
  std::vector<serving::KeyedPoint> batch;
  for (const auto& kp : stream) {
    batch.push_back(kp);
    ASSERT_TRUE(reference.Ingest(kp.key, kp.point).ok());
  }
  batch.insert(batch.begin() + 5, {oversized, Point({0.0, 0.0}, 0)});
  batch.insert(batch.begin() + 40, {"ok", Point({0.0, 0.0}, -1)});
  auto mixed = manager.IngestBatch(std::move(batch));
  EXPECT_EQ(mixed.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mixed.message().find("dropped 2 of 122"), std::string::npos)
      << mixed.message();

  ASSERT_EQ(manager.Keys(), reference.Keys());
  for (const std::string& key : reference.Keys()) {
    EXPECT_EQ(manager.shard(key)->SerializeState(),
              reference.shard(key)->SerializeState())
        << key;
  }
}

// A NaN/Inf (or empty) coordinate used to be accepted at ingest although
// DeserializeState rejects it — one poisoned arrival made CheckpointAll
// emit a blob Restore refuses and a spilled shard permanently fail
// rehydration. It must be rejected up front, so every blob the fleet emits
// stays restorable.
TEST(ShardManagerTest, NonFiniteCoordinatesRejectedAndBlobsStayRestorable) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("tenant-a", Point({1.0, 2.0}, 0)).ok());

  EXPECT_EQ(manager.Ingest("tenant-a", Point({nan, 1.0}, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Ingest("tenant-a", Point({1.0, -inf}, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Ingest("tenant-a", Point(Coordinates{}, 0)).code(),
            StatusCode::kInvalidArgument);

  // Batch path: the offender is dropped, the valid arrival still lands.
  std::vector<serving::KeyedPoint> batch;
  batch.push_back({"tenant-a", Point({nan, nan}, 0)});
  batch.push_back({"tenant-a", Point({3.0, 4.0}, 1)});
  EXPECT_EQ(manager.IngestBatch(std::move(batch)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.shard("tenant-a")->WindowPopulation(), 2);

  // The round trip the poisoned arrivals used to break: a full checkpoint
  // restores, and a spilled shard rehydrates and answers identically.
  auto restored = serving::ShardManager::Restore(MustCheckpoint(&manager),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameAnswers(manager.QueryAll(), restored.value().QueryAll());

  ASSERT_TRUE(manager.Ingest("tenant-b", Point({5.0, 6.0}, 0)).ok());
  EXPECT_GT(manager.EvictIdle(/*idle_ttl=*/0), 0);
  auto rehydrated = manager.Query("tenant-a");
  ASSERT_TRUE(rehydrated.ok()) << rehydrated.status().ToString();
}

// A color inside [0, ell) whose cap is zero is representable everywhere but
// can never host a center — GuessStructure::Update CHECK-aborts on it, so
// the front-end must reject it like any other invalid arrival.
TEST(ShardManagerTest, ZeroCapColorsAreRejectedNotFatal) {
  serving::ShardManager manager(Options(1), ColorConstraint({2, 0}), &kMetric,
                                &kJones);
  EXPECT_EQ(manager.Ingest("t", Point({1.0, 1.0}, 1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.shard_count(), 0u) << "nothing was consumed";
  ASSERT_TRUE(manager.Ingest("t", Point({1.0, 1.0}, 0)).ok());

  std::vector<serving::KeyedPoint> batch;
  batch.push_back({"t", Point({2.0, 2.0}, 1)});
  batch.push_back({"t", Point({3.0, 3.0}, 0)});
  EXPECT_EQ(manager.IngestBatch(std::move(batch)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.shard("t")->WindowPopulation(), 2)
      << "only the zero-cap arrival was dropped";
}

// The first accepted arrival pins a shard's coordinate dimension; a later
// mismatch would CHECK-abort in the SoA distance kernels and poison the
// checkpoint (DeserializeState requires one dimension per shard). Distinct
// shards may still use distinct dimensions.
TEST(ShardManagerTest, DimensionMismatchesAreRejectedPerShard) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("2d", Point({1.0, 2.0}, 0)).ok());
  EXPECT_EQ(manager.Ingest("2d", Point({1.0, 2.0, 3.0}, 0)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(manager.Ingest("3d", Point({1.0, 2.0, 3.0}, 0)).ok());
  EXPECT_EQ(manager.shard("2d")->WindowPopulation(), 1);

  // The pin survives spilling — and rejecting must not rehydrate.
  ASSERT_TRUE(manager.Ingest("3d", Point({4.0, 5.0, 6.0}, 1)).ok());
  EXPECT_EQ(manager.EvictIdle(/*idle_ttl=*/0), 1) << "only '2d' was idle";
  EXPECT_EQ(manager.Ingest("2d", Point({1.0}, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.spilled_shard_count(), 1u)
      << "the rejected arrival must not rehydrate the shard";
  ASSERT_TRUE(manager.Ingest("2d", Point({7.0, 8.0}, 0)).ok());

  // In a batch, the first accepted arrival of a brand-new key pins the
  // dimension for the rest of the batch.
  std::vector<serving::KeyedPoint> batch;
  batch.push_back({"new", Point({1.0}, 0)});
  batch.push_back({"new", Point({1.0, 2.0}, 0)});
  EXPECT_EQ(manager.IngestBatch(std::move(batch)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.shard("new")->WindowPopulation(), 1);

  // And it survives a checkpoint round trip.
  auto restored = serving::ShardManager::Restore(MustCheckpoint(&manager),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().Ingest("2d", Point({1.0, 2.0, 3.0}, 0)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(restored.value().Ingest("2d", Point({9.0, 9.0}, 0)).ok());
}

// Builds a v2 fleet blob whose single shard was serialized under `caps` —
// letting tests forge a shard whose embedded constraint disagrees with the
// fleet-level one ({2, 1, 1} here, written as "3 2 1 1").
std::string BuildFleetBlobWithShardCaps(std::vector<int> caps) {
  FairCenterSlidingWindow shard(Options(1).window,
                                ColorConstraint(std::move(caps)), &kMetric,
                                &kJones);
  shard.Update(Point({1.0, 2.0}, 0));
  std::ostringstream out;
  out << "fkc-shards-v2 ";
  WriteSlidingWindowOptions(&out, Options(1).window);
  out << "3 2 1 1 ";  // fleet constraint
  out << "0 ";        // no overrides
  out << "1 ";
  WriteCheckpointRaw(&out, "tenant-a");
  WriteCheckpointRaw(&out, shard.SerializeState());
  return out.str();
}

// A forged or interior-corrupt blob whose shard was built under a different
// constraint used to restore fine and then CHECK-abort on the shard's next
// in-range ingest (StampArrival checks color against the shard's own ell).
// Restore must reject the mismatch up front.
TEST(ShardManagerTest, RestoreRejectsShardWithMismatchedConstraint) {
  auto mismatched = serving::ShardManager::Restore(
      BuildFleetBlobWithShardCaps({1}), &kMetric, &kJones);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  // Sanity: the same layout with a matching shard constraint restores.
  auto matching = serving::ShardManager::Restore(
      BuildFleetBlobWithShardCaps({2, 1, 1}), &kMetric, &kJones);
  ASSERT_TRUE(matching.ok()) << matching.status().ToString();
  EXPECT_TRUE(matching.value().Ingest("tenant-a", Point({3.0, 4.0}, 2)).ok());
}

// Same guard on the incremental path: ApplyDelta already verified the
// delta's fleet-level constraint but not each embedded shard blob's. A
// rejected delta must leave the fleet untouched.
TEST(ShardManagerTest, ApplyDeltaRejectsShardWithMismatchedConstraint) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("tenant-a", Point({1.0, 2.0}, 0)).ok());
  const auto before = manager.QueryAll();

  FairCenterSlidingWindow shard(Options(1).window, ColorConstraint({1}),
                                &kMetric, &kJones);
  shard.Update(Point({1.0, 2.0}, 0));
  std::ostringstream out;
  out << "fkc-shards-delta-v2 ";
  out << "3 2 1 1 ";  // delta fleet constraint matches the manager's
  out << "0 ";        // no overrides
  out << "1 ";
  WriteCheckpointRaw(&out, "tenant-b");
  WriteCheckpointRaw(&out, shard.SerializeState());

  EXPECT_EQ(manager.ApplyDelta(out.str()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.shard_count(), 1u) << "a rejected delta changes nothing";
  ExpectSameAnswers(before, manager.QueryAll());
}

// Writes the PR-2 era fkc-shards-v1 fleet layout (no override table) for
// the shards of `manager`, byte-compatible with the old CheckpointAll.
std::string BuildV1Checkpoint(serving::ShardManager* manager) {
  std::ostringstream out;
  out << "fkc-shards-v1 ";
  const SlidingWindowOptions& w = manager->options().window;
  out << w.window_size << ' ';
  WriteCheckpointDouble(&out, w.beta);
  WriteCheckpointDouble(&out, w.delta);
  out << static_cast<int>(w.variant) << ' ' << (w.adaptive_range ? 1 : 0)
      << ' ';
  WriteCheckpointDouble(&out, w.d_min);
  WriteCheckpointDouble(&out, w.d_max);
  out << w.adaptive_slack_exponents << ' '
      << (w.warm_start_new_guesses ? 1 : 0) << ' ';
  out << manager->constraint().ell() << ' ';
  for (int cap : manager->constraint().caps()) out << cap << ' ';
  const auto keys = manager->Keys();
  out << keys.size() << ' ';
  for (const std::string& key : keys) {
    WriteCheckpointRaw(&out, key);
    WriteCheckpointRaw(&out, manager->shard(key)->SerializeState());
  }
  return out.str();
}

// Fleet blobs written before the v2 format (PR 2) must keep restoring.
TEST(ShardManagerTest, RestoreAcceptsV1Blobs) {
  const auto stream = KeyedStream(200, 29);
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }

  auto restored = serving::ShardManager::Restore(BuildV1Checkpoint(&manager),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().shard_count(), manager.shard_count());
  ExpectSameAnswers(manager.QueryAll(), restored.value().QueryAll());

  // And the v1 fleet re-checkpoints as v2 without losing anything.
  auto v2 = serving::ShardManager::Restore(MustCheckpoint(&restored.value()),
                                           &kMetric, &kJones);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ExpectSameAnswers(manager.QueryAll(), v2.value().QueryAll());
}

// The satellite bugfix: implausible options in a blob (the adaptive slack
// read used to be narrowed to int unchecked; window_size / delta / beta
// were not validated at all) must fail with InvalidArgument, never abort.
TEST(ShardManagerTest, RestoreRejectsImplausibleOptions) {
  // Field order: window_size beta delta variant adaptive d_min d_max slack
  // warm, then the constraint. Each case corrupts one field of an
  // otherwise plausible header.
  const struct {
    const char* label;
    const char* header;
  } kCases[] = {
      {"zero window", "0 0x1p+1 0x1p+0 0 1 0x0p+0 0x0p+0 1 1"},
      {"zero delta", "60 0x1p+1 0x0p+0 0 1 0x0p+0 0x0p+0 1 1"},
      {"negative beta", "60 -0x1p+1 0x1p+0 0 1 0x0p+0 0x0p+0 1 1"},
      {"nan beta", "60 nan 0x1p+0 0 1 0x0p+0 0x0p+0 1 1"},
      {"bad variant", "60 0x1p+1 0x1p+0 9 1 0x0p+0 0x0p+0 1 1"},
      {"huge slack", "60 0x1p+1 0x1p+0 0 1 0x0p+0 0x0p+0 99999999999 1"},
      {"bad fixed range", "60 0x1p+1 0x1p+0 0 0 0x0p+0 0x0p+0 1 1"},
      // Per-field-plausible combo whose guess ladder would hold ~1e21
      // rungs: tiny beta, astronomical d_min..d_max span. Building it
      // would OOM (one GuessStructure per rung) after undefined
      // double->int narrowing in the ladder math.
      {"ladder blow-up", "60 0x1p-60 0x1p+0 0 0 0x1p-1000 0x1p+1000 1 1"},
  };
  for (const auto& c : kCases) {
    const std::string blob =
        std::string("fkc-shards-v2 ") + c.header + " 3 2 1 1 0 0 ";
    auto restored = serving::ShardManager::Restore(blob, &kMetric, &kJones);
    ASSERT_FALSE(restored.ok()) << c.label;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << c.label;
  }
  // All-zero caps would abort in the window constructor downstream.
  auto zero_caps = serving::ShardManager::Restore(
      "fkc-shards-v2 60 0x1p+1 0x1p+0 0 1 0x0p+0 0x0p+0 1 1 2 0 0 0 0 ",
      &kMetric, &kJones);
  ASSERT_FALSE(zero_caps.ok());
}

// The fuzz loop of the acceptance criterion: truncating a fleet blob (or a
// delta) at every byte offset must never crash — each prefix either fails
// with a non-OK status or (when only trailing separators were cut) restores
// a fleet that answers identically.
TEST(ShardManagerTest, CheckpointTruncationFuzzNeverCrashes) {
  serving::ShardManagerOptions options = Options(1);
  options.window.window_size = 20;
  serving::ShardManager manager(options, kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager
                  .SetTenantOptions("tenant-b",
                                    [&] {
                                      auto small = options.window;
                                      small.window_size = 8;
                                      return small;
                                    }())
                  .ok());
  const auto stream = KeyedStream(40, 31);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  const auto expected = manager.QueryAll();

  const std::string blob = MustCheckpoint(&manager);
  int restored_ok = 0;
  for (size_t cut = 0; cut <= blob.size(); ++cut) {
    auto restored = serving::ShardManager::Restore(blob.substr(0, cut),
                                                   &kMetric, &kJones);
    if (cut < blob.size() / 2) {
      EXPECT_FALSE(restored.ok()) << "cut=" << cut;
    }
    if (restored.ok()) {
      ++restored_ok;
      ExpectSameAnswers(expected, restored.value().QueryAll());
    }
  }
  EXPECT_GE(restored_ok, 1) << "the untruncated blob must restore";

  // Same sweep for the incremental format: a truncated delta must reject
  // and leave the target fleet untouched.
  ASSERT_TRUE(manager.Ingest("tenant-a", Point({3.0, 4.0}, 1)).ok());
  const std::string delta = MustDelta(&manager);
  const auto leader_answers = manager.QueryAll();
  auto follower = serving::ShardManager::Restore(blob, &kMetric, &kJones);
  ASSERT_TRUE(follower.ok());
  bool caught_up = false;  // flips once a (trailing-cut) apply succeeds
  for (size_t cut = 0; cut < delta.size(); ++cut) {
    const bool ok = follower.value().ApplyDelta(delta.substr(0, cut)).ok();
    caught_up = caught_up || ok;
    // A failed apply must leave the fleet untouched; verifying answers on
    // every one of thousands of cuts would dominate the test, so sample.
    if (ok || cut % 97 == 0) {
      ExpectSameAnswers(caught_up ? leader_answers : expected,
                        follower.value().QueryAll());
    }
  }
  ASSERT_TRUE(follower.value().ApplyDelta(delta).ok());
  ExpectSameAnswers(leader_answers, follower.value().QueryAll());
}

// Per-tenant overrides: applied at creation, rejected once the shard
// exists, carried through the v2 checkpoint so tenants first seen after a
// restore still get their configuration.
TEST(ShardManagerTest, TenantOverridesApplyAndSurviveCheckpoint) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  SlidingWindowOptions small = Options(1).window;
  small.window_size = 12;
  small.delta = 2.0;
  ASSERT_TRUE(manager.SetTenantOptions("small", small).ok());
  ASSERT_TRUE(manager.SetTenantOptions("future", small).ok());

  // An override identical to the template is not stored.
  ASSERT_TRUE(manager.SetTenantOptions("default", Options(1).window).ok());
  EXPECT_EQ(manager.TenantOptions("default"), nullptr);
  ASSERT_NE(manager.TenantOptions("small"), nullptr);

  const auto stream = KeyedStream(150, 37);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
    ASSERT_TRUE(manager.Ingest("small", kp.point).ok());
  }
  EXPECT_EQ(manager.shard("small")->options().window_size, 12);
  EXPECT_EQ(manager.shard("small")->options().delta, 2.0);
  EXPECT_EQ(manager.shard("tenant-a")->options().window_size,
            Options(1).window.window_size);

  // Too late for a tenant that already has a shard.
  EXPECT_EQ(manager.SetTenantOptions("small", Options(1).window).code(),
            StatusCode::kFailedPrecondition);

  // The override shard matches a standalone window with the same options.
  FairCenterSlidingWindow standalone(small, kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) standalone.Update(kp.point);
  EXPECT_EQ(manager.shard("small")->SerializeState(),
            standalone.SerializeState());

  // "future" never ingested: its override must travel through the blob.
  auto restored = serving::ShardManager::Restore(MustCheckpoint(&manager),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE(restored.value().Ingest("future", Point({1.0, 2.0}, 0)).ok());
  EXPECT_EQ(restored.value().shard("future")->options().window_size, 12);
  EXPECT_EQ(restored.value().shard("small")->options().window_size, 12);
}

// TTL eviction and the LRU cap must be invisible to answers: a fleet under
// aggressive spilling answers every query round — and finishes with the
// same per-shard state — as a never-evicted reference.
TEST(ShardManagerTest, EvictionIsTransparentToAnswers) {
  const auto stream = KeyedStream(400, 41);
  serving::ShardManagerOptions capped = Options(2);
  capped.max_live_shards = 1;
  serving::ShardManager evicting(capped, kConstraint, &kMetric, &kJones);
  serving::ShardManager reference(Options(1), kConstraint, &kMetric, &kJones);

  for (size_t start = 0; start < stream.size(); start += 50) {
    std::vector<serving::KeyedPoint> a(
        stream.begin() + start,
        stream.begin() + std::min(start + 50, stream.size()));
    std::vector<serving::KeyedPoint> b = a;
    ASSERT_TRUE(evicting.IngestBatch(std::move(a)).ok());
    ASSERT_TRUE(reference.IngestBatch(std::move(b)).ok());
    EXPECT_LE(evicting.live_shard_count(), 1u);
    evicting.EvictIdle(/*idle_ttl=*/20);
    ExpectSameAnswers(reference.QueryAll(), evicting.QueryAll());
  }
  EXPECT_GT(evicting.evictions(), 0);
  EXPECT_GT(evicting.rehydrations(), 0);

  // Touching a shard rehydrates bit-exact state. Query both sides first:
  // a live shard persists query-time expiry sweeps while a spilled one is
  // answered ephemerally, so the serialized bytes only synchronize once
  // both shards have swept up to the same clock.
  for (const std::string& key : reference.Keys()) {
    auto lhs = evicting.Query(key);  // rehydrates + sweeps
    auto rhs = reference.Query(key);
    ASSERT_EQ(lhs.ok(), rhs.ok()) << key;
    ASSERT_NE(evicting.shard(key), nullptr) << key;
    EXPECT_EQ(evicting.shard(key)->SerializeState(),
              reference.shard(key)->SerializeState())
        << key;
  }
}

// The acceptance criterion end to end: ingest → EvictIdle → re-touch →
// CheckpointDelta/ApplyDelta → Restore answers bit-identically to a
// never-evicted, full-checkpoint fleet, at multiple thread counts.
TEST(ShardManagerTest, DeltaCheckpointsReproduceFullCheckpoints) {
  for (int threads : {1, 4}) {
    const auto stream = KeyedStream(360, 43);
    serving::ShardManager leader(Options(threads), kConstraint, &kMetric,
                                 &kJones);
    serving::ShardManager reference(Options(1), kConstraint, &kMetric,
                                    &kJones);

    // Base checkpoint after a first tranche.
    for (size_t i = 0; i < 120; ++i) {
      ASSERT_TRUE(leader.Ingest(stream[i].key, stream[i].point).ok());
      ASSERT_TRUE(reference.Ingest(stream[i].key, stream[i].point).ok());
    }
    auto follower = serving::ShardManager::Restore(MustCheckpoint(&leader),
                                                   &kMetric, &kJones, threads);
    ASSERT_TRUE(follower.ok()) << follower.status().ToString();
    EXPECT_EQ(leader.dirty_shard_count(), 0u);

    // Idle fleet ⇒ empty delta, and applying it is a no-op.
    const std::string empty_delta = MustDelta(&leader);
    ASSERT_TRUE(follower.value().ApplyDelta(empty_delta).ok());
    ExpectSameAnswers(leader.QueryAll(), follower.value().QueryAll());

    // Churn rounds: ingest a tranche into one tenant only, evict, re-touch,
    // then replicate through a delta and compare against a fleet restored
    // from the full blob.
    for (size_t round = 0; round < 3; ++round) {
      const std::string touched = kKeys[round % 3];
      for (size_t i = 120 + round * 80; i < 200 + round * 80; ++i) {
        ASSERT_TRUE(leader.Ingest(touched, stream[i].point).ok());
        ASSERT_TRUE(reference.Ingest(touched, stream[i].point).ok());
      }
      leader.EvictIdle(/*idle_ttl=*/0);  // spill everything idle
      EXPECT_EQ(leader.dirty_shard_count(), 1u)
          << "only the touched tenant is dirty";
      ASSERT_TRUE(follower.value().ApplyDelta(MustDelta(&leader)).ok());
      EXPECT_EQ(leader.dirty_shard_count(), 0u);

      auto full = serving::ShardManager::Restore(MustCheckpoint(&leader),
                                                 &kMetric, &kJones, threads);
      ASSERT_TRUE(full.ok());
      const auto want = reference.QueryAll();
      ExpectSameAnswers(want, leader.QueryAll());
      ExpectSameAnswers(want, follower.value().QueryAll());
      ExpectSameAnswers(want, full.value().QueryAll());
    }
  }
}

// Restore must respect max_live_shards while shards stream in — bounded
// residency during the restore itself, not only after it — yet still load
// and answer for the whole fleet.
TEST(ShardManagerTest, RestoreHonorsLiveCap) {
  const auto stream = KeyedStream(120, 47);
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  auto capped = serving::ShardManager::Restore(
      MustCheckpoint(&manager), &kMetric, &kJones, /*num_threads=*/1,
      /*max_live_shards=*/1);
  ASSERT_TRUE(capped.ok()) << capped.status().ToString();
  EXPECT_EQ(capped.value().shard_count(), manager.shard_count());
  EXPECT_LE(capped.value().live_shard_count(), 1u);
  ExpectSameAnswers(manager.QueryAll(), capped.value().QueryAll());
}

// Keys are raw bytes: spaces and separators must round-trip.
TEST(ShardManagerTest, AwkwardKeysRoundTrip) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  const std::string awkward = "tenant 7\twith spaces";
  manager.Ingest(awkward, Point({1.0, 1.0}, 0));
  manager.Ingest(awkward, Point({2.0, 2.0}, 1));
  auto restored = serving::ShardManager::Restore(MustCheckpoint(&manager),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_NE(restored.value().shard(awkward), nullptr);
  EXPECT_EQ(restored.value().shard(awkward)->SerializeState(),
            manager.shard(awkward)->SerializeState());
}

}  // namespace
}  // namespace fkc
