// ShardManager contract: keyed routing equals standalone windows, batched
// ingest equals per-point ingest at any thread count, query multiplexing is
// deterministic, and the fleet survives a kill/restore cycle — every shard
// answers identically before and after, including under interleaved
// post-restore updates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const char* kKeys[] = {"tenant-a", "tenant-b", "tenant-c"};

std::vector<serving::KeyedPoint> KeyedStream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<serving::KeyedPoint> stream;
  for (int i = 0; i < n; ++i) {
    serving::KeyedPoint kp;
    kp.key = kKeys[rng.NextBounded(3)];
    kp.point = Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                     static_cast<int>(rng.NextBounded(3)));
    stream.push_back(std::move(kp));
  }
  return stream;
}

serving::ShardManagerOptions Options(int num_threads) {
  serving::ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.num_threads = num_threads;
  return options;
}

const ColorConstraint kConstraint({2, 1, 1});

bool SameSolution(const FairCenterSolution& a, const FairCenterSolution& b) {
  if (a.radius != b.radius || a.centers.size() != b.centers.size()) {
    return false;
  }
  for (size_t i = 0; i < a.centers.size(); ++i) {
    if (a.centers[i].coords != b.centers[i].coords ||
        a.centers[i].color != b.centers[i].color) {
      return false;
    }
  }
  return true;
}

void ExpectSameAnswers(const std::vector<serving::ShardAnswer>& a,
                       const std::vector<serving::ShardAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    ASSERT_EQ(a[i].solution.ok(), b[i].solution.ok()) << a[i].key;
    if (a[i].solution.ok()) {
      EXPECT_TRUE(
          SameSolution(a[i].solution.value(), b[i].solution.value()))
          << a[i].key;
    }
    EXPECT_EQ(a[i].stats.guess, b[i].stats.guess) << a[i].key;
    EXPECT_EQ(a[i].stats.coreset_size, b[i].stats.coreset_size) << a[i].key;
    EXPECT_EQ(a[i].stats.guesses_inspected, b[i].stats.guesses_inspected)
        << a[i].key;
  }
}

TEST(ShardManagerTest, RoutesByKeyLikeStandaloneWindows) {
  const auto stream = KeyedStream(200, 7);
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) manager.Ingest(kp.key, kp.point);

  for (const char* key : kKeys) {
    FairCenterSlidingWindow standalone(Options(1).window, kConstraint,
                                       &kMetric, &kJones);
    for (const auto& kp : stream) {
      if (kp.key == key) standalone.Update(kp.point);
    }
    ASSERT_NE(manager.shard(key), nullptr);
    EXPECT_EQ(manager.shard(key)->SerializeState(),
              standalone.SerializeState())
        << key;
  }
}

TEST(ShardManagerTest, IngestBatchMatchesPerPointIngestAtAnyThreadCount) {
  const auto stream = KeyedStream(300, 11);
  serving::ShardManager reference(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) reference.Ingest(kp.key, kp.point);

  for (int threads : {1, 4}) {
    serving::ShardManager batched(Options(threads), kConstraint, &kMetric,
                                  &kJones);
    for (size_t start = 0; start < stream.size(); start += 48) {
      std::vector<serving::KeyedPoint> batch(
          stream.begin() + start,
          stream.begin() + std::min(start + 48, stream.size()));
      batched.IngestBatch(std::move(batch));
    }
    ASSERT_EQ(batched.Keys(), reference.Keys());
    for (const std::string& key : reference.Keys()) {
      EXPECT_EQ(batched.shard(key)->SerializeState(),
                reference.shard(key)->SerializeState())
          << key << " at " << threads << " threads";
    }
  }
}

TEST(ShardManagerTest, QueryAllMatchesPerShardQueries) {
  const auto stream = KeyedStream(240, 13);
  serving::ShardManager fanout(Options(4), kConstraint, &kMetric, &kJones);
  serving::ShardManager single(Options(1), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) {
    fanout.Ingest(kp.key, kp.point);
    single.Ingest(kp.key, kp.point);
  }

  const auto answers = fanout.QueryAll();
  ASSERT_EQ(answers.size(), single.shard_count());
  for (const auto& answer : answers) {
    QueryStats stats;
    auto expected = single.Query(answer.key, &stats);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(answer.solution.ok());
    EXPECT_TRUE(SameSolution(answer.solution.value(), expected.value()))
        << answer.key;
    EXPECT_EQ(answer.stats.guess, stats.guess);
    EXPECT_EQ(answer.stats.coreset_size, stats.coreset_size);
    EXPECT_EQ(answer.stats.guesses_inspected, stats.guesses_inspected);
  }
}

TEST(ShardManagerTest, QueryUnknownKeyIsNotFound) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  auto result = manager.Query("never-seen");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// The acceptance criterion: checkpoint all shards, reconstruct, and answer
// queries identically — also after further interleaved per-shard updates.
TEST(ShardManagerTest, SurvivesKillRestoreCycle) {
  const auto stream = KeyedStream(320, 17);
  const auto more = KeyedStream(160, 19);

  serving::ShardManager original(Options(2), kConstraint, &kMetric, &kJones);
  for (const auto& kp : stream) original.Ingest(kp.key, kp.point);
  const auto before = original.QueryAll();

  const std::string blob = original.CheckpointAll();
  auto restored =
      serving::ShardManager::Restore(blob, &kMetric, &kJones, /*threads=*/4);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().shard_count(), original.shard_count());

  // Identical answers immediately after restore.
  ExpectSameAnswers(before, restored.value().QueryAll());

  // Identical behaviour under further interleaved per-shard updates.
  for (const auto& kp : more) {
    original.Ingest(kp.key, kp.point);
    restored.value().Ingest(kp.key, kp.point);
  }
  ExpectSameAnswers(original.QueryAll(), restored.value().QueryAll());
  for (const std::string& key : original.Keys()) {
    EXPECT_EQ(original.shard(key)->SerializeState(),
              restored.value().shard(key)->SerializeState())
        << key;
  }
}

// The restored manager keeps the window template: tenants first seen after
// the restore get a shard with the same configuration.
TEST(ShardManagerTest, NewTenantAfterRestoreUsesTemplate) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  manager.Ingest("tenant-a", Point({1.0, 2.0}, 0));
  auto restored = serving::ShardManager::Restore(manager.CheckpointAll(),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok());
  restored.value().Ingest("tenant-new", Point({3.0, 4.0}, 1));
  ASSERT_NE(restored.value().shard("tenant-new"), nullptr);
  EXPECT_EQ(restored.value().shard("tenant-new")->options().window_size,
            Options(1).window.window_size);
  EXPECT_EQ(restored.value().shard("tenant-new")->now(), 1);
}

TEST(ShardManagerTest, RestoreRejectsGarbage) {
  auto bad_magic =
      serving::ShardManager::Restore("not-a-checkpoint 1 2 3", &kMetric,
                                     &kJones);
  EXPECT_FALSE(bad_magic.ok());

  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  manager.Ingest("tenant-a", Point({1.0, 2.0}, 0));
  std::string truncated = manager.CheckpointAll();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(
      serving::ShardManager::Restore(truncated, &kMetric, &kJones).ok());
}

// Keys are raw bytes: spaces and separators must round-trip.
TEST(ShardManagerTest, AwkwardKeysRoundTrip) {
  serving::ShardManager manager(Options(1), kConstraint, &kMetric, &kJones);
  const std::string awkward = "tenant 7\twith spaces";
  manager.Ingest(awkward, Point({1.0, 1.0}, 0));
  manager.Ingest(awkward, Point({2.0, 2.0}, 1));
  auto restored = serving::ShardManager::Restore(manager.CheckpointAll(),
                                                 &kMetric, &kJones);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_NE(restored.value().shard(awkward), nullptr);
  EXPECT_EQ(restored.value().shard(awkward)->SerializeState(),
            manager.shard(awkward)->SerializeState());
}

}  // namespace
}  // namespace fkc
