// Machine-independent complexity tests for Theorem 3: update and query cost
// — measured in distance evaluations via CountingMetric — must be
// independent of the window size, and scale with the ladder and coreset
// parameters as the analysis predicts.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/counting_metric.h"
#include "metric/metric.h"
#include "sequential/gonzalez.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kEuclidean;
const JonesFairCenter kJones;

// Steady-state distance evaluations per update / per query for a window of
// the given size over a fixed data distribution.
struct CostProfile {
  double update_evals = 0.0;
  double query_evals = 0.0;
};

CostProfile MeasureCosts(int64_t window_size, double delta,
                         uint64_t seed = 21) {
  CountingMetric metric(&kEuclidean);
  const ColorConstraint constraint({2, 2});
  SlidingWindowOptions options;
  options.window_size = window_size;
  options.delta = delta;
  options.d_min = 0.1;
  options.d_max = 400.0;
  FairCenterSlidingWindow window(options, constraint, &metric, &kJones);

  Rng rng(seed);
  auto feed = [&]() {
    window.Update({rng.NextUniform(0, 200), rng.NextUniform(0, 200)},
                  static_cast<int>(rng.NextBounded(2)));
  };
  // Warm to steady state: two full windows.
  for (int64_t t = 0; t < 2 * window_size; ++t) feed();

  CostProfile profile;
  const int kSamples = 200;
  metric.Reset();
  for (int s = 0; s < kSamples; ++s) feed();
  profile.update_evals = static_cast<double>(metric.count()) / kSamples;

  metric.Reset();
  const int kQueries = 10;
  for (int q = 0; q < kQueries; ++q) {
    auto result = window.Query();
    EXPECT_TRUE(result.ok());
    feed();
  }
  profile.query_evals = static_cast<double>(metric.count()) / kQueries;
  return profile;
}

TEST(ComplexityTest, UpdateCostIndependentOfWindowSize) {
  const CostProfile small = MeasureCosts(250, 1.0);
  const CostProfile large = MeasureCosts(2500, 1.0);
  // 10x window: steady-state update cost must stay within a constant band
  // (Theorem 3 — the bound has no n term at all).
  EXPECT_LT(large.update_evals, 2.0 * small.update_evals + 50.0)
      << "small=" << small.update_evals << " large=" << large.update_evals;
}

TEST(ComplexityTest, QueryCostIndependentOfWindowSize) {
  const CostProfile small = MeasureCosts(250, 1.0);
  const CostProfile large = MeasureCosts(2500, 1.0);
  EXPECT_LT(large.query_evals, 2.0 * small.query_evals + 500.0)
      << "small=" << small.query_evals << " large=" << large.query_evals;
}

TEST(ComplexityTest, CostsGrowAsDeltaShrinks) {
  // The (c/delta)^D term: update and query both get more expensive with
  // finer coresets.
  const CostProfile fine = MeasureCosts(500, 0.5);
  const CostProfile coarse = MeasureCosts(500, 4.0);
  EXPECT_GT(fine.update_evals, coarse.update_evals);
  EXPECT_GT(fine.query_evals, coarse.query_evals);
}

TEST(ComplexityTest, BaselineQueryCostGrowsWithWindow) {
  // Contrast: the full-window baseline's per-query distance count is
  // Omega(n), growing linearly where ours stays flat.
  CountingMetric metric(&kEuclidean);
  Rng rng(23);
  auto baseline_evals = [&](int n) {
    std::vector<Point> points;
    for (int i = 0; i < n; ++i) {
      points.push_back(Point({rng.NextUniform(0, 200)}, 0));
    }
    metric.Reset();
    auto result =
        kJones.Solve(metric, points, ColorConstraint({2}));
    EXPECT_TRUE(result.ok());
    return metric.count();
  };
  const int64_t small = baseline_evals(300);
  const int64_t large = baseline_evals(3000);
  EXPECT_GT(large, 5 * small);
}

TEST(CountingMetricTest, CountsAndResets) {
  CountingMetric metric(&kEuclidean);
  const Point a({0.0}, 0), b({1.0}, 0);
  EXPECT_EQ(metric.count(), 0);
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), 1.0);
  metric.Distance(a, b);
  EXPECT_EQ(metric.count(), 2);
  metric.Reset();
  EXPECT_EQ(metric.count(), 0);
  EXPECT_EQ(metric.Name(), "counting(euclidean)");
}

TEST(CountingMetricTest, GonzalezEvalCountMatchesTheory) {
  // Gonzalez performs exactly n distance evaluations per selected head.
  CountingMetric metric(&kEuclidean);
  Rng rng(29);
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back(Point({rng.NextUniform(0, 10)}, 0));
  }
  metric.Reset();
  GonzalezKCenter(metric, points, 5);
  EXPECT_EQ(metric.count(), 5 * 100);
}

}  // namespace
}  // namespace fkc
