// Tests for src/common: Status/Result, Rng, stopwatch accumulators, string
// helpers, and the flag parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace fkc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  // Different seeds give different streams (overwhelmingly likely).
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextDiscrete(weights), 1u);
  }
}

TEST(RngTest, DiscreteAllZeroFallsBackToLast) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.NextDiscrete(weights), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(TimingAccumulatorTest, MeanAndMax) {
  TimingAccumulator acc;
  EXPECT_EQ(acc.MeanMillis(), 0.0);
  acc.AddNanos(1000000);  // 1ms
  acc.AddNanos(3000000);  // 3ms
  EXPECT_EQ(acc.count(), 2);
  EXPECT_DOUBLE_EQ(acc.MeanMillis(), 2.0);
  EXPECT_DOUBLE_EQ(acc.MaxMillis(), 3.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \t"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \n "), "");
}

TEST(StringUtilTest, ParseDoubleAcceptsAndRejects) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(FlagParserTest, ParsesAllTypes) {
  FlagParser flags;
  int64_t n = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
  flags.AddInt64("n", &n, "an int");
  flags.AddDouble("d", &d, "a double");
  flags.AddBool("b", &b, "a bool");
  flags.AddString("s", &s, "a string");

  const char* argv[] = {"prog", "--n=5", "--d", "2.5", "--b", "--s=hi"};
  ASSERT_TRUE(
      flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(n, 5);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hi");
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagParserTest, CollectsPositionalAndHelp) {
  FlagParser flags;
  const char* argv[] = {"prog", "pos1", "--help", "pos2"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  ASSERT_EQ(flags.positional_args().size(), 2u);
  EXPECT_EQ(flags.positional_args()[0], "pos1");
}

TEST(FlagParserTest, BoolExplicitFalse) {
  FlagParser flags;
  bool b = true;
  flags.AddBool("b", &b, "a bool");
  const char* argv[] = {"prog", "--b=false"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(b);
}

}  // namespace
}  // namespace fkc
