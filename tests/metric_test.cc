// Tests for src/metric: point semantics, metric implementations and axioms,
// distance extrema / aspect ratio, and the doubling-dimension estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "metric/aspect_ratio.h"
#include "metric/doubling.h"
#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {
namespace {

Point P(std::initializer_list<double> coords, int color = 0) {
  return Point(Coordinates(coords), color);
}

TEST(PointTest, TtlSemantics) {
  Point p({0.0}, 0);
  p.arrival = 10;
  // TTL(p) = n - (now - t(p)).
  EXPECT_EQ(TimeToLive(p, 10, 5), 5);
  EXPECT_EQ(TimeToLive(p, 14, 5), 1);
  EXPECT_EQ(TimeToLive(p, 15, 5), 0);
  EXPECT_EQ(TimeToLive(p, 100, 5), 0);  // clamped at zero
  EXPECT_TRUE(IsActive(p, 14, 5));
  EXPECT_FALSE(IsActive(p, 15, 5));
}

TEST(PointTest, ToStringContainsColorAndArrival) {
  Point p({1.5, -2.0}, 3);
  p.arrival = 42;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("#3"), std::string::npos);
  EXPECT_NE(s.find("@42"), std::string::npos);
}

TEST(PointTest, SamePointComparesIds) {
  Point a({1.0}, 0), b({1.0}, 0);
  a.id = 5;
  b.id = 5;
  EXPECT_TRUE(SamePoint(a, b));
  b.id = 6;
  EXPECT_FALSE(SamePoint(a, b));
}

TEST(MetricTest, EuclideanKnownValues) {
  const EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(metric.Distance(P({0, 0}), P({3, 4})), 5.0);
  EXPECT_DOUBLE_EQ(metric.Distance(P({1}), P({1})), 0.0);
}

TEST(MetricTest, ManhattanKnownValues) {
  const ManhattanMetric metric;
  EXPECT_DOUBLE_EQ(metric.Distance(P({0, 0}), P({3, 4})), 7.0);
}

TEST(MetricTest, ChebyshevKnownValues) {
  const ChebyshevMetric metric;
  EXPECT_DOUBLE_EQ(metric.Distance(P({0, 0}), P({3, 4})), 4.0);
  EXPECT_DOUBLE_EQ(metric.Distance(P({-2, 1}), P({2, 2})), 4.0);
}

// Metric axioms verified on random points for every implementation.
class MetricAxiomsTest : public ::testing::TestWithParam<const Metric*> {};

TEST_P(MetricAxiomsTest, IdentitySymmetryTriangle) {
  const Metric& metric = *GetParam();
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Coordinates a(4), b(4), c(4);
    for (int d = 0; d < 4; ++d) {
      a[d] = rng.NextUniform(-10, 10);
      b[d] = rng.NextUniform(-10, 10);
      c[d] = rng.NextUniform(-10, 10);
    }
    const Point pa(a, 0), pb(b, 0), pc(c, 0);
    EXPECT_DOUBLE_EQ(metric.Distance(pa, pa), 0.0);
    EXPECT_DOUBLE_EQ(metric.Distance(pa, pb), metric.Distance(pb, pa));
    EXPECT_LE(metric.Distance(pa, pc),
              metric.Distance(pa, pb) + metric.Distance(pb, pc) + 1e-12);
    EXPECT_GE(metric.Distance(pa, pb), 0.0);
  }
}

const EuclideanMetric kEuclidean;
const ManhattanMetric kManhattan;
const ChebyshevMetric kChebyshev;

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(&kEuclidean, &kManhattan,
                                           &kChebyshev),
                         [](const auto& info) { return info.param->Name(); });

TEST(MetricTest, DistanceToSetEmptyIsInfinite) {
  EXPECT_TRUE(std::isinf(DistanceToSet(kEuclidean, P({0}), {})));
}

TEST(MetricTest, DistanceToSetPicksClosest) {
  std::vector<Point> pool = {P({0}), P({10}), P({4})};
  EXPECT_DOUBLE_EQ(DistanceToSet(kEuclidean, P({5}), pool), 1.0);
}

TEST(MetricTest, DefaultMetricIsEuclidean) {
  EXPECT_EQ(DefaultMetric().Name(), "euclidean");
}

TEST(AspectRatioTest, ExtremaSkipZeroPairs) {
  std::vector<Point> points = {P({0}), P({0}), P({3}), P({10})};
  const DistanceExtrema extrema = ComputeDistanceExtrema(kEuclidean, points);
  EXPECT_DOUBLE_EQ(extrema.min_distance, 3.0);
  EXPECT_DOUBLE_EQ(extrema.max_distance, 10.0);
  EXPECT_EQ(extrema.zero_pairs, 1);
}

TEST(AspectRatioTest, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(AspectRatio(kEuclidean, {}), 1.0);
  EXPECT_DOUBLE_EQ(AspectRatio(kEuclidean, {P({1})}), 1.0);
  EXPECT_DOUBLE_EQ(AspectRatio(kEuclidean, {P({1}), P({1})}), 1.0);
}

TEST(AspectRatioTest, KnownRatio) {
  std::vector<Point> points = {P({0}), P({1}), P({100})};
  EXPECT_DOUBLE_EQ(AspectRatio(kEuclidean, points), 100.0);
}

TEST(AspectRatioTest, DiameterBruteForce) {
  std::vector<Point> points = {P({0, 0}), P({1, 1}), P({-3, 4})};
  EXPECT_DOUBLE_EQ(Diameter(kEuclidean, points), 5.0);
  EXPECT_DOUBLE_EQ(Diameter(kEuclidean, {}), 0.0);
}

TEST(DoublingTest, GreedyNetCoversAndSeparates) {
  Rng rng(5);
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back(P({rng.NextUniform(0, 10), rng.NextUniform(0, 10)}));
  }
  const double r = 2.0;
  const std::vector<Point> net = GreedyNet(kEuclidean, points, r);
  // Coverage: every point within r of the net.
  for (const Point& p : points) {
    EXPECT_LE(DistanceToSet(kEuclidean, p, net), r);
  }
  // Separation: net points pairwise > r.
  for (size_t i = 0; i < net.size(); ++i) {
    for (size_t j = i + 1; j < net.size(); ++j) {
      EXPECT_GT(kEuclidean.Distance(net[i], net[j]), r);
    }
  }
}

TEST(DoublingTest, LineHasLowDimension) {
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) points.push_back(P({static_cast<double>(i)}));
  const double dim = EstimateDoublingDimension(kEuclidean, points);
  EXPECT_LE(dim, 2.5);  // a line's doubling dimension is 1
  EXPECT_GE(dim, 0.5);
}

TEST(DoublingTest, HigherAmbientDimensionDetected) {
  Rng rng(9);
  auto cube = [&](int d) {
    std::vector<Point> points;
    for (int i = 0; i < 300; ++i) {
      Coordinates coords(d);
      for (double& x : coords) x = rng.NextUniform(0, 1);
      points.push_back(Point(coords, 0));
    }
    return EstimateDoublingDimension(kEuclidean, points);
  };
  const double dim1 = cube(1);
  const double dim5 = cube(5);
  EXPECT_GT(dim5, dim1 + 0.5) << "5-d cube must look higher-dimensional";
}

TEST(DoublingTest, RotationPreservesEstimate) {
  // The estimator must depend on geometry only: padding + rotation keeps it.
  Rng rng(13);
  std::vector<Point> base;
  for (int i = 0; i < 150; ++i) {
    base.push_back(P({rng.NextUniform(0, 10), rng.NextUniform(0, 10)}));
  }
  const double base_dim = EstimateDoublingDimension(kEuclidean, base);

  // Embed into 6 dims with an explicit rigid rotation (hand-rolled here to
  // avoid depending on datasets/ in a metric test): swap into new axes.
  std::vector<Point> padded;
  for (const Point& p : base) {
    padded.push_back(P({0.0, p.coords[1], 0.0, p.coords[0], 0.0, 0.0}));
  }
  const double padded_dim = EstimateDoublingDimension(kEuclidean, padded);
  EXPECT_NEAR(base_dim, padded_dim, 1e-9);
}

TEST(DoublingTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(EstimateDoublingDimension(kEuclidean, {}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateDoublingDimension(kEuclidean, {P({1})}), 0.0);
  EXPECT_DOUBLE_EQ(
      EstimateDoublingDimension(kEuclidean, {P({1}), P({1})}), 0.0);
}

}  // namespace
}  // namespace fkc
