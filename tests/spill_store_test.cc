// SpillStore contract: both backends round-trip arbitrary key/blob pairs;
// the file backend publishes atomically (a kill mid-write leaves only .tmp
// debris and the previous version intact), rejects checksum-corrupt and
// torn files with a Status instead of crashing or returning wrong bytes,
// and GarbageCollect sweeps exactly the orphans. On top: the ShardManager
// wired to a FileSpillStore evicts and rehydrates shards bit-exactly
// (SerializeState byte-equal), and a corrupted spill file degrades to
// per-shard errors, never a process abort.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/random.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"
#include "serving/spill_store.h"

namespace fkc {
namespace serving {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;
const ColorConstraint kConstraint({2, 1, 1});

// A fresh directory per test, wiped up front so reruns start clean.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fkc_spill_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::string> SpillFiles(const std::string& dir) {
  std::vector<std::string> files;
  EXPECT_TRUE(ListDirectoryFiles(dir, &files).ok());
  return files;
}

ShardManagerOptions Options(std::shared_ptr<SpillStore> store) {
  ShardManagerOptions options;
  options.window.window_size = 60;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;
  options.spill_store = std::move(store);
  return options;
}

// The backend-independent contract, run against both implementations.
void ExerciseStoreContract(SpillStore* store) {
  // Round trip, including keys a filesystem would choke on raw.
  const std::vector<std::string> keys = {
      "plain", "with space", "path/like/key", "dots..and--dashes",
      std::string("embedded\nnewline\tand\x01control"),
      std::string(10000, 'k'),  // far beyond any filename limit
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::string blob = "blob-" + std::to_string(i) + "-\n raw \t bytes";
    ASSERT_TRUE(store->Put(keys[i], blob).ok()) << keys[i];
    auto fetched = store->Get(keys[i]);
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    EXPECT_EQ(fetched.value(), blob);
  }
  EXPECT_EQ(store->Count().ValueOr(-1), static_cast<int64_t>(keys.size()));

  // Overwrite replaces.
  ASSERT_TRUE(store->Put("plain", "second version").ok());
  EXPECT_EQ(store->Get("plain").ValueOr(""), "second version");
  EXPECT_EQ(store->Count().ValueOr(-1), static_cast<int64_t>(keys.size()));

  // Missing keys are kNotFound; erase is idempotent.
  EXPECT_EQ(store->Get("never-stored").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store->Erase("plain").ok());
  ASSERT_TRUE(store->Erase("plain").ok());
  EXPECT_EQ(store->Get("plain").status().code(), StatusCode::kNotFound);

  // GC keeps exactly `keep`.
  auto removed = store->GarbageCollect({keys[1], keys[2]});
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed.value(), static_cast<int64_t>(keys.size()) - 3)
      << "everything but the two kept keys (and the erased one) goes";
  EXPECT_TRUE(store->Get(keys[1]).ok());
  EXPECT_TRUE(store->Get(keys[2]).ok());
  EXPECT_EQ(store->Get(keys[3]).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store->Count().ValueOr(-1), 2);
}

TEST(SpillStoreTest, InMemoryContract) {
  InMemorySpillStore store;
  ExerciseStoreContract(&store);
}

TEST(SpillStoreTest, FileContract) {
  FileSpillStore store(FreshDir("contract"));
  ExerciseStoreContract(&store);
}

TEST(SpillStoreTest, FileStorePersistsAcrossInstances) {
  const std::string dir = FreshDir("persist");
  {
    FileSpillStore store(dir);
    ASSERT_TRUE(store.Put("tenant-a", "state of a").ok());
  }
  FileSpillStore reopened(dir);
  EXPECT_EQ(reopened.Get("tenant-a").ValueOr(""), "state of a");
}

// A flipped byte anywhere in the payload must fail the checksum — the blob
// never reaches the deserializer looking valid.
TEST(SpillStoreTest, ChecksumCorruptionIsRejected) {
  const std::string dir = FreshDir("corrupt");
  FileSpillStore store(dir);
  ASSERT_TRUE(store.Put("key", std::string(500, 'x') + "tail").ok());
  const auto files = SpillFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string path = dir + "/" + files[0];

  std::string original;
  ASSERT_TRUE(ReadFileToString(path, &original).ok());
  for (size_t offset : {original.size() / 2, original.size() - 1}) {
    std::string mutated = original;
    mutated[offset] ^= 0x20;
    ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());
    auto fetched = store.Get("key");
    ASSERT_FALSE(fetched.ok()) << "offset " << offset;
    EXPECT_EQ(fetched.status().code(), StatusCode::kInvalidArgument);
  }
  // Intact bytes restore the entry.
  ASSERT_TRUE(WriteFileAtomic(path, original).ok());
  EXPECT_TRUE(store.Get("key").ok());
}

// The kill-mid-write case: every strict prefix of a spill file (what a torn
// non-atomic write would leave) must be rejected, never crash or parse.
TEST(SpillStoreTest, TornFileIsRejectedAtEveryTruncation) {
  const std::string dir = FreshDir("torn");
  FileSpillStore store(dir);
  ASSERT_TRUE(store.Put("key", "some shard state bytes").ok());
  const auto files = SpillFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string path = dir + "/" + files[0];
  std::string original;
  ASSERT_TRUE(ReadFileToString(path, &original).ok());

  for (size_t cut = 0; cut < original.size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(path, original.substr(0, cut)).ok());
    auto fetched = store.Get("key");
    ASSERT_FALSE(fetched.ok()) << "cut=" << cut;
  }
}

// Probe-chain pathologies: holes (Erase/GC removed an earlier slot) and
// corrupt slots must never shadow a valid file later in the chain, and a
// fresh Put after corruption must make the key readable again.
TEST(SpillStoreTest, ChainHolesAndCorruptSlotsCannotShadowValidFiles) {
  const std::string dir = FreshDir("chain");
  FileSpillStore store(dir);
  ASSERT_TRUE(store.Put("key", "the valid state").ok());
  auto files = SpillFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  ASSERT_NE(files[0].find("-0.spill"), std::string::npos);

  // Move the valid file deep into the chain (slot 5): Get must scan past
  // the holes at slots 0-4 and still find it.
  const std::string deep = files[0].substr(0, files[0].size() - 8) + "-5.spill";
  std::filesystem::rename(dir + "/" + files[0], dir + "/" + deep);
  EXPECT_EQ(store.Get("key").ValueOr(""), "the valid state");

  // A corrupt file at slot 0 must not shadow the valid slot-5 copy.
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/" + files[0], "ruined by bit rot").ok());
  EXPECT_EQ(store.Get("key").ValueOr(""), "the valid state");

  // Overwrite targets the key's own slot; the new bytes win.
  ASSERT_TRUE(store.Put("key", "newer state").ok());
  EXPECT_EQ(store.Get("key").ValueOr(""), "newer state");

  // Erase removes the key's slot wherever it sits; with only the corrupt
  // slot left, Get reports the corruption (the slot MIGHT have been this
  // key's), and after GC sweeps the debris the key is cleanly absent.
  ASSERT_TRUE(store.Erase("key").ok());
  EXPECT_EQ(store.Get("key").status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(store.GarbageCollect({}).ok());
  EXPECT_EQ(store.Get("key").status().code(), StatusCode::kNotFound);

  // A Put landing on a chain blocked by a corrupt slot writes around it
  // (or reclaims it when the chain is otherwise full) — the key becomes
  // readable again either way.
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/" + files[0], "ruined again").ok());
  ASSERT_TRUE(store.Put("key", "recovered").ok());
  EXPECT_EQ(store.Get("key").ValueOr(""), "recovered");
}

TEST(SpillStoreTest, GarbageCollectSweepsTempAndForeignDebris) {
  const std::string dir = FreshDir("gc");
  FileSpillStore store(dir);
  ASSERT_TRUE(store.Put("keep-me", "kept").ok());
  ASSERT_TRUE(store.Put("drop-me", "dropped").ok());

  // Debris: an interrupted write's temp file, an unparsable spill file, and
  // a file that is not ours at all (must survive).
  ASSERT_TRUE(WriteFileAtomic(dir + "/0123456789abcdef-0.spill.tmp",
                              "half a wri").ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/feedfacefeedface-0.spill",
                              "not a spill file").ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/README", "user file").ok());

  auto removed = store.GarbageCollect({"keep-me"});
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed.value(), 3) << "drop-me + temp debris + unparsable";
  EXPECT_EQ(store.Get("keep-me").ValueOr(""), "kept");
  EXPECT_EQ(store.Get("drop-me").status().code(), StatusCode::kNotFound);
  std::string untouched;
  ASSERT_TRUE(ReadFileToString(dir + "/README", &untouched).ok());
  EXPECT_EQ(untouched, "user file");
}

std::vector<KeyedPoint> KeyedStream(int n, uint64_t seed) {
  Rng rng(seed);
  const char* keys[] = {"tenant-a", "tenant-b", "tenant-c"};
  std::vector<KeyedPoint> stream;
  for (int i = 0; i < n; ++i) {
    stream.push_back({keys[rng.NextBounded(3)],
                      Point({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                            static_cast<int>(rng.NextBounded(3)))});
  }
  return stream;
}

// The acceptance criterion: a shard evicted through the file store comes
// back byte-identical, and a fleet spilling to disk answers exactly like a
// never-evicted one.
TEST(SpillStoreTest, ManagerRoundTripsShardsBitExactlyThroughFileStore) {
  const std::string dir = FreshDir("manager");
  ShardManager spilling(
      Options(std::make_shared<FileSpillStore>(dir)), kConstraint, &kMetric,
      &kJones);
  ShardManager reference(Options(nullptr), kConstraint, &kMetric, &kJones);

  const auto stream = KeyedStream(300, 71);
  for (const auto& kp : stream) {
    ASSERT_TRUE(spilling.Ingest(kp.key, kp.point).ok());
    ASSERT_TRUE(reference.Ingest(kp.key, kp.point).ok());
  }

  // Spill everything idle; the spilled state lands on disk.
  EXPECT_GT(spilling.EvictIdle(/*idle_ttl=*/0), 0);
  EXPECT_GT(SpillFiles(dir).size(), 0u);

  // Spilled shards keep answering (ephemerally) identical to the reference.
  const auto expect = reference.QueryAll();
  const auto got = spilling.QueryAll();
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_TRUE(got[i].solution.ok()) << got[i].key;
    EXPECT_EQ(got[i].solution.value().value,
              expect[i].solution.value().value)
        << got[i].key;
  }

  // Rehydration is bit-exact: SerializeState byte-equal to the reference
  // (query both sides first so query-time expiry sweeps line up).
  for (const auto& key : reference.Keys()) {
    ASSERT_TRUE(spilling.Query(key).ok());  // rehydrates from disk
    ASSERT_TRUE(reference.Query(key).ok());
    ASSERT_NE(spilling.shard(key), nullptr) << key;
    EXPECT_EQ(spilling.shard(key)->SerializeState(),
              reference.shard(key)->SerializeState())
        << key;
  }
  EXPECT_GT(spilling.rehydrations(), 0);
}

// A spill file corrupted on disk degrades per shard: QueryAll answers the
// error for that shard, Query/shard() fail to rehydrate it, CheckpointAll
// reports the failure — and no path aborts the process.
TEST(SpillStoreTest, ManagerSurfacesCorruptSpillFilesAsStatuses) {
  const std::string dir = FreshDir("manager_corrupt");
  ShardManager manager(Options(std::make_shared<FileSpillStore>(dir)),
                       kConstraint, &kMetric, &kJones);
  for (const auto& kp : KeyedStream(120, 73)) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  ASSERT_TRUE(manager.Ingest("healthy", Point({1.0, 2.0}, 0)).ok());
  EXPECT_EQ(manager.EvictIdle(/*idle_ttl=*/0), 3) << "all but 'healthy'";

  // Corrupt every spill file.
  for (const auto& name : SpillFiles(dir)) {
    const std::string path = dir + "/" + name;
    std::string bytes;
    ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
    bytes[bytes.size() / 2] ^= 0x01;
    ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  }

  int errors = 0;
  for (const auto& answer : manager.QueryAll()) {
    if (!answer.solution.ok()) {
      ++errors;
      EXPECT_EQ(answer.solution.status().code(), StatusCode::kInvalidArgument)
          << answer.key;
    }
  }
  EXPECT_EQ(errors, 3);
  EXPECT_FALSE(manager.Query("tenant-a").ok());
  EXPECT_EQ(manager.shard("tenant-a"), nullptr);
  EXPECT_TRUE(manager.Query("healthy").ok()) << "live shards are unaffected";
  auto checkpoint = manager.CheckpointAll();
  EXPECT_FALSE(checkpoint.ok())
      << "a fleet blob must not silently omit the corrupt shard";
}

// A spill entry forged (or shared from another fleet's directory) under a
// different constraint or dimension must fail rehydration with a Status —
// the same guard Restore/ApplyDelta apply — never reach the CHECK-aborts
// in StampArrival / the coordinate pools.
TEST(SpillStoreTest, RehydrationRejectsForeignConstraintOrDimension) {
  auto store = std::make_shared<InMemorySpillStore>();
  ShardManagerOptions with_store = Options(nullptr);
  with_store.spill_store = store;
  ShardManager manager(with_store, kConstraint, &kMetric, &kJones);
  ASSERT_TRUE(manager.Ingest("t", Point({1.0, 2.0}, 0)).ok());
  ASSERT_TRUE(manager.Ingest("live", Point({1.0, 2.0}, 0)).ok());
  EXPECT_EQ(manager.EvictIdle(/*idle_ttl=*/0), 1);

  // Overwrite the spilled entry with a window built under a 1-color
  // constraint: an ingest with color 1 or 2 would pass the manager's
  // ValidateArrival yet CHECK-abort inside the foreign shard.
  FairCenterSlidingWindow foreign(Options(nullptr).window, ColorConstraint({1}),
                                  &kMetric, &kJones);
  foreign.Update(Point({3.0, 4.0}, 0));
  ASSERT_TRUE(store->Put("t", foreign.SerializeState()).ok());
  auto query = manager.Query("t");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Ingest("t", Point({5.0, 6.0}, 2)).code(),
            StatusCode::kInvalidArgument)
      << "rejected at rehydration, not ingested into the foreign shard";

  // Same constraint, different dimension: the shard is pinned 2-d.
  FairCenterSlidingWindow three_d(Options(nullptr).window, kConstraint,
                                  &kMetric, &kJones);
  three_d.Update(Point({3.0, 4.0, 5.0}, 0));
  ASSERT_TRUE(store->Put("t", three_d.SerializeState()).ok());
  EXPECT_EQ(manager.Query("t").status().code(), StatusCode::kInvalidArgument);

  // An honest blob rehydrates again.
  FairCenterSlidingWindow honest(Options(nullptr).window, kConstraint,
                                 &kMetric, &kJones);
  honest.Update(Point({1.0, 2.0}, 0));
  ASSERT_TRUE(store->Put("t", honest.SerializeState()).ok());
  EXPECT_TRUE(manager.Query("t").ok());
}

// Restore under a live-shard cap hands the over-cap shards' verbatim blob
// segments to the spill store — the restored fleet stays bounded, answers
// identically, and the store holds byte-exact core checkpoints.
TEST(SpillStoreTest, RestoreSpillsVerbatimSegmentsPastTheCap) {
  ShardManager manager(Options(nullptr), kConstraint, &kMetric, &kJones);
  for (const auto& kp : KeyedStream(200, 79)) {
    ASSERT_TRUE(manager.Ingest(kp.key, kp.point).ok());
  }
  // The segment Restore must hand over: each shard's core checkpoint.
  std::map<std::string, std::string> expected_segments;
  for (const auto& key : manager.Keys()) {
    expected_segments[key] = manager.shard(key)->SerializeState();
  }
  auto blob = manager.CheckpointAll();
  ASSERT_TRUE(blob.ok());

  auto store = std::make_shared<InMemorySpillStore>();
  auto capped = ShardManager::Restore(blob.value(), &kMetric, &kJones,
                                      /*num_threads=*/1,
                                      /*max_live_shards=*/1, store);
  ASSERT_TRUE(capped.ok()) << capped.status().ToString();
  EXPECT_EQ(capped.value().live_shard_count(), 1u);
  EXPECT_EQ(capped.value().spilled_shard_count(), 2u);
  // Spilled state is the verbatim blob segment, not a re-serialization —
  // byte-compare against the segments the checkpoint was built from.
  int spilled_checked = 0;
  for (const auto& [key, segment] : expected_segments) {
    auto stored = store->Get(key);
    if (!stored.ok()) continue;  // the one live shard
    EXPECT_EQ(stored.value(), segment) << key;
    ++spilled_checked;
  }
  EXPECT_EQ(spilled_checked, 2);

  // And the capped fleet answers exactly like the original.
  const auto expect = manager.QueryAll();
  const auto got = capped.value().QueryAll();
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_TRUE(got[i].solution.ok()) << got[i].key;
    EXPECT_EQ(got[i].solution.value().value,
              expect[i].solution.value().value);
  }
}

}  // namespace
}  // namespace serving
}  // namespace fkc
