// Behavioural contracts of Query (Algorithm 3) beyond quality: returned
// centers are genuine active window points, the coreset-vs-window radius gap
// obeys Lemma 2's (P2) bound, QueryStats fields are consistent, and the
// chosen guess tracks the window's optimal scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

struct Harness {
  SlidingWindowOptions options;
  FairCenterSlidingWindow window;
  ReferenceWindow truth;
  int64_t t = 0;
  Rng rng;

  Harness(int64_t window_size, ColorConstraint constraint, double delta,
          uint64_t seed)
      : options([&] {
          SlidingWindowOptions o;
          o.window_size = window_size;
          o.delta = delta;
          o.adaptive_range = true;
          return o;
        }()),
        window(options, std::move(constraint), &kMetric, &kJones),
        truth(window_size),
        rng(seed) {}

  void Feed(double lo = 0.0, double hi = 100.0) {
    ++t;
    Point p({rng.NextUniform(lo, hi), rng.NextUniform(lo, hi)},
            static_cast<int>(rng.NextBounded(2)));
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    truth.Update(p);
    window.Update(p);
  }
};

TEST(QueryBehaviorTest, CentersAreActiveWindowPoints) {
  Harness h(50, ColorConstraint({2, 2}), 1.0, 3);
  for (int i = 0; i < 200; ++i) {
    h.Feed();
    if (i > 60 && i % 25 == 0) {
      auto result = h.window.Query();
      ASSERT_TRUE(result.ok());
      const auto window_points = h.truth.Snapshot();
      for (const Point& center : result.value().centers) {
        // Active: arrived within the last window_size steps.
        EXPECT_GT(center.arrival, h.t - 50) << "expired center returned";
        EXPECT_LE(center.arrival, h.t);
        // Genuine: coordinates match an actual window point of that color.
        const bool found = std::any_of(
            window_points.begin(), window_points.end(), [&](const Point& q) {
              return q.coords == center.coords && q.color == center.color;
            });
        EXPECT_TRUE(found) << "fabricated center " << center.ToString();
      }
    }
  }
}

TEST(QueryBehaviorTest, CoresetWindowRadiusGapWithinLemmaTwo) {
  // (P2): a solution of radius r on the coreset costs at most r + delta *
  // gamma-hat on the window.
  Harness h(60, ColorConstraint({2, 1}), 1.0, 5);
  for (int i = 0; i < 240; ++i) {
    h.Feed();
    if (i > 80 && i % 40 == 0) {
      QueryStats stats;
      auto result = h.window.Query(&stats);
      ASSERT_TRUE(result.ok());
      const double coreset_radius = result.value().radius;
      const double window_radius = ClusteringRadius(
          kMetric, h.truth.Snapshot(), result.value().centers);
      EXPECT_LE(window_radius,
                coreset_radius + 1.0 * stats.guess + 1e-9)
          << "at t=" << h.t;
    }
  }
}

TEST(QueryBehaviorTest, ChosenGuessTracksWindowScale) {
  // Shrink the data scale by 100x; after a full window turnover, the chosen
  // guess must shrink accordingly.
  Harness h(80, ColorConstraint({1, 1}), 1.0, 7);
  for (int i = 0; i < 160; ++i) h.Feed(0.0, 5000.0);
  QueryStats wide_stats;
  ASSERT_TRUE(h.window.Query(&wide_stats).ok());
  for (int i = 0; i < 160; ++i) h.Feed(0.0, 50.0);
  QueryStats narrow_stats;
  ASSERT_TRUE(h.window.Query(&narrow_stats).ok());
  EXPECT_LT(narrow_stats.guess, wide_stats.guess / 10.0);
}

TEST(QueryBehaviorTest, StatsConsistency) {
  Harness h(40, ColorConstraint({2, 2}), 2.0, 9);
  for (int i = 0; i < 120; ++i) h.Feed();
  QueryStats stats;
  auto result = h.window.Query(&stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.guess, 0.0);
  EXPECT_GT(stats.guesses_inspected, 0);
  EXPECT_GE(stats.solver_millis, 0.0);
  // The solver saw exactly coreset_size points; the solution cannot contain
  // more centers than that, nor more than k.
  EXPECT_LE(static_cast<int64_t>(result.value().centers.size()),
            stats.coreset_size);
  EXPECT_LE(static_cast<int>(result.value().centers.size()),
            h.window.constraint().TotalK());
}

TEST(QueryBehaviorTest, SmallerDeltaNeverWorseGuess) {
  // Finer coresets (smaller delta) must not select a *larger* guess: the
  // validation machinery is delta-independent, so gamma-hat distributions
  // should agree across delta. Check on a shared stream.
  SlidingWindowOptions fine_options;
  fine_options.window_size = 60;
  fine_options.delta = 0.5;
  fine_options.adaptive_range = true;
  SlidingWindowOptions coarse_options = fine_options;
  coarse_options.delta = 4.0;
  const ColorConstraint constraint({2, 2});
  FairCenterSlidingWindow fine(fine_options, constraint, &kMetric, &kJones);
  FairCenterSlidingWindow coarse(coarse_options, constraint, &kMetric,
                                 &kJones);
  Rng rng(11);
  for (int i = 0; i < 180; ++i) {
    Point p({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
            static_cast<int>(rng.NextBounded(2)));
    fine.Update(p);
    coarse.Update(p);
  }
  QueryStats fine_stats, coarse_stats;
  ASSERT_TRUE(fine.Query(&fine_stats).ok());
  ASSERT_TRUE(coarse.Query(&coarse_stats).ok());
  EXPECT_DOUBLE_EQ(fine_stats.guess, coarse_stats.guess);
  EXPECT_GE(fine_stats.coreset_size, coarse_stats.coreset_size);
}

}  // namespace
}  // namespace fkc
