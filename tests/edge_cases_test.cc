// Targeted edge cases across modules: degenerate geometries, extreme
// constraint configurations, contract violations (death tests), and
// boundary behaviour the broad property sweeps do not isolate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "core/guess_ladder.h"
#include "matroid/partition_matroid.h"
#include "metric/metric.h"
#include "sequential/brute_force.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/gonzalez.h"
#include "sequential/jones_fair_center.h"
#include "sequential/kleindessner.h"
#include "stream/window_driver.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

Point P(std::initializer_list<double> coords, int color) {
  return Point(Coordinates(coords), color);
}

// --- Sequential solvers on degenerate geometry. ---

TEST(EdgeCaseTest, JonesAllPointsCoincide) {
  std::vector<Point> points(7, P({5.0, 5.0}, 0));
  points.push_back(P({5.0, 5.0}, 1));
  auto result = kJones.Solve(kMetric, points, ColorConstraint({1, 1}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().radius, 0.0);
}

TEST(EdgeCaseTest, JonesTwoPoints) {
  const std::vector<Point> points = {P({0}, 0), P({9}, 1)};
  auto both = kJones.Solve(kMetric, points, ColorConstraint({1, 1}));
  ASSERT_TRUE(both.ok());
  EXPECT_DOUBLE_EQ(both.value().radius, 0.0);

  // Only color 0 allowed: one center must cover both points.
  auto one = kJones.Solve(kMetric, points, ColorConstraint({1, 0}));
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one.value().centers.size(), 1u);
  EXPECT_EQ(one.value().centers[0].color, 0);
  EXPECT_DOUBLE_EQ(one.value().radius, 9.0);
}

TEST(EdgeCaseTest, JonesCapsExceedAvailability) {
  // Caps far above the number of points of a color: must not crash, and the
  // solution can only use what exists.
  const std::vector<Point> points = {P({0}, 0), P({5}, 0), P({10}, 1)};
  auto result = kJones.Solve(kMetric, points, ColorConstraint({50, 50}));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().centers.size(), 3u);
  EXPECT_DOUBLE_EQ(result.value().radius, 0.0);  // every point is a center
}

TEST(EdgeCaseTest, JonesSingleColorDegeneratesToKCenter) {
  Rng rng(3);
  std::vector<Point> points;
  for (int i = 0; i < 15; ++i) {
    points.push_back(P({rng.NextUniform(0, 100)}, 0));
  }
  auto fair = kJones.Solve(kMetric, points, ColorConstraint({3}));
  auto exact = BruteForceKCenter(kMetric, points, 3);
  ASSERT_TRUE(fair.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(fair.value().radius, 3.0 * exact.value().radius + 1e-9);
}

TEST(EdgeCaseTest, ChenSinglePoint) {
  const ChenMatroidCenter chen;
  auto result = chen.Solve(kMetric, {P({1, 2}, 0)}, ColorConstraint({1}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().centers.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value().radius, 0.0);
}

TEST(EdgeCaseTest, ChenFairPathAndGenericMatroidPathBothThreeApprox) {
  // The partition fast path and the matroid-intersection path accept the
  // same guesses but pick different centers inside the accepted balls
  // (nearest-per-color vs arbitrary independent choice), so their measured
  // radii differ within the shared 3r envelope. Verify both against the
  // exact optimum on random instances.
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Point> points;
    for (int i = 0; i < 18; ++i) {
      points.push_back(P({rng.NextUniform(0, 50), rng.NextUniform(0, 50)},
                         static_cast<int>(rng.NextBounded(2))));
    }
    const ColorConstraint constraint({2, 1});
    auto exact = BruteForceFairCenter(kMetric, points, constraint);
    ASSERT_TRUE(exact.ok());

    const ChenMatroidCenter chen;
    auto fair = chen.Solve(kMetric, points, constraint);
    const PartitionMatroid matroid =
        PartitionMatroid::OverPoints(points, constraint);
    auto generic = SolveMatroidCenter(kMetric, points, matroid);
    ASSERT_TRUE(fair.ok());
    ASSERT_TRUE(generic.ok());
    EXPECT_LE(fair.value().radius, 3.0 * exact.value().radius + 1e-9)
        << "trial " << trial;
    EXPECT_LE(generic.value().radius, 3.0 * exact.value().radius + 1e-9)
        << "trial " << trial;
    EXPECT_TRUE(constraint.IsFeasible(generic.value().centers));
  }
}

TEST(EdgeCaseTest, KleindessnerSingleSelectableColor) {
  const KleindessnerFairCenter solver;
  const std::vector<Point> points = {P({0}, 0), P({50}, 1), P({100}, 1)};
  auto result = solver.Solve(kMetric, points, ColorConstraint({1, 0}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().centers.size(), 1u);
  EXPECT_EQ(result.value().centers[0].color, 0);
}

TEST(EdgeCaseTest, GonzalezBadFirstIndexDies) {
  const std::vector<Point> points = {P({0}, 0)};
  EXPECT_DEATH(GonzalezKCenter(kMetric, points, 1, 5), "first_index");
}

// --- Guess ladder contract. ---

TEST(EdgeCaseTest, LadderRejectsNonPositiveInputs) {
  const GuessLadder ladder(2.0);
  EXPECT_DEATH(ladder.FloorExponent(0.0), "value");
  EXPECT_DEATH(ladder.FloorExponent(-1.0), "value");
  EXPECT_DEATH(GuessLadder(-0.5), "beta");
}

TEST(EdgeCaseTest, LadderExtremeValues) {
  const GuessLadder ladder(2.0);
  // Very large and very small values must not overflow the exponent logic.
  EXPECT_GT(ladder.FloorExponent(1e100), 200);
  EXPECT_LT(ladder.FloorExponent(1e-100), -200);
  EXPECT_EQ(ladder.FloorExponent(ladder.Value(37)), 37);
  EXPECT_EQ(ladder.CeilExponent(ladder.Value(-37)), -37);
}

// --- Sliding window contract violations. ---

TEST(EdgeCaseTest, WindowRejectsColorOutOfRange) {
  SlidingWindowOptions options;
  options.window_size = 10;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, ColorConstraint({1}), &kMetric,
                                 &kJones);
  EXPECT_DEATH(window.Update({1.0}, 1), "color");
  EXPECT_DEATH(window.Update({1.0}, -1), "color");
}

TEST(EdgeCaseTest, WindowRejectsBadOptions) {
  SlidingWindowOptions options;
  options.window_size = 0;
  options.adaptive_range = true;
  EXPECT_DEATH(FairCenterSlidingWindow(options, ColorConstraint({1}),
                                       &kMetric, &kJones),
               "window_size");
  options.window_size = 10;
  options.delta = 0.0;
  EXPECT_DEATH(FairCenterSlidingWindow(options, ColorConstraint({1}),
                                       &kMetric, &kJones),
               "delta");
}

TEST(EdgeCaseTest, WindowPopulationTracksFill) {
  SlidingWindowOptions options;
  options.window_size = 5;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, ColorConstraint({1}), &kMetric,
                                 &kJones);
  EXPECT_EQ(window.WindowPopulation(), 0);
  for (int i = 0; i < 3; ++i) window.Update({static_cast<double>(i)}, 0);
  EXPECT_EQ(window.WindowPopulation(), 3);
  for (int i = 0; i < 10; ++i) window.Update({static_cast<double>(i)}, 0);
  EXPECT_EQ(window.WindowPopulation(), 5);
  EXPECT_EQ(window.now(), 13);
}

TEST(EdgeCaseTest, RepeatedQueriesWithoutUpdatesAreStable) {
  SlidingWindowOptions options;
  options.window_size = 20;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, ColorConstraint({1, 1}), &kMetric,
                                 &kJones);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    window.Update({rng.NextUniform(0, 10)}, i % 2);
  }
  auto first = window.Query();
  auto second = window.Query();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(first.value().radius, second.value().radius);
  EXPECT_EQ(first.value().centers.size(), second.value().centers.size());
}

TEST(EdgeCaseTest, TinyWindowSizeOne) {
  // n = 1: the window is always exactly the latest point.
  SlidingWindowOptions options;
  options.window_size = 1;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, ColorConstraint({1}), &kMetric,
                                 &kJones);
  for (double x : {0.0, 100.0, -50.0}) {
    window.Update({x}, 0);
    auto result = window.Query();
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().centers.size(), 1u);
    EXPECT_DOUBLE_EQ(result.value().centers[0].coords[0], x);
  }
}

TEST(EdgeCaseTest, ExtremeAspectRatioStream) {
  // Scales spanning 12 orders of magnitude: the ladder must keep up and the
  // query must keep succeeding.
  SlidingWindowOptions options;
  options.window_size = 30;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, ColorConstraint({2}), &kMetric,
                                 &kJones);
  Rng rng(9);
  for (int burst = 0; burst < 6; ++burst) {
    const double scale = std::pow(10.0, 2 * burst);
    for (int i = 0; i < 15; ++i) {
      window.Update({scale * rng.NextUniform(1.0, 2.0)}, 0);
    }
    auto result = window.Query();
    ASSERT_TRUE(result.ok()) << "burst " << burst;
    EXPECT_FALSE(result.value().centers.empty());
  }
}

// --- Driver contract. ---

TEST(EdgeCaseTest, DriverDiesOnExhaustedStream) {
  WindowDriver driver(&kMetric, ColorConstraint({1}), 10);
  driver.AddBaseline("jones", &kJones);
  VectorStream stream({P({1}, 0)}, 1, "tiny", /*cycle=*/false);
  DriverOptions run;
  run.stream_length = 5;
  run.num_queries = 1;
  EXPECT_DEATH(driver.Run(&stream, run), "exhausted");
}

TEST(EdgeCaseTest, DriverRequiresAlgorithms) {
  WindowDriver driver(&kMetric, ColorConstraint({1}), 10);
  VectorStream stream({P({1}, 0)}, 1, "tiny", /*cycle=*/true);
  DriverOptions run;
  run.stream_length = 5;
  run.num_queries = 1;
  EXPECT_DEATH(driver.Run(&stream, run), "algorithms");
}

}  // namespace
}  // namespace fkc
