// Tests for the robust (outlier-tolerant) fair-center extension: outlier
// budget semantics, fairness, bicriteria quality against exact optima, and
// the classic motivating scenario — far-away noise that would otherwise
// dominate the radius.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "metric/metric.h"
#include "sequential/robust_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;

Point P(std::initializer_list<double> coords, int color) {
  return Point(Coordinates(coords), color);
}

std::vector<Point> RandomColored(int n, int ell, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(P({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                       static_cast<int>(rng.NextBounded(ell))));
    points.back().id = static_cast<uint64_t>(i + 1);
  }
  return points;
}

TEST(RobustFairCenterTest, EmptyAndDegenerateInputs) {
  auto empty =
      SolveRobustFairCenter(kMetric, {}, ColorConstraint({1}), 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().centers.empty());

  auto negative = SolveRobustFairCenter(kMetric, {P({0}, 0)},
                                        ColorConstraint({1}), -1);
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustFairCenterTest, ZeroOutliersMatchesPlainCoverage) {
  const auto points = RandomColored(30, 2, 3);
  const ColorConstraint constraint({2, 2});
  auto result = SolveRobustFairCenter(kMetric, points, constraint, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().outlier_indices.empty());
  EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
  // Radius covers everything.
  for (const Point& p : points) {
    EXPECT_LE(DistanceToSet(kMetric, p, result.value().centers),
              result.value().radius + 1e-9);
  }
}

TEST(RobustFairCenterTest, OutliersExcludedFromRadius) {
  // A tight cluster plus two far-away noise points: with z = 2, the radius
  // must reflect only the cluster.
  std::vector<Point> points;
  for (int i = 0; i < 10; ++i) points.push_back(P({0.0 + 0.1 * i}, i % 2));
  points.push_back(P({10000.0}, 0));
  points.push_back(P({-9000.0}, 1));
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].id = static_cast<uint64_t>(i + 1);
  }

  auto robust =
      SolveRobustFairCenter(kMetric, points, ColorConstraint({1, 1}), 2);
  ASSERT_TRUE(robust.ok());
  EXPECT_LE(robust.value().radius, 1.0);
  EXPECT_EQ(robust.value().outlier_indices.size(), 2u);
  // The excluded points are exactly the two noise points (indices 10, 11).
  EXPECT_EQ(robust.value().outlier_indices[0], 10);
  EXPECT_EQ(robust.value().outlier_indices[1], 11);

  // Without the budget, the noise dominates the radius.
  auto plain =
      SolveRobustFairCenter(kMetric, points, ColorConstraint({1, 1}), 0);
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(plain.value().radius, 1000.0);
}

TEST(RobustFairCenterTest, BudgetIsNeverExceeded) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const auto points = RandomColored(40, 3, seed);
    const ColorConstraint constraint({1, 2, 1});
    for (int z : {0, 1, 3, 7}) {
      auto result = SolveRobustFairCenter(kMetric, points, constraint, z);
      ASSERT_TRUE(result.ok()) << "seed=" << seed << " z=" << z;
      EXPECT_LE(static_cast<int>(result.value().outlier_indices.size()), z);
      EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
      // Every non-outlier is covered within the reported radius.
      std::vector<bool> is_outlier(points.size(), false);
      for (int idx : result.value().outlier_indices) is_outlier[idx] = true;
      for (size_t i = 0; i < points.size(); ++i) {
        if (is_outlier[i]) continue;
        EXPECT_LE(DistanceToSet(kMetric, points[i], result.value().centers),
                  result.value().radius + 1e-9);
      }
    }
  }
}

TEST(RobustFairCenterTest, WholeInputAsOutliers) {
  const auto points = RandomColored(5, 2, 9);
  auto result =
      SolveRobustFairCenter(kMetric, points, ColorConstraint({1, 1}), 10);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().radius, 0.0);
  EXPECT_EQ(result.value().centers.size(), 1u);
}

TEST(BruteForceRobustTest, KnownOptimum) {
  // Points 0, 1, 50 with one center and z = 1: exclude 50, center anywhere
  // in {0, 1} -> radius 1.
  std::vector<Point> points = {P({0}, 0), P({1}, 0), P({50}, 0)};
  auto exact =
      BruteForceRobustFairCenter(kMetric, points, ColorConstraint({1}), 1);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact.value().radius, 1.0);
  ASSERT_EQ(exact.value().outlier_indices.size(), 1u);
  EXPECT_EQ(exact.value().outlier_indices[0], 2);
}

class RobustApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(RobustApproximationTest, BicriteriaFactorAgainstExact) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<Point> points;
  for (int i = 0; i < 14; ++i) {
    points.push_back(P({rng.NextUniform(0, 60), rng.NextUniform(0, 60)},
                       static_cast<int>(rng.NextBounded(2))));
    points.back().id = static_cast<uint64_t>(i + 1);
  }
  const ColorConstraint constraint({1, 1});
  for (int z : {1, 2}) {
    auto exact = BruteForceRobustFairCenter(kMetric, points, constraint, z);
    auto approx = SolveRobustFairCenter(kMetric, points, constraint, z);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    // Bicriteria guarantee: constant-factor radius at the same budget; the
    // scheme's analysis gives 4, with slack for the binary search boundary.
    EXPECT_LE(approx.value().radius, 5.0 * exact.value().radius + 1e-9)
        << "seed=" << GetParam() << " z=" << z;
    EXPECT_LE(approx.value().outlier_indices.size(),
              static_cast<size_t>(z));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustApproximationTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace fkc
