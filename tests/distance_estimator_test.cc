// Tests for the sliding-window distance-range estimator behind
// OursOblivious: witness bucketing, expiry, and range tracking.
#include <gtest/gtest.h>

#include "core/distance_estimator.h"
#include "core/guess_ladder.h"

namespace fkc {
namespace {

TEST(DistanceEstimatorTest, EmptyHasNoRange) {
  const GuessLadder ladder(2.0);
  WindowDistanceEstimator estimator(ladder, 10);
  EXPECT_FALSE(estimator.HasRange());
}

TEST(DistanceEstimatorTest, ZeroDistancesIgnored) {
  const GuessLadder ladder(2.0);
  WindowDistanceEstimator estimator(ladder, 10);
  estimator.BeginStep(1);
  estimator.ObserveDistance(0.0);
  EXPECT_FALSE(estimator.HasRange());
}

TEST(DistanceEstimatorTest, TracksMinAndMaxExponents) {
  const GuessLadder ladder(2.0);  // base 3
  WindowDistanceEstimator estimator(ladder, 100);
  estimator.BeginStep(1);
  estimator.ObserveDistance(1.5);   // exponent 0 ([1, 3))
  estimator.ObserveDistance(30.0);  // exponent 3 ([27, 81))
  ASSERT_TRUE(estimator.HasRange());
  EXPECT_EQ(estimator.MinExponent(), 0);
  EXPECT_EQ(estimator.MaxExponent(), 3);
  EXPECT_EQ(estimator.LiveBuckets(), 2);
}

TEST(DistanceEstimatorTest, WitnessesExpireAfterOneWindow) {
  const GuessLadder ladder(2.0);
  WindowDistanceEstimator estimator(ladder, 10);
  estimator.BeginStep(1);
  estimator.ObserveDistance(100.0);
  estimator.BeginStep(5);
  estimator.ObserveDistance(1.0);
  // At t=11 the t=1 witness (both endpoints alive at t=1) must be gone:
  // its endpoints expire by t = 1 + 10.
  estimator.BeginStep(11);
  ASSERT_TRUE(estimator.HasRange());
  EXPECT_EQ(estimator.MaxExponent(), 0);  // only the 1.0 witness remains
  // And at t=15 everything is gone.
  estimator.BeginStep(15);
  EXPECT_FALSE(estimator.HasRange());
}

TEST(DistanceEstimatorTest, ReobservationRefreshesBucket) {
  const GuessLadder ladder(2.0);
  WindowDistanceEstimator estimator(ladder, 10);
  estimator.BeginStep(1);
  estimator.ObserveDistance(100.0);
  estimator.BeginStep(9);
  estimator.ObserveDistance(100.0);  // same scale, fresh witness
  estimator.BeginStep(12);           // first witness stale, second alive
  ASSERT_TRUE(estimator.HasRange());
  EXPECT_EQ(estimator.LiveBuckets(), 1);
}

TEST(DistanceEstimatorTest, RangeShrinksAsScalesLeaveWindow) {
  // Scales 1000 -> 1 over time: max exponent must ratchet down once the
  // large-scale witnesses age out.
  const GuessLadder ladder(2.0);
  WindowDistanceEstimator estimator(ladder, 5);
  estimator.BeginStep(1);
  estimator.ObserveDistance(1000.0);
  const int big = estimator.MaxExponent();
  for (int64_t t = 2; t <= 12; ++t) {
    estimator.BeginStep(t);
    estimator.ObserveDistance(1.0);
  }
  ASSERT_TRUE(estimator.HasRange());
  EXPECT_LT(estimator.MaxExponent(), big);
  EXPECT_EQ(estimator.MaxExponent(), 0);
}

}  // namespace
}  // namespace fkc
