#!/usr/bin/env python3
"""Smoke tests for tools/summarize_results.py and tools/trend_walltime.py.

Run directly (python3 tests/tools/test_summarize_results.py) or through
ctest (summarize_results_test). The fixture CSVs under fixtures/fig1/ are
three hand-written seeds with values chosen so every median and p95 below
is checkable by hand:

  Ours@1 update_ms over seeds = [1.0, 3.0, 2.0]
    median = 2.0
    p95    = interpolated rank 0.95*(3-1) = 1.9 -> 2.0 + 0.9*(3.0-2.0) = 2.9
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TESTS_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TESTS_TOOLS_DIR))
FIXTURES = os.path.join(TESTS_TOOLS_DIR, "fixtures", "fig1")
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import summarize_results  # noqa: E402
import trend_walltime  # noqa: E402


class StatsTest(unittest.TestCase):
    def test_median_odd_and_even(self):
        self.assertEqual(summarize_results.median([3.0, 1.0, 2.0]), 2.0)
        self.assertEqual(summarize_results.median([4.0, 1.0, 2.0, 3.0]), 2.5)
        self.assertEqual(summarize_results.median([7.0]), 7.0)

    def test_p95_interpolates_between_order_statistics(self):
        # rank = 0.95 * (n - 1); n=3 -> 1.9 -> xs[1] + 0.9 * (xs[2] - xs[1])
        self.assertAlmostEqual(summarize_results.p95([1.0, 3.0, 2.0]), 2.9)
        # n=1: the single repeat IS the p95.
        self.assertEqual(summarize_results.p95([5.0]), 5.0)
        # n=2: rank 0.95 -> 1 + 0.95 * (3 - 1)
        self.assertAlmostEqual(summarize_results.p95([1.0, 3.0]), 2.9)


class SummarizeFixtureTest(unittest.TestCase):
    """End-to-end over the committed three-seed fixture."""

    def run_tool(self, *argv):
        return subprocess.run(
            [sys.executable,
             os.path.join(REPO_ROOT, "tools", "summarize_results.py"),
             *argv],
            capture_output=True, text=True)

    def summarize_fixture(self):
        rows = summarize_results.read_raw(
            summarize_results.expand_inputs([FIXTURES]))
        return summarize_results.summarize(rows)

    def test_median_p95_math_on_fixture(self):
        summary = self.summarize_fixture()
        by_key = {(r["dataset"], r["algorithm"]): r for r in summary}
        ours = by_key[("higgs", "Ours@1")]
        self.assertEqual(ours["n"], 3)
        self.assertAlmostEqual(ours["update_ms_median"], 2.0)
        self.assertAlmostEqual(ours["update_ms_p95"], 2.9)
        self.assertAlmostEqual(ours["ratio_median"], 1.1)
        self.assertAlmostEqual(ours["ratio_p95"], 1.19)
        self.assertAlmostEqual(ours["memory_pts_median"], 120.0)
        self.assertAlmostEqual(ours["memory_pts_p95"], 138.0)
        self.assertAlmostEqual(ours["query_ms_median"], 20.0)
        self.assertAlmostEqual(ours["query_ms_p95"], 29.0)
        # Constant across seeds: median == p95 == the constant.
        jones = by_key[("higgs", "Jones")]
        self.assertEqual(jones["ratio_median"], 1.0)
        self.assertEqual(jones["ratio_p95"], 1.0)

    def test_nan_ratio_stays_nan_without_poisoning_other_metrics(self):
        summary = self.summarize_fixture()
        nobase = next(r for r in summary if r["dataset"] == "nobase")
        self.assertNotEqual(nobase["ratio_median"], nobase["ratio_median"])
        self.assertAlmostEqual(nobase["update_ms_median"], 0.55)

    def test_summary_csv_column_order_is_stable(self):
        expected = (
            "figure,dataset,algorithm,x_name,x,n,"
            "ratio_median,ratio_p95,memory_pts_median,memory_pts_p95,"
            "update_ms_median,update_ms_p95,query_ms_median,query_ms_p95")
        self.assertEqual(",".join(summarize_results.SUMMARY_COLUMNS),
                         expected)
        with tempfile.TemporaryDirectory() as tmp:
            out_csv = os.path.join(tmp, "summary.csv")
            result = self.run_tool(FIXTURES, "--out-csv", out_csv)
            self.assertEqual(result.returncode, 0, result.stderr)
            with open(out_csv) as f:
                lines = f.read().splitlines()
            self.assertEqual(lines[0], expected)
            # Deterministic sort: same input twice -> identical bytes.
            out_csv2 = os.path.join(tmp, "summary2.csv")
            self.run_tool(FIXTURES, "--out-csv", out_csv2)
            with open(out_csv2) as f:
                self.assertEqual(f.read().splitlines(), lines)

    def test_update_report_rewrites_only_the_autogen_block(self):
        with tempfile.TemporaryDirectory() as tmp:
            report = os.path.join(tmp, "REPORT.md")
            with open(report, "w") as f:
                f.write("# Title\nprose stays\n\n"
                        "<!-- BEGIN AUTOGEN:fig1 -->\nstale\n"
                        "<!-- END AUTOGEN:fig1 -->\n\ntrailing prose\n")
            result = self.run_tool(FIXTURES, "--update-report", report)
            self.assertEqual(result.returncode, 0, result.stderr)
            with open(report) as f:
                text = f.read()
            self.assertIn("prose stays", text)
            self.assertIn("trailing prose", text)
            self.assertNotIn("stale", text)
            self.assertIn("| higgs | Ours@1 | 1 |", text)
            # Idempotent: a second regeneration yields identical bytes.
            self.run_tool(FIXTURES, "--update-report", report)
            with open(report) as f:
                self.assertEqual(f.read(), text)

    def test_missing_marker_fails_loud(self):
        with tempfile.TemporaryDirectory() as tmp:
            report = os.path.join(tmp, "REPORT.md")
            with open(report, "w") as f:
                f.write("# No markers here\n")
            result = self.run_tool(FIXTURES, "--update-report", report)
            self.assertEqual(result.returncode, 1)
            self.assertIn("AUTOGEN:fig1", result.stderr)

    def test_malformed_raw_fails_loud(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "raw_seed1.csv")
            with open(bad, "w") as f:
                f.write("wrong,header\n1,2\n")
            result = self.run_tool(tmp)
            self.assertEqual(result.returncode, 1)
            self.assertIn("schema", result.stderr)


class TrendWalltimeTest(unittest.TestCase):
    """trend_walltime.py chains per-PR slowdowns into cumulative drift."""

    @staticmethod
    def write_pair(root, name, shard_tp, micro_ns):
        pair = os.path.join(root, name)
        os.makedirs(pair)
        base_tp, head_tp = shard_tp
        base_ns, head_ns = micro_ns
        shard = lambda tp: {"bench": "shard_scaling", "runs": [
            {"shards": 1, "updates": 10, "updates_per_s": tp,
             "queries_per_s": tp / 10.0, "memory_points": 5}]}
        micro = lambda ns: {"benchmarks": [
            {"name": "BM_X", "run_type": "iteration", "real_time": ns}]}
        for fname, data in (("base_shard.json", shard(base_tp)),
                            ("head_shard.json", shard(head_tp)),
                            ("base_micro.json", micro(base_ns)),
                            ("head_micro.json", micro(head_ns))):
            with open(os.path.join(pair, fname), "w") as f:
                json.dump(data, f)
        return pair

    def test_cumulative_drift_is_the_product_of_per_pair_ratios(self):
        with tempfile.TemporaryDirectory() as tmp:
            # Two PRs each 10% slower on micro: cumulative 1.21.
            a = self.write_pair(tmp, "walltime-pair-aaa",
                                (1000.0, 1000.0), (10.0, 11.0))
            b = self.write_pair(tmp, "walltime-pair-bbb",
                                (1000.0, 800.0), (11.0, 12.1))
            labels, rows = trend_walltime.build_trend([a, b])
            self.assertEqual(labels, ["aaa", "bbb"])
            by_key = {key: cumulative for key, _, cumulative in rows}
            self.assertAlmostEqual(
                by_key[("micro_kernels", "BM_X", "real_time")], 1.21)
            # Throughput slowdown convention: base/head = 1000/800.
            self.assertAlmostEqual(
                by_key[("shard_scaling", "shards/1", "updates_per_s")], 1.25)

    def test_fail_on_drift_exit_code(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.write_pair(tmp, "walltime-pair-slow",
                            (1000.0, 500.0), (10.0, 10.0))
            result = subprocess.run(
                [sys.executable,
                 os.path.join(REPO_ROOT, "tools", "trend_walltime.py"),
                 os.path.join(tmp, "walltime-pair-slow"),
                 "--max-cumulative-drift", "0.25", "--fail-on-drift"],
                capture_output=True, text=True)
            self.assertEqual(result.returncode, 1)
            self.assertIn("updates_per_s", result.stderr)


if __name__ == "__main__":
    unittest.main()
