// Tests for the streaming substrate: vector streams, the reference window,
// the metrics recorder, and the experiment driver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/fair_center_lite.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "stream/metrics_recorder.h"
#include "stream/reference_window.h"
#include "stream/stream.h"
#include "stream/window_driver.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

Point P(double x, int color) { return Point({x}, color); }

TEST(VectorStreamTest, EmitsInOrderAndEnds) {
  VectorStream stream({P(1, 0), P(2, 1)}, 2, "test");
  EXPECT_EQ(stream.Next()->coords[0], 1.0);
  EXPECT_EQ(stream.Next()->coords[0], 2.0);
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.ell(), 2);
  EXPECT_EQ(stream.dimension(), 1);
  EXPECT_EQ(stream.Name(), "test");
}

TEST(VectorStreamTest, CyclingRestarts) {
  VectorStream stream({P(1, 0), P(2, 0)}, 1, "cyc", /*cycle=*/true);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(stream.Next()->coords[0], 1.0);
    EXPECT_EQ(stream.Next()->coords[0], 2.0);
  }
}

TEST(VectorStreamTest, EmptyCyclingStreamEnds) {
  VectorStream stream({}, 1, "empty", /*cycle=*/true);
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(ReferenceWindowTest, EvictsOldest) {
  ReferenceWindow window(2);
  window.Update(P(1, 0));
  window.Update(P(2, 0));
  window.Update(P(3, 0));
  const auto snapshot = window.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].coords[0], 2.0);
  EXPECT_EQ(snapshot[1].coords[0], 3.0);
  EXPECT_EQ(window.MemoryPoints(), 2);
}

TEST(ReferenceWindowTest, QueryRunsSolverOnWindow) {
  ReferenceWindow window(10);
  window.Update(P(0, 0));
  window.Update(P(10, 1));
  auto result = window.Query(kMetric, kJones, ColorConstraint({1, 1}));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().radius, 10.0);
  EXPECT_FALSE(result.value().centers.empty());
}

TEST(MetricsRecorderTest, Aggregation) {
  MetricsRecorder rec("algo");
  rec.RecordUpdateNanos(2000000);
  rec.RecordUpdateNanos(4000000);
  rec.RecordQuery(1000000, 5.0, 100, 1.25);
  rec.RecordQuery(3000000, 7.0, 200, 0.75);
  EXPECT_DOUBLE_EQ(rec.MeanUpdateMillis(), 3.0);
  EXPECT_DOUBLE_EQ(rec.MeanQueryMillis(), 2.0);
  EXPECT_DOUBLE_EQ(rec.MeanRadius(), 6.0);
  EXPECT_DOUBLE_EQ(rec.MeanMemoryPoints(), 150.0);
  EXPECT_DOUBLE_EQ(rec.MeanApproxRatio(), 1.0);
  EXPECT_EQ(rec.QueryCount(), 2);
  EXPECT_EQ(rec.UpdateCount(), 2);
}

TEST(MetricsRecorderTest, NanRatiosIgnored) {
  MetricsRecorder rec("algo");
  rec.RecordQuery(1, 1.0, 1, std::nan(""));
  EXPECT_TRUE(std::isnan(rec.MeanApproxRatio()));
  rec.RecordQuery(1, 1.0, 1, 2.0);
  EXPECT_DOUBLE_EQ(rec.MeanApproxRatio(), 2.0);
}

std::vector<Point> TwoClusterData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    const double base = rng.NextBernoulli(0.5) ? 0.0 : 100.0;
    points.push_back(
        P(base + rng.NextUniform(0, 1), static_cast<int>(rng.NextBounded(2))));
  }
  return points;
}

TEST(WindowDriverTest, RunsStreamingAndBaselineTogether) {
  const ColorConstraint constraint({1, 1});
  const int64_t window_size = 50;

  SlidingWindowOptions options;
  options.window_size = window_size;
  options.delta = 1.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow ours(options, constraint, &kMetric, &kJones);

  WindowDriver driver(&kMetric, constraint, window_size);
  driver.AddStreaming("Ours", &ours);
  driver.AddBaseline("Jones", &kJones);

  VectorStream stream(TwoClusterData(400, 3), 2, "two-cluster");
  DriverOptions run;
  run.stream_length = 300;
  run.num_queries = 20;
  const auto reports = driver.Run(&stream, run);

  ASSERT_EQ(reports.size(), 2u);
  const auto& ours_report = reports[0];
  const auto& jones_report = reports[1];
  EXPECT_EQ(ours_report.queries, 20);
  EXPECT_EQ(jones_report.queries, 20);
  // The baseline defines ratio 1.0 for itself (it is the only baseline).
  EXPECT_NEAR(jones_report.mean_ratio, 1.0, 1e-9);
  // Streaming quality within the theoretical factor of the baseline.
  EXPECT_LT(ours_report.mean_ratio, 4.0);
  EXPECT_GT(ours_report.mean_ratio, 0.1);
  // Baseline memory = full window; streaming memory smaller on clustered
  // data with a short ladder... at minimum both positive.
  EXPECT_DOUBLE_EQ(jones_report.mean_memory_points,
                   static_cast<double>(window_size));
  EXPECT_GT(ours_report.mean_memory_points, 0);
}

TEST(WindowDriverTest, LiteVariantDrivable) {
  const ColorConstraint constraint({1, 1});
  SlidingWindowOptions options;
  options.window_size = 40;
  options.adaptive_range = true;
  FairCenterLite lite(options, constraint, &kMetric, &kJones);

  WindowDriver driver(&kMetric, constraint, 40);
  driver.AddStreaming("Lite", &lite);
  VectorStream stream(TwoClusterData(200, 7), 2, "two-cluster");
  DriverOptions run;
  run.stream_length = 150;
  run.num_queries = 10;
  const auto reports = driver.Run(&stream, run);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].queries, 10);
  // No baseline registered: ratio undefined.
  EXPECT_TRUE(std::isnan(reports[0].mean_ratio));
}

TEST(WindowDriverTest, QueryStrideSpacesMeasurements) {
  const ColorConstraint constraint({1, 1});
  SlidingWindowOptions options;
  options.window_size = 30;
  options.adaptive_range = true;
  FairCenterSlidingWindow ours(options, constraint, &kMetric, &kJones);

  WindowDriver driver(&kMetric, constraint, 30);
  driver.AddStreaming("Ours", &ours);
  VectorStream stream(TwoClusterData(500, 9), 2, "two-cluster");
  DriverOptions run;
  run.stream_length = 400;
  run.num_queries = 5;
  run.query_stride = 10;
  const auto reports = driver.Run(&stream, run);
  EXPECT_EQ(reports[0].queries, 5);
}

}  // namespace
}  // namespace fkc
