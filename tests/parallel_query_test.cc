// The parallel query pipeline's contract: PlanQuery / Query / QueryRobust
// are bit-identical to the sequential scan at any thread count — the
// solution, every deterministic QueryStats field, and the serialized state
// all match byte for byte — and the batch-level expiry dedup never changes
// state, only skips provably no-op sweeps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

std::vector<Point> Stream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(Point({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                           static_cast<int>(rng.NextBounded(3))));
  }
  return points;
}

SlidingWindowOptions Options(bool adaptive, int num_threads) {
  SlidingWindowOptions options;
  options.window_size = 120;
  options.delta = 1.0;
  options.adaptive_range = adaptive;
  if (!adaptive) {
    options.d_min = 0.05;
    options.d_max = 400.0;
  }
  options.num_threads = num_threads;
  return options;
}

/// Everything a query run produces that must be thread-count invariant.
struct RunTrace {
  std::vector<double> radii;
  std::vector<Point> last_centers;
  std::vector<double> guesses;
  std::vector<int64_t> coreset_sizes;
  std::vector<int> inspected;
  std::string final_state;
};

RunTrace RunQueryTrace(bool adaptive, int num_threads, const std::vector<Point>& points) {
  const ColorConstraint constraint({2, 1, 1});
  FairCenterSlidingWindow window(Options(adaptive, num_threads), constraint,
                                 &kMetric, &kJones);
  RunTrace trace;
  for (size_t i = 0; i < points.size(); ++i) {
    window.Update(points[i]);
    if (i % 37 == 36) {
      QueryStats stats;
      auto result = window.Query(&stats);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      trace.radii.push_back(result.value().radius);
      trace.last_centers = result.value().centers;
      trace.guesses.push_back(stats.guess);
      trace.coreset_sizes.push_back(stats.coreset_size);
      trace.inspected.push_back(stats.guesses_inspected);
    }
  }
  trace.final_state = window.SerializeState();
  return trace;
}

void ExpectSameTrace(const RunTrace& a, const RunTrace& b) {
  EXPECT_EQ(a.radii, b.radii);
  EXPECT_EQ(a.guesses, b.guesses);
  EXPECT_EQ(a.coreset_sizes, b.coreset_sizes);
  EXPECT_EQ(a.inspected, b.inspected);
  EXPECT_EQ(a.final_state, b.final_state);
  ASSERT_EQ(a.last_centers.size(), b.last_centers.size());
  for (size_t i = 0; i < a.last_centers.size(); ++i) {
    EXPECT_EQ(a.last_centers[i].coords, b.last_centers[i].coords);
    EXPECT_EQ(a.last_centers[i].color, b.last_centers[i].color);
  }
}

TEST(ParallelQueryTest, FixedRangeBitIdenticalAcrossThreadCounts) {
  const auto points = Stream(400, 17);
  const RunTrace sequential = RunQueryTrace(/*adaptive=*/false, 1, points);
  for (int threads : {2, 8}) {
    ExpectSameTrace(sequential, RunQueryTrace(/*adaptive=*/false, threads, points));
  }
}

TEST(ParallelQueryTest, AdaptiveRangeBitIdenticalAcrossThreadCounts) {
  const auto points = Stream(400, 23);
  const RunTrace sequential = RunQueryTrace(/*adaptive=*/true, 1, points);
  for (int threads : {2, 8}) {
    ExpectSameTrace(sequential, RunQueryTrace(/*adaptive=*/true, threads, points));
  }
}

// The regression the parallel path must not introduce: guesses_inspected and
// coreset_size populated exactly as the sequential early-exit scan counts
// them, never torn or accumulated across threads.
TEST(ParallelQueryTest, QueryStatsMatchSequentialSemantics) {
  const auto points = Stream(300, 31);
  const ColorConstraint constraint({2, 1, 1});

  FairCenterSlidingWindow sequential(Options(/*adaptive=*/false, 1),
                                     constraint, &kMetric, &kJones);
  FairCenterSlidingWindow parallel(Options(/*adaptive=*/false, 8), constraint,
                                   &kMetric, &kJones);
  for (const Point& p : points) {
    sequential.Update(p);
    parallel.Update(p);
  }

  QueryStats seq_stats, par_stats;
  auto seq = sequential.Query(&seq_stats);
  auto par = parallel.Query(&par_stats);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_GT(seq_stats.guesses_inspected, 0);
  EXPECT_GT(seq_stats.coreset_size, 0);
  EXPECT_EQ(seq_stats.guess, par_stats.guess);
  EXPECT_EQ(seq_stats.coreset_size, par_stats.coreset_size);
  EXPECT_EQ(seq_stats.guesses_inspected, par_stats.guesses_inspected);
}

// Query and QueryRobust run the same plan: identical selection diagnostics
// on identical state.
TEST(ParallelQueryTest, QueryAndQueryRobustShareOnePlan) {
  const auto points = Stream(250, 41);
  const ColorConstraint constraint({2, 1, 1});
  FairCenterSlidingWindow window(Options(/*adaptive=*/true, 4), constraint,
                                 &kMetric, &kJones);
  for (const Point& p : points) window.Update(p);

  QueryStats query_stats, robust_stats;
  ASSERT_TRUE(window.Query(&query_stats).ok());
  ASSERT_TRUE(window.QueryRobust(2, &robust_stats).ok());
  EXPECT_EQ(query_stats.guess, robust_stats.guess);
  EXPECT_EQ(query_stats.coreset_size, robust_stats.coreset_size);
  EXPECT_EQ(query_stats.guesses_inspected, robust_stats.guesses_inspected);
}

TEST(ParallelQueryTest, PlanQueryOnEmptyWindowIsEmpty) {
  const ColorConstraint constraint({2, 1, 1});
  FairCenterSlidingWindow window(Options(/*adaptive=*/true, 4), constraint,
                                 &kMetric, &kJones);
  auto plan = window.PlanQuery();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().coreset.empty());
  EXPECT_EQ(plan.value().stats.coreset_size, 0);
  EXPECT_EQ(plan.value().stats.guesses_inspected, 0);
}

// Batch-level expiry dedup: the watermark reduces actual sweeps to a small
// fraction of the ExpireOnly calls (one per arrival per guess before), while
// the state stays bit-identical to the always-sweep behaviour (covered by
// the thread-count tests above, which serialize the final state).
TEST(ParallelQueryTest, ExpiryDedupSkipsMostSweeps) {
  const auto points = Stream(600, 53);
  const ColorConstraint constraint({2, 1, 1});
  FairCenterSlidingWindow window(Options(/*adaptive=*/false, 1), constraint,
                                 &kMetric, &kJones);
  std::vector<Point> batch = points;
  window.UpdateBatch(std::move(batch));

  const int64_t guesses = window.Memory().guesses;
  ASSERT_GT(guesses, 0);
  // Without dedup every arrival sweeps every guess: 600 * guesses sweeps.
  // The watermark brings it down to the actual expiry events.
  const int64_t naive = 600 * guesses;
  EXPECT_LT(window.ExpirySweeps(), naive / 4)
      << "expiry watermark is not deduplicating sweeps";
}

}  // namespace
}  // namespace fkc
