// Tests for the robust sliding-window query extension (QueryRobust): budget
// and fairness invariants under streaming, and the motivating behaviour —
// transient far-away noise inside the window should not inflate the radius
// when an outlier budget is available.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

namespace fkc {
namespace {

const EuclideanMetric kMetric;
const JonesFairCenter kJones;

FairCenterSlidingWindow MakeAdaptiveWindow(int64_t window_size,
                                           ColorConstraint constraint) {
  SlidingWindowOptions options;
  options.window_size = window_size;
  options.delta = 0.5;
  options.adaptive_range = true;
  return FairCenterSlidingWindow(options, std::move(constraint), &kMetric,
                                 &kJones);
}

TEST(RobustWindowTest, EmptyWindow) {
  auto window = MakeAdaptiveWindow(10, ColorConstraint({1}));
  auto result = window.QueryRobust(3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().centers.empty());
}

TEST(RobustWindowTest, FeasibilityAndBudgetUnderStreaming) {
  const ColorConstraint constraint({2, 1});
  auto window = MakeAdaptiveWindow(60, constraint);
  Rng rng(3);
  for (int t = 0; t < 240; ++t) {
    window.Update({rng.NextUniform(0, 100), rng.NextUniform(0, 100)},
                  static_cast<int>(rng.NextBounded(2)));
    if (t > 30 && t % 30 == 0) {
      auto result = window.QueryRobust(4);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(constraint.IsFeasible(result.value().centers));
      EXPECT_LE(result.value().outlier_indices.size(), 4u);
      EXPECT_FALSE(result.value().centers.empty());
    }
  }
}

TEST(RobustWindowTest, NoiseInWindowAbsorbedByBudget) {
  const ColorConstraint constraint({1, 1});
  auto window = MakeAdaptiveWindow(100, constraint);
  ReferenceWindow truth(100);
  Rng rng(7);
  int64_t t = 0;
  auto feed = [&](double x) {
    ++t;
    Point p({x, 0.0}, static_cast<int>(rng.NextBounded(2)));
    p.arrival = t;
    truth.Update(p);
    window.Update(p);
  };
  // Tight cluster with three noise spikes still inside the window.
  for (int i = 0; i < 95; ++i) feed(rng.NextUniform(0, 1.0));
  feed(50000.0);
  feed(-40000.0);
  feed(90000.0);
  for (int i = 0; i < 2; ++i) feed(rng.NextUniform(0, 1.0));

  auto plain = window.Query();
  auto robust = window.QueryRobust(3);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(robust.ok());

  // Plain query must cover the spikes -> huge radius on the true window.
  const double plain_radius =
      ClusteringRadius(kMetric, truth.Snapshot(), plain.value().centers);
  EXPECT_GT(plain_radius, 10000.0);

  // Robust query with z = 3 discards them: its centers cover the cluster
  // tightly. Evaluate on the window minus the three spikes.
  std::vector<Point> cluster_only;
  for (const Point& p : truth.Snapshot()) {
    if (std::abs(p.coords[0]) < 10.0) cluster_only.push_back(p);
  }
  const double robust_radius =
      ClusteringRadius(kMetric, cluster_only, robust.value().centers);
  EXPECT_LT(robust_radius, 5.0);
  EXPECT_LE(robust.value().outlier_indices.size(), 3u);
}

TEST(RobustWindowTest, ZeroBudgetDegeneratesToPlainQuery) {
  const ColorConstraint constraint({1, 1});
  auto window = MakeAdaptiveWindow(50, constraint);
  Rng rng(11);
  for (int t = 0; t < 120; ++t) {
    window.Update({rng.NextUniform(0, 50)}, static_cast<int>(t % 2));
  }
  auto plain = window.Query();
  auto robust = window.QueryRobust(0);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(robust.ok());
  EXPECT_TRUE(robust.value().outlier_indices.empty());
  // Radii are over the same coreset; both constant-factor, so comparable.
  EXPECT_LT(robust.value().radius, 4.0 * plain.value().radius + 1e-9);
}

TEST(RobustWindowTest, StatsPopulated) {
  auto window = MakeAdaptiveWindow(30, ColorConstraint({1, 1}));
  Rng rng(13);
  for (int t = 0; t < 60; ++t) {
    window.Update({rng.NextUniform(0, 10)}, static_cast<int>(t % 2));
  }
  QueryStats stats;
  auto result = window.QueryRobust(2, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.coreset_size, 0);
  EXPECT_GT(stats.guess, 0.0);
}

}  // namespace
}  // namespace fkc
