// Tests for the dataset substrate: generator contracts (sizes, colors,
// dimensionality, aspect-ratio bands, intrinsic dimension of rotated data),
// the CSV loader, and the registry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "datasets/blobs.h"
#include "datasets/covtype_sim.h"
#include "datasets/csv_loader.h"
#include "datasets/higgs_sim.h"
#include "datasets/phones_sim.h"
#include "datasets/registry.h"
#include "datasets/rotated.h"
#include "metric/aspect_ratio.h"
#include "metric/doubling.h"
#include "metric/metric.h"

namespace fkc {
namespace {

using datasets::BlobsOptions;
using datasets::CovtypeSimOptions;
using datasets::CsvOptions;
using datasets::GenerateBlobs;
using datasets::GenerateCovtypeSim;
using datasets::GenerateHiggsSim;
using datasets::GeneratePhonesSim;
using datasets::HiggsSimOptions;
using datasets::MakeDataset;
using datasets::ParseCsv;
using datasets::PhonesSimOptions;
using datasets::RandomRotation;
using datasets::RotateAndPad;

const EuclideanMetric kMetric;

TEST(BlobsTest, SizesColorsAndDimension) {
  BlobsOptions options;
  options.num_points = 500;
  options.dimension = 4;
  const auto points = GenerateBlobs(options);
  ASSERT_EQ(points.size(), 500u);
  std::set<int> colors;
  for (const Point& p : points) {
    EXPECT_EQ(p.dimension(), 4u);
    EXPECT_GE(p.color, 0);
    EXPECT_LT(p.color, options.ell);
    colors.insert(p.color);
  }
  EXPECT_EQ(colors.size(), static_cast<size_t>(options.ell));
}

TEST(BlobsTest, DeterministicPerSeed) {
  BlobsOptions options;
  options.num_points = 50;
  const auto a = GenerateBlobs(options);
  const auto b = GenerateBlobs(options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].coords, b[i].coords);
    EXPECT_EQ(a[i].color, b[i].color);
  }
  options.seed = 7;
  const auto c = GenerateBlobs(options);
  EXPECT_NE(a[0].coords, c[0].coords);
}

TEST(BlobsTest, ColorsRoughlyBalanced) {
  BlobsOptions options;
  options.num_points = 7000;
  const auto points = GenerateBlobs(options);
  std::vector<int> counts(options.ell, 0);
  for (const Point& p : points) ++counts[p.color];
  for (int c = 0; c < options.ell; ++c) {
    EXPECT_NEAR(counts[c], 1000, 150) << "color " << c;
  }
}

TEST(RotatedTest, RotationIsOrthogonal) {
  const auto m = RandomRotation(5, 3);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      double dot = 0.0;
      for (int c = 0; c < 5; ++c) dot += m[i][c] * m[j][c];
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(RotatedTest, PreservesPairwiseDistances) {
  PhonesSimOptions options;
  options.num_points = 60;
  const auto base = GeneratePhonesSim(options);
  const auto rotated = RotateAndPad(base, 9, 11);
  ASSERT_EQ(rotated.size(), base.size());
  for (size_t i = 0; i < base.size(); i += 7) {
    for (size_t j = i + 1; j < base.size(); j += 5) {
      EXPECT_NEAR(kMetric.Distance(base[i], base[j]),
                  kMetric.Distance(rotated[i], rotated[j]), 1e-9);
    }
  }
  EXPECT_EQ(rotated[0].dimension(), 9u);
  EXPECT_EQ(rotated[0].color, base[0].color);
}

TEST(RotatedTest, IntrinsicDimensionUnchanged) {
  // The defining property behind Figure 5.
  PhonesSimOptions options;
  options.num_points = 150;
  const auto base = GeneratePhonesSim(options);
  const auto rotated = RotateAndPad(base, 12, 5);
  const double base_dim = EstimateDoublingDimension(kMetric, base);
  const double rotated_dim = EstimateDoublingDimension(kMetric, rotated);
  EXPECT_NEAR(base_dim, rotated_dim, 0.6);
}

TEST(PhonesSimTest, ShapeAndLabels) {
  PhonesSimOptions options;
  options.num_points = 2000;
  const auto points = GeneratePhonesSim(options);
  ASSERT_EQ(points.size(), 2000u);
  std::set<int> colors;
  for (const Point& p : points) {
    EXPECT_EQ(p.dimension(), 3u);
    colors.insert(p.color);
  }
  EXPECT_GE(colors.size(), 3u) << "several activities should occur";
}

TEST(PhonesSimTest, LabelsAreSticky) {
  PhonesSimOptions options;
  options.num_points = 5000;
  const auto points = GeneratePhonesSim(options);
  int changes = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].color != points[i - 1].color) ++changes;
  }
  // With stickiness 0.98 expect ~2% switches, far below 50%.
  EXPECT_LT(changes, 500);
  EXPECT_GT(changes, 10);
}

TEST(PhonesSimTest, WideAspectRatio) {
  PhonesSimOptions options;
  options.num_points = 4000;
  const auto points = GeneratePhonesSim(options);
  // Subsample for the O(n^2) extrema scan.
  std::vector<Point> sample;
  for (size_t i = 0; i < points.size(); i += 4) sample.push_back(points[i]);
  const double ratio = AspectRatio(kMetric, sample);
  EXPECT_GT(ratio, 1e3) << "handoffs must create a wide scale range";
}

TEST(HiggsSimTest, TwoColorsAndDimension) {
  HiggsSimOptions options;
  options.num_points = 3000;
  const auto points = GenerateHiggsSim(options);
  int signal = 0;
  for (const Point& p : points) {
    EXPECT_EQ(p.dimension(), 7u);
    ASSERT_GE(p.color, 0);
    ASSERT_LE(p.color, 1);
    signal += (p.color == 0);
  }
  // Roughly the configured signal fraction.
  EXPECT_NEAR(static_cast<double>(signal) / 3000.0, 0.53, 0.05);
}

TEST(CovtypeSimTest, AmbientVsLatentDimension) {
  CovtypeSimOptions options;
  options.num_points = 400;
  const auto points = GenerateCovtypeSim(options);
  ASSERT_EQ(points.size(), 400u);
  EXPECT_EQ(points[0].dimension(), 54u);
  // Intrinsic dimension must be far below 54 (low-rank embedding).
  std::vector<Point> sample(points.begin(), points.begin() + 200);
  const double dim = EstimateDoublingDimension(kMetric, sample);
  EXPECT_LT(dim, 12.0);
}

TEST(CovtypeSimTest, CoverTypesImbalanced) {
  CovtypeSimOptions options;
  options.num_points = 7000;
  const auto points = GenerateCovtypeSim(options);
  std::vector<int> counts(options.ell, 0);
  for (const Point& p : points) ++counts[p.color];
  EXPECT_GT(counts[0], counts[6]) << "first cover types dominate";
  for (int c = 0; c < options.ell; ++c) EXPECT_GT(counts[c], 0);
}

TEST(CsvLoaderTest, ParsesColorLastColumnByDefault) {
  auto result = ParseCsv("1.5,2.5,0\n3.0,4.0,1\n");
  ASSERT_TRUE(result.ok());
  const auto& points = result.value();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].coords, Coordinates({1.5, 2.5}));
  EXPECT_EQ(points[0].color, 0);
  EXPECT_EQ(points[1].color, 1);
}

TEST(CsvLoaderTest, CustomColorColumnAndSkipLines) {
  CsvOptions options;
  options.color_column = 0;
  options.skip_lines = 1;
  auto result = ParseCsv("header,junk\n2,7.5\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].color, 2);
  EXPECT_EQ(result.value()[0].coords, Coordinates({7.5}));
}

TEST(CsvLoaderTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("1,2,0\n1,0\n").ok());
}

TEST(CsvLoaderTest, RejectsBadNumbers) {
  EXPECT_FALSE(ParseCsv("abc,0\n").ok());
  EXPECT_FALSE(ParseCsv("1.0,zebra\n").ok());
}

TEST(CsvLoaderTest, SkipsBlankLines) {
  auto result = ParseCsv("1,0\n\n2,1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(CsvLoaderTest, MissingFileIsIoError) {
  auto result = datasets::LoadCsv("/nonexistent/file.csv");
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(RegistryTest, KnownDatasets) {
  for (const std::string& name : datasets::RealDatasetNames()) {
    auto result = MakeDataset(name, 200);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.value().points.size(), 200u);
    EXPECT_GT(result.value().ell, 0);
  }
}

TEST(RegistryTest, ParameterizedFamilies) {
  auto blobs = MakeDataset("blobs5", 100);
  ASSERT_TRUE(blobs.ok());
  EXPECT_EQ(blobs.value().points[0].dimension(), 5u);

  auto rotated = MakeDataset("rotated9", 100);
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(rotated.value().points[0].dimension(), 9u);
}

TEST(RegistryTest, UnknownAndMalformedNames) {
  EXPECT_EQ(MakeDataset("nope", 10).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(MakeDataset("blobsX", 10).ok());
  EXPECT_FALSE(MakeDataset("rotated1", 10).ok());  // below base dimension 3
}

// Real-dataset ingestion: a prepared CSV under FKC_DATA_DIR takes precedence
// over the simulator, short files cycle to the requested length, and the
// absence of a file falls back to the simulator with kNotFound semantics.
TEST(RegistryTest, RealCsvPreferredOverSimulatorWhenPresent) {
  const std::string dir = ::testing::TempDir() + "fkc_real_data";
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  // Prepared format: coordinates then a 0-based color in the last column.
  {
    std::ofstream csv(dir + "/higgs.csv");
    csv << "1.0,2.0,3.0,4.0,5.0,6.0,7.0,0\n"
        << "7.0,6.0,5.0,4.0,3.0,2.0,1.0,1\n"
        << "1.5,2.5,3.5,4.5,5.5,6.5,7.5,1\n";
  }

  auto direct = datasets::LoadRealDataset("higgs", 5, dir);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct.value().points.size(), 5u);  // 3 rows cycled to 5
  EXPECT_EQ(direct.value().ell, 2);
  EXPECT_EQ(direct.value().points[0].dimension(), 7u);
  EXPECT_EQ(direct.value().points[3].coords, direct.value().points[0].coords);

  // MakeDataset routes through the same file when FKC_DATA_DIR points at it.
  // Scoped so a failing assertion cannot leak the variable into later tests
  // in this binary (which also call MakeDataset).
  struct EnvGuard {
    explicit EnvGuard(const std::string& value) {
      setenv("FKC_DATA_DIR", value.c_str(), /*overwrite=*/1);
    }
    ~EnvGuard() { unsetenv("FKC_DATA_DIR"); }
  };
  {
    const EnvGuard guard(dir);
    auto via_registry = MakeDataset("higgs", 4);
    ASSERT_TRUE(via_registry.ok());
    EXPECT_EQ(via_registry.value().points[0].coords,
              direct.value().points[0].coords);
    EXPECT_EQ(via_registry.value().ell, 2);

    // No phones.csv in the directory: simulator fallback, untouched
    // semantics.
    auto fallback = MakeDataset("phones", 50);
    ASSERT_TRUE(fallback.ok());
    EXPECT_EQ(fallback.value().points.size(), 50u);
    EXPECT_EQ(fallback.value().ell, 7);
  }

  EXPECT_EQ(datasets::LoadRealDataset("phones", 10, dir).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(datasets::LoadRealDataset("blobs3", 10, dir).status().code(),
            StatusCode::kInvalidArgument);
}

// FKC_REQUIRE_REAL_DATA turns the simulator fallback into a hard error: a
// run that is supposed to report real-data numbers must not silently
// measure the statistical stand-in. "0"/unset keep the (warning) fallback.
TEST(RegistryTest, RequireRealDataForbidsSimulatorFallback) {
  const std::string dir = ::testing::TempDir() + "fkc_require_real";
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  std::remove((dir + "/higgs.csv").c_str());  // stale copy from a prior run
  setenv("FKC_DATA_DIR", dir.c_str(), /*overwrite=*/1);
  setenv("FKC_REQUIRE_REAL_DATA", "1", /*overwrite=*/1);

  auto missing = MakeDataset("higgs", 20);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error must name the knob and the probed location so the log line
  // alone tells the operator what to fix.
  EXPECT_NE(missing.status().ToString().find("FKC_REQUIRE_REAL_DATA"),
            std::string::npos);
  EXPECT_NE(missing.status().ToString().find(dir), std::string::npos);

  // Synthetic families are unaffected: there is no real file to require.
  EXPECT_TRUE(MakeDataset("blobs3", 20).ok());

  // A prepared file satisfies the requirement.
  {
    std::ofstream csv(dir + "/higgs.csv");
    csv << "1.0,2.0,3.0,4.0,5.0,6.0,7.0,0\n"
        << "7.0,6.0,5.0,4.0,3.0,2.0,1.0,1\n";
  }
  EXPECT_TRUE(MakeDataset("higgs", 6).ok());

  setenv("FKC_REQUIRE_REAL_DATA", "0", /*overwrite=*/1);
  setenv("FKC_DATA_DIR", (dir + "/nonexistent").c_str(), /*overwrite=*/1);
  EXPECT_TRUE(MakeDataset("higgs", 6).ok());  // "0" keeps the fallback

  unsetenv("FKC_REQUIRE_REAL_DATA");
  unsetenv("FKC_DATA_DIR");
}

// The checked-in ~2k-row sample (datasets/ci_sample, see its README) keeps
// the real-CSV ingest path exercised in CI without the download script: the
// same LoadRealDataset entry the full-size prepared files go through.
TEST(RegistryTest, CheckedInCiSampleLoadsThroughRealCsvPath) {
#ifndef FKC_CI_SAMPLE_DIR
  GTEST_SKIP() << "FKC_CI_SAMPLE_DIR not configured";
#else
  auto sample = datasets::LoadRealDataset("higgs", 2500, FKC_CI_SAMPLE_DIR);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  ASSERT_EQ(sample.value().points.size(), 2500u);  // 2000 rows cycled
  EXPECT_EQ(sample.value().ell, 2);
  std::set<int> colors;
  for (const Point& p : sample.value().points) {
    ASSERT_EQ(p.dimension(), 7u);
    colors.insert(p.color);
  }
  EXPECT_EQ(colors.size(), 2u);
  // Cycling semantics: row 2000 repeats row 0.
  EXPECT_EQ(sample.value().points[2000].coords,
            sample.value().points[0].coords);
#endif
}

TEST(RegistryTest, StreamWrapsCycling) {
  auto dataset = MakeDataset("higgs", 10);
  ASSERT_TRUE(dataset.ok());
  auto stream = datasets::MakeStream(std::move(dataset).value());
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(stream->Next().has_value());
  }
}

}  // namespace
}  // namespace fkc
