// Tests for src/matroid: the color constraint, all matroid implementations
// (axioms included), maximal independent sets, and matroid intersection.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "matching/bipartite_graph.h"
#include "matroid/color_constraint.h"
#include "matroid/matroid.h"
#include "matroid/matroid_intersection.h"
#include "matroid/partition_matroid.h"
#include "matroid/transversal.h"
#include "matroid/uniform_matroid.h"

namespace fkc {
namespace {

Point P(double x, int color) { return Point({x}, color); }

TEST(ColorConstraintTest, BasicAccessors) {
  const ColorConstraint constraint({2, 0, 3});
  EXPECT_EQ(constraint.ell(), 3);
  EXPECT_EQ(constraint.TotalK(), 5);
  EXPECT_EQ(constraint.cap(0), 2);
  EXPECT_EQ(constraint.cap(1), 0);
}

TEST(ColorConstraintTest, UniformFactory) {
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 3);
  EXPECT_EQ(constraint.ell(), 7);
  EXPECT_EQ(constraint.TotalK(), 21);
}

TEST(ColorConstraintTest, FeasibilityChecksCapsAndRange) {
  const ColorConstraint constraint({1, 2});
  EXPECT_TRUE(constraint.IsFeasible({}));
  EXPECT_TRUE(constraint.IsFeasible({P(0, 0), P(1, 1), P(2, 1)}));
  EXPECT_FALSE(constraint.IsFeasible({P(0, 0), P(1, 0)}));  // cap 0 exceeded
  EXPECT_FALSE(constraint.IsFeasible({P(0, 2)}));           // color range
  EXPECT_FALSE(constraint.IsFeasible({P(0, -1)}));
}

TEST(ColorConstraintTest, ProportionalMatchesFrequencies) {
  // 80 points of color 0, 20 of color 1; total_k = 10 -> caps 8 and 2.
  std::vector<Point> points;
  for (int i = 0; i < 80; ++i) points.push_back(P(i, 0));
  for (int i = 0; i < 20; ++i) points.push_back(P(i, 1));
  const ColorConstraint constraint =
      ColorConstraint::Proportional(points, 2, 10);
  EXPECT_EQ(constraint.TotalK(), 10);
  EXPECT_EQ(constraint.cap(0), 8);
  EXPECT_EQ(constraint.cap(1), 2);
}

TEST(ColorConstraintTest, ProportionalGuaranteesOccurringColors) {
  // A very rare color still gets one slot when the budget allows.
  std::vector<Point> points;
  for (int i = 0; i < 1000; ++i) points.push_back(P(i, 0));
  points.push_back(P(-1, 1));
  const ColorConstraint constraint =
      ColorConstraint::Proportional(points, 2, 14);
  EXPECT_EQ(constraint.TotalK(), 14);
  EXPECT_GE(constraint.cap(1), 1);
}

TEST(ColorConstraintTest, ProportionalPaperSetup) {
  // The paper's configuration: sum k_i = 14 over 7 colors, proportional.
  Rng rng(3);
  std::vector<Point> points;
  for (int i = 0; i < 7000; ++i) {
    points.push_back(P(i, static_cast<int>(rng.NextBounded(7))));
  }
  const ColorConstraint constraint =
      ColorConstraint::Proportional(points, 7, 14);
  EXPECT_EQ(constraint.TotalK(), 14);
  // Balanced colors: each gets k_i = 2 >= 2 centers (the paper chose 14 so
  // that balanced proportions allow at least two centers per color).
  for (int c = 0; c < 7; ++c) EXPECT_EQ(constraint.cap(c), 2);
}

TEST(ColorConstraintTest, CountColorsIgnoresOutOfRange) {
  const ColorConstraint constraint({1, 1});
  const auto counts = constraint.CountColors({P(0, 0), P(1, 0), P(2, 7)});
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 0);
}

TEST(UniformMatroidTest, IndependenceBySize) {
  const UniformMatroid matroid(2, 5);
  EXPECT_TRUE(matroid.IsIndependent({}));
  EXPECT_TRUE(matroid.IsIndependent({0, 4}));
  EXPECT_FALSE(matroid.IsIndependent({0, 1, 2}));
  EXPECT_EQ(matroid.Rank(), 2);
  EXPECT_TRUE(matroid.CanAdd({0}, 1));
  EXPECT_FALSE(matroid.CanAdd({0, 1}, 2));
}

TEST(UniformMatroidTest, SatisfiesAxioms) {
  EXPECT_TRUE(CheckMatroidAxioms(UniformMatroid(3, 6)));
  EXPECT_TRUE(CheckMatroidAxioms(UniformMatroid(0, 4)));
  EXPECT_TRUE(CheckMatroidAxioms(UniformMatroid(4, 4)));
}

TEST(PartitionMatroidTest, IndependencePerColor) {
  // Elements 0,1,2 color 0; elements 3,4 color 1; caps {2, 1}.
  const PartitionMatroid matroid({0, 0, 0, 1, 1}, ColorConstraint({2, 1}));
  EXPECT_TRUE(matroid.IsIndependent({0, 1, 3}));
  EXPECT_FALSE(matroid.IsIndependent({0, 1, 2}));
  EXPECT_FALSE(matroid.IsIndependent({3, 4}));
  EXPECT_EQ(matroid.Rank(), 3);
  EXPECT_TRUE(matroid.CanAdd({0}, 1));
  EXPECT_FALSE(matroid.CanAdd({0, 1}, 2));
}

TEST(PartitionMatroidTest, RankSaturatesByAvailability) {
  // Caps allow 5 of color 0 but only 2 elements exist.
  const PartitionMatroid matroid({0, 0, 1}, ColorConstraint({5, 1}));
  EXPECT_EQ(matroid.Rank(), 3);
}

TEST(PartitionMatroidTest, SatisfiesAxioms) {
  EXPECT_TRUE(CheckMatroidAxioms(
      PartitionMatroid({0, 0, 1, 1, 2}, ColorConstraint({1, 2, 1}))));
  EXPECT_TRUE(CheckMatroidAxioms(
      PartitionMatroid({0, 1, 0, 1}, ColorConstraint({2, 2}))));
}

TEST(PartitionMatroidTest, OverPointsUsesColors) {
  std::vector<Point> points = {P(0, 0), P(1, 1), P(2, 1)};
  const PartitionMatroid matroid =
      PartitionMatroid::OverPoints(points, ColorConstraint({1, 1}));
  EXPECT_TRUE(matroid.IsIndependent({0, 1}));
  EXPECT_FALSE(matroid.IsIndependent({1, 2}));
}

TEST(TransversalMatroidTest, IndependenceByMatchability) {
  // Left 0 -> {0}, left 1 -> {0}, left 2 -> {1}: {0,1} collide on right 0.
  BipartiteGraph graph(3, 2);
  graph.AddEdge(0, 0);
  graph.AddEdge(1, 0);
  graph.AddEdge(2, 1);
  const TransversalMatroid matroid(std::move(graph));
  EXPECT_TRUE(matroid.IsIndependent({0, 2}));
  EXPECT_TRUE(matroid.IsIndependent({1, 2}));
  EXPECT_FALSE(matroid.IsIndependent({0, 1}));
  EXPECT_EQ(matroid.Rank(), 2);
}

TEST(TransversalMatroidTest, SatisfiesAxioms) {
  BipartiteGraph graph(4, 3);
  graph.AddEdge(0, 0);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 1);
  graph.AddEdge(2, 1);
  graph.AddEdge(2, 2);
  graph.AddEdge(3, 0);
  EXPECT_TRUE(CheckMatroidAxioms(TransversalMatroid(std::move(graph))));
}

TEST(MaximalIndependentSubsetTest, GreedyRespectsOrderAndSeed) {
  const PartitionMatroid matroid({0, 0, 1}, ColorConstraint({1, 1}));
  // Scanning 0,1,2: takes 0 (color 0), skips 1 (cap hit), takes 2.
  const auto result = MaximalIndependentSubset(matroid, {0, 1, 2});
  EXPECT_EQ(result, (std::vector<int>{0, 2}));
  // Seeded with 1: 0 is blocked, 2 joins.
  const auto seeded = MaximalIndependentSubset(matroid, {0, 1, 2}, {1});
  EXPECT_EQ(seeded, (std::vector<int>{1, 2}));
}

TEST(MatroidIntersectionTest, TwoPartitionMatroidsModelMatching) {
  // Bipartite matching as matroid intersection: elements are edges of
  // K_{2,2} minus one edge; M1 partitions by left vertex, M2 by right.
  // Edges: 0=(L0,R0), 1=(L0,R1), 2=(L1,R0).
  const PartitionMatroid by_left({0, 0, 1}, ColorConstraint({1, 1}));
  const PartitionMatroid by_right({0, 1, 0}, ColorConstraint({1, 1}));
  const auto common = MaxCommonIndependentSet(by_left, by_right);
  EXPECT_EQ(common.size(), 2u);  // perfect matching exists: edges 1 and 2
  EXPECT_TRUE(by_left.IsIndependent(common));
  EXPECT_TRUE(by_right.IsIndependent(common));
}

TEST(MatroidIntersectionTest, UniformCapsTheSize) {
  const UniformMatroid m1(2, 6);
  const UniformMatroid m2(4, 6);
  EXPECT_EQ(MaxCommonIndependentSet(m1, m2).size(), 2u);
}

TEST(MatroidIntersectionTest, RequiresAugmentingPathsBeyondGreedy) {
  // Constructed so that a naive greedy (scan order) gets stuck at size 2 and
  // only an augmenting path reaches the optimum of 3.
  // M1 partitions {0,1},{2,3},{4,5} with caps 1; M2 partitions {1,2},{3,4},
  // {5,0} with caps 1. Optimum picks one per part in both: e.g. {0, 2, 4}?
  // 0 -> part0/M1, part2/M2; 2 -> part1/M1, part1/M2; 4 -> part2/M1,
  // part1/M2 — conflict; {1, 3, 5} works: M1 parts 0,1,2; M2 parts 0,1,2.
  const PartitionMatroid m1({0, 0, 1, 1, 2, 2}, ColorConstraint({1, 1, 1}));
  const PartitionMatroid m2({2, 0, 0, 1, 1, 2}, ColorConstraint({1, 1, 1}));
  const auto common = MaxCommonIndependentSet(m1, m2);
  EXPECT_EQ(common.size(), 3u);
  EXPECT_TRUE(m1.IsIndependent(common));
  EXPECT_TRUE(m2.IsIndependent(common));
}

TEST(MatroidIntersectionTest, EmptyGroundSet) {
  const UniformMatroid m1(2, 0), m2(2, 0);
  EXPECT_TRUE(MaxCommonIndependentSet(m1, m2).empty());
}

TEST(MatroidIntersectionTest, HasCommonIndependentSetOfSize) {
  const UniformMatroid m1(3, 5), m2(2, 5);
  EXPECT_TRUE(HasCommonIndependentSetOfSize(m1, m2, 2));
  EXPECT_FALSE(HasCommonIndependentSetOfSize(m1, m2, 3));
}

// Randomized cross-check: intersection of two random partition matroids must
// match the optimum found by exhaustive search.
class MatroidIntersectionRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MatroidIntersectionRandomTest, MatchesExhaustiveOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 8;
  std::vector<int> colors1(n), colors2(n);
  for (int i = 0; i < n; ++i) {
    colors1[i] = static_cast<int>(rng.NextBounded(3));
    colors2[i] = static_cast<int>(rng.NextBounded(3));
  }
  std::vector<int> caps1(3), caps2(3);
  for (int c = 0; c < 3; ++c) {
    caps1[c] = static_cast<int>(rng.NextBounded(3));
    caps2[c] = static_cast<int>(rng.NextBounded(3));
  }
  const PartitionMatroid m1(colors1, ColorConstraint(caps1));
  const PartitionMatroid m2(colors2, ColorConstraint(caps2));

  size_t best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    if (m1.IsIndependent(subset) && m2.IsIndependent(subset)) {
      best = std::max(best, subset.size());
    }
  }
  EXPECT_EQ(MaxCommonIndependentSet(m1, m2).size(), best)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatroidIntersectionRandomTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace fkc
