// Tests for the geometric guess ladder: exponent arithmetic, boundary
// behaviour, and range construction as defined in Section 3 of the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/guess_ladder.h"

namespace fkc {
namespace {

TEST(GuessLadderTest, ValueIsPowerOfBase) {
  const GuessLadder ladder(2.0);  // base 3
  EXPECT_NEAR(ladder.Value(0), 1.0, 1e-12);
  EXPECT_NEAR(ladder.Value(2), 9.0, 1e-9);
  EXPECT_NEAR(ladder.Value(-1), 1.0 / 3.0, 1e-12);
}

TEST(GuessLadderTest, FloorExponentBrackets) {
  const GuessLadder ladder(2.0);
  EXPECT_EQ(ladder.FloorExponent(1.0), 0);
  EXPECT_EQ(ladder.FloorExponent(2.9), 0);
  EXPECT_EQ(ladder.FloorExponent(3.0), 1);
  EXPECT_EQ(ladder.FloorExponent(8.9), 1);
  EXPECT_EQ(ladder.FloorExponent(0.5), -1);
}

TEST(GuessLadderTest, CeilExponentBrackets) {
  const GuessLadder ladder(2.0);
  EXPECT_EQ(ladder.CeilExponent(1.0), 0);
  EXPECT_EQ(ladder.CeilExponent(1.1), 1);
  EXPECT_EQ(ladder.CeilExponent(3.0), 1);
  EXPECT_EQ(ladder.CeilExponent(3.1), 2);
}

TEST(GuessLadderTest, FloorCeilConsistentOnRandomValues) {
  // floor <= ceil, and value is bracketed by the corresponding guesses.
  for (double beta : {0.5, 1.0, 2.0, 3.0}) {
    const GuessLadder ladder(beta);
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
      const double v = std::exp(rng.NextUniform(-20, 20));
      const int floor_e = ladder.FloorExponent(v);
      const int ceil_e = ladder.CeilExponent(v);
      EXPECT_LE(ladder.Value(floor_e), v * (1 + 1e-12));
      EXPECT_GT(ladder.Value(floor_e + 1), v * (1 - 1e-12));
      EXPECT_GE(ladder.Value(ceil_e), v * (1 - 1e-12));
      EXPECT_LE(floor_e, ceil_e);
      EXPECT_LE(ceil_e - floor_e, 1);
    }
  }
}

TEST(GuessLadderTest, RangeCoversBounds) {
  const GuessLadder ladder(2.0);
  const auto range = ladder.Range(0.5, 100.0);
  ASSERT_FALSE(range.empty());
  // Smallest guess <= d_min, largest >= d_max (the paper's Gamma).
  EXPECT_LE(ladder.Value(range.front()), 0.5 + 1e-12);
  EXPECT_GE(ladder.Value(range.back()), 100.0 - 1e-9);
  // Contiguous exponents.
  for (size_t i = 1; i < range.size(); ++i) {
    EXPECT_EQ(range[i], range[i - 1] + 1);
  }
}

TEST(GuessLadderTest, RangeSizeMatchesLogDelta) {
  // |Gamma| = O(log Delta / log(1+beta)): for Delta = 3^10 and beta = 2 the
  // ladder has ~11 guesses.
  const GuessLadder ladder(2.0);
  const double d_min = 1.0;
  const double d_max = std::pow(3.0, 10);
  const auto range = ladder.Range(d_min, d_max);
  EXPECT_GE(range.size(), 11u);
  EXPECT_LE(range.size(), 12u);
}

TEST(GuessLadderTest, DegenerateRangeSinglePoint) {
  const GuessLadder ladder(2.0);
  const auto range = ladder.Range(5.0, 5.0);
  ASSERT_FALSE(range.empty());
  EXPECT_LE(ladder.Value(range.front()), 5.0 + 1e-12);
  EXPECT_GE(ladder.Value(range.back()), 5.0 - 1e-12);
}

TEST(GuessLadderTest, SmallBetaGivesDenseLadder) {
  const GuessLadder fine(0.1);
  const GuessLadder coarse(2.0);
  EXPECT_GT(fine.Range(1.0, 1000.0).size(),
            coarse.Range(1.0, 1000.0).size() * 5);
}

}  // namespace
}  // namespace fkc
