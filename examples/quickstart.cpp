// Quickstart: the smallest end-to-end use of the library.
//
// Streams colored 2-d points through a sliding window and periodically asks
// for a fair center set: at most k_i centers of each color i, covering every
// point of the current window with minimal radius.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"

int main() {
  // 1. The fairness constraint: two demographic groups, at most 2 centers
  //    from group 0 and at most 1 from group 1.
  const fkc::ColorConstraint constraint({2, 1});

  // 2. The metric space and the sequential solver used on query coresets
  //    (Jones et al. 2020, the best known 3-approximation).
  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter solver;

  // 3. The sliding window. adaptive_range means the algorithm estimates the
  //    distance scales of the data by itself (the "OursOblivious" variant of
  //    the paper) — nothing about the stream needs to be known up front.
  //    num_threads = 0 lets the ladder update engine fan the per-guess
  //    structures out over every hardware thread; results are bit-identical
  //    to a single-threaded run.
  fkc::SlidingWindowOptions options;
  options.window_size = 1000;  // queries answer for the last 1000 points
  options.delta = 1.0;         // coreset precision (smaller = more accurate)
  options.adaptive_range = true;
  options.num_threads = 0;
  fkc::FairCenterSlidingWindow window(options, constraint, &metric, &solver);

  // 4. Stream synthetic data: three drifting Gaussian clusters whose points
  //    belong to group 0 with probability 0.7. Arrivals are delivered in
  //    batches of 100 — UpdateBatch is equivalent to 100 Update calls but
  //    lets the engine amortize its parallel fan-out.
  fkc::Rng rng(42);
  std::vector<fkc::Point> batch;
  for (int t = 1; t <= 5000; ++t) {
    const double cluster = static_cast<double>(rng.NextBounded(3)) * 50.0;
    const double drift = t * 0.01;  // slow concept drift
    fkc::Coordinates coords = {cluster + drift + rng.NextGaussian(0, 1.0),
                               cluster - drift + rng.NextGaussian(0, 1.0)};
    const int group = rng.NextBernoulli(0.7) ? 0 : 1;
    batch.push_back(fkc::Point(std::move(coords), group));
    if (batch.size() == 100) {
      window.UpdateBatch(std::move(batch));
      batch.clear();
    }

    // 5. Query every 1000 arrivals. The query cost is independent of the
    //    window size: the sequential solver only ever sees a small coreset.
    if (t % 1000 == 0) {
      fkc::QueryStats stats;
      auto solution = window.Query(&stats);
      if (!solution.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     solution.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "t=%5d  radius=%7.3f  centers=%zu  coreset=%lld points  "
          "memory=%lld points (window holds %lld)\n",
          t, solution.value().radius, solution.value().centers.size(),
          static_cast<long long>(stats.coreset_size),
          static_cast<long long>(window.Memory().TotalPoints()),
          static_cast<long long>(window.WindowPopulation()));
      for (const fkc::Point& center : solution.value().centers) {
        std::printf("    center %s\n", center.ToString().c_str());
      }
    }
  }
  return 0;
}
