// Multi-tenant serving: one process keeping an independent fair-center
// sliding window per tenant, served through the ShardManager front-end.
//
// A fleet of tenants (think: one sensor deployment per customer) streams
// readings tagged with a tenant key. The manager routes every arrival to its
// tenant's shard, fans ingest batches and query rounds out over a shared
// thread pool, and checkpoints the whole fleet into one blob. The example
// demonstrates the full serving lifecycle:
//
//   1. register a per-tenant options override (one tenant runs a smaller
//      window than the fleet template), then route + ingest a keyed
//      stream across N tenants,
//   2. serve a QueryAll fan-out (one fair summary per tenant),
//   3. kill/restore: checkpoint every shard, rebuild the manager from the
//      blob, and verify the restored fleet answers identically,
//   4. keep ingesting into the restored fleet (business as usual),
//   5. spill idle tenants with EvictIdle and watch a spilled tenant answer
//      anyway (ephemeral in QueryAll, transparently rehydrated on Query),
//   6. replicate incrementally: a follower restored from the step-3 blob
//      catches up to the leader by applying one CheckpointDelta — a small
//      fraction of the full blob — and answers identically,
//   7. go durable and hands-off: a fleet whose evicted shards spill to
//      disk (FileSpillStore), with the background maintenance thread
//      running the eviction sweep, DeltaLog capture, and spill GC on a
//      cadence — then replay the log and verify the replayed fleet
//      answers identically,
//   8. serve concurrent clients: one ingest thread per tenant plus a
//      dashboard thread running QueryAll rounds, all against one manager
//      at once (striped routing + per-shard locking mean the tenants
//      never contend with each other and the dashboard never stalls
//      ingest) — then verify the concurrently-built fleet checkpoints
//      byte-identically to a serially-built one. --stripes picks the
//      routing-stripe count (0 = auto-size to the hardware); like
//      --threads it is an execution knob — answers and checkpoint bytes
//      are identical at every value,
//   9. survive a SIGKILL: the leader captures every tranche into a
//      crash-safe ReplicatedLog while a LogSender streams it over a unix
//      socket to a fault-injected follower (frames dropped, corrupted,
//      and truncated on a seeded schedule) that still converges to a
//      byte-equal checkpoint — then the leader "dies" and a fresh process
//      image reconstructs the whole fleet purely from the on-disk log.
//
// The replication phase doubles as the CI kill-and-recover smoke:
// --replication_only runs phase 9 alone (slowly, so a SIGKILL lands
// mid-stream) against --replication_log_dir, and --recover_only restarts
// from whatever that kill left on disk — torn tail included — and
// verifies the recovered fleet.
//
//   multi_tenant_serving [--tenants=4] [--threads=0] [--stripes=0]
//                        [--batch=32] [--window=1000] [--points=12000]
//                        [--spill_dir=<tmp>] [--replication_log_dir=<tmp>]
//                        [--replication_only] [--recover_only]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "datasets/phones_sim.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/delta_log.h"
#include "serving/replication/fault_injector.h"
#include "serving/replication/replicated_log.h"
#include "serving/replication/transport.h"
#include "serving/shard_manager.h"
#include "serving/spill_store.h"

namespace {

bool SameSolution(const fkc::ObjectiveSolution& a,
                  const fkc::ObjectiveSolution& b) {
  if (a.value != b.value || a.centers.size() != b.centers.size()) {
    return false;
  }
  for (size_t i = 0; i < a.centers.size(); ++i) {
    if (a.centers[i].coords != b.centers[i].coords ||
        a.centers[i].color != b.centers[i].color) {
      return false;
    }
  }
  return true;
}

void PrintAnswers(const std::vector<fkc::serving::ShardAnswer>& answers) {
  for (const auto& answer : answers) {
    if (!answer.solution.ok()) {
      std::printf("  %-10s <error: %s>\n", answer.key.c_str(),
                  answer.solution.status().ToString().c_str());
      continue;
    }
    std::printf("  %-10s value=%8.3f centers=%2zu coreset=%3lld guess=%.3f\n",
                answer.key.c_str(), answer.solution.value().value,
                answer.solution.value().centers.size(),
                static_cast<long long>(answer.stats.coreset_size),
                answer.stats.guess);
  }
}

bool SameAnswers(const std::vector<fkc::serving::ShardAnswer>& a,
                 const std::vector<fkc::serving::ShardAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].solution.ok() != b[i].solution.ok() ||
        (a[i].solution.ok() &&
         !SameSolution(a[i].solution.value(), b[i].solution.value()))) {
      return false;
    }
  }
  return true;
}

// --recover_only: the restarted leader. Everything it knows comes from the
// log directory the kill left behind — possibly with a torn tail, which
// recovery truncates back to the last intact capture.
int RunRecovery(const std::string& log_dir, const fkc::EuclideanMetric& metric,
                const fkc::JonesFairCenter& jones, int num_threads) {
  fkc::serving::ReplicatedLog log(log_dir);
  auto opened = log.Open();
  if (!opened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", opened.ToString().c_str());
    return 1;
  }
  const auto stats = log.recovery_stats();
  std::printf("recovered log: generation %lld, %lld entries (%lld torn "
              "segments truncated, %lld stale files swept)\n",
              static_cast<long long>(log.generation()),
              static_cast<long long>(stats.recovered_entries),
              static_cast<long long>(stats.truncated_segments),
              static_cast<long long>(stats.swept_files));
  if (!log.has_base()) {
    std::fprintf(stderr, "nothing to recover: the log has no base\n");
    return 1;
  }
  auto replayed = log.Replay(&metric, &jones, num_threads);
  if (!replayed.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  std::printf("replayed fleet (%zu shards):\n", replayed.value().shard_count());
  PrintAnswers(replayed.value().QueryAll());
  // Replay is deterministic: a second replay must checkpoint byte-equal.
  auto again = log.Replay(&metric, &jones, num_threads);
  auto first_blob = replayed.value().CheckpointAll();
  auto second_blob = again.ok() ? again.value().CheckpointAll()
                                : fkc::Result<std::string>(again.status());
  const bool deterministic = first_blob.ok() && second_blob.ok() &&
                             first_blob.value() == second_blob.value();
  std::printf("recovered checkpoint: %zu bytes; independent replay %s\n",
              first_blob.ok() ? first_blob.value().size() : size_t{0},
              deterministic ? "MATCHES" : "DIFFERS (bug!)");
  return deterministic ? 0 : 1;
}

// Phase 9 (and, with endless=true, the --replication_only kill target):
// crash-safe captures + wire replication to a fault-injected follower.
int RunReplicationPhase(const std::string& log_dir,
                        const fkc::EuclideanMetric& metric,
                        const fkc::JonesFairCenter& jones,
                        const fkc::ColorConstraint& constraint,
                        const fkc::serving::ShardManagerOptions& options,
                        const std::vector<fkc::Point>& trace,
                        const std::vector<std::string>& keys, int64_t batch,
                        bool endless) {
  namespace srv = fkc::serving;
  std::error_code cleanup;
  std::filesystem::remove_all(log_dir, cleanup);  // fresh leader log

  srv::ShardManager leader(options, constraint, &metric, &jones);
  srv::ReplicatedLog log(log_dir);
  auto opened = log.Open();
  if (!opened.ok()) {
    std::fprintf(stderr, "log open failed: %s\n", opened.ToString().c_str());
    return 1;
  }

  // The follower's link misbehaves on a seeded, budget-bounded schedule:
  // once the budget is spent every frame delivers, so convergence is
  // guaranteed, not lucky.
  srv::FaultInjector::Options fault_options;
  fault_options.seed = 2024;
  fault_options.drop_prob = 0.3;
  fault_options.corrupt_prob = 0.2;
  fault_options.truncate_prob = 0.1;
  fault_options.max_faults = 8;
  srv::FaultInjector injector(fault_options);

  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       fkc::StrFormat("fkc_mts_%lld.sock",
                      static_cast<long long>(
                          std::chrono::steady_clock::now().time_since_epoch()
                              .count() %
                          1000000)))
          .string();
  srv::LogSender::Options sender_options;
  sender_options.unix_socket_path = socket_path;
  sender_options.heartbeat_interval = std::chrono::milliseconds(20);
  sender_options.fault_injector = &injector;
  srv::LogSender sender(&log, sender_options);
  auto sender_started = sender.Start();
  if (!sender_started.ok()) {
    std::fprintf(stderr, "sender start failed: %s\n",
                 sender_started.ToString().c_str());
    return 1;
  }
  srv::LogReceiver::Options receiver_options;
  receiver_options.unix_socket_path = socket_path;
  receiver_options.receive_timeout = std::chrono::milliseconds(500);
  receiver_options.initial_backoff = std::chrono::milliseconds(5);
  receiver_options.max_backoff = std::chrono::milliseconds(100);
  srv::LogReceiver receiver(&metric, &jones, receiver_options);
  auto receiver_started = receiver.Start();
  if (!receiver_started.ok()) {
    std::fprintf(stderr, "receiver start failed: %s\n",
                 receiver_started.ToString().c_str());
    return 1;
  }

  // Stream in tranches, capturing after each. In --replication_only mode
  // the tranches are slowed down so an external SIGKILL reliably lands
  // mid-stream (the CI smoke polls for the MANIFEST, then kills).
  const int64_t tranches = endless ? 200 : 6;
  const int64_t tranche_points =
      std::max<int64_t>(static_cast<int64_t>(trace.size()) / 6, 1);
  std::vector<srv::KeyedPoint> pending;
  for (int64_t tranche = 0; tranche < tranches; ++tranche) {
    for (int64_t i = 0; i < tranche_points; ++i) {
      const size_t t = static_cast<size_t>(
          (tranche * tranche_points + i) % static_cast<int64_t>(trace.size()));
      pending.push_back({keys[t % keys.size()], trace[t]});
      if (static_cast<int64_t>(pending.size()) >= batch) {
        auto ingest_status = leader.IngestBatch(std::move(pending));
        pending = {};
        if (!ingest_status.ok()) {
          std::fprintf(stderr, "ingest failed: %s\n",
                       ingest_status.ToString().c_str());
          return 1;
        }
      }
    }
    if (!pending.empty()) {
      auto ingest_status = leader.IngestBatch(std::move(pending));
      pending = {};
      if (!ingest_status.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     ingest_status.ToString().c_str());
        return 1;
      }
    }
    auto captured = log.Capture(&leader);
    if (!captured.ok()) {
      std::fprintf(stderr, "capture failed: %s\n",
                   captured.status().ToString().c_str());
      return 1;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(endless ? 50 : 5));
  }

  // Wait for the follower to drain the chain despite the fault schedule.
  const int64_t want_entries = 1 + static_cast<int64_t>(log.chain_length());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  srv::LogReceiver::StalenessBound bound;
  do {
    bound = receiver.staleness();
    if (bound.has_fleet && bound.entries_behind == 0 &&
        bound.applied_entries == want_entries) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (std::chrono::steady_clock::now() < deadline);

  const auto counters = injector.counters();
  std::printf(
      "\nreplication: generation %lld, %zu chained deltas; follower applied "
      "%lld/%lld entries (staleness bound %lld), surviving %lld dropped + "
      "%lld corrupted + %lld truncated frames over %lld connects (%lld "
      "resyncs served)\n",
      static_cast<long long>(log.generation()), log.chain_length(),
      static_cast<long long>(bound.applied_entries),
      static_cast<long long>(want_entries),
      static_cast<long long>(bound.entries_behind),
      static_cast<long long>(counters.frames_dropped),
      static_cast<long long>(counters.frames_corrupted),
      static_cast<long long>(counters.frames_truncated),
      static_cast<long long>(receiver.stats().connects),
      static_cast<long long>(sender.stats().resyncs_served));
  if (bound.entries_behind != 0 || bound.applied_entries != want_entries) {
    std::fprintf(stderr, "follower never converged\n");
    return 1;
  }

  // Byte-equal convergence: both sides replay/checkpoint their own view.
  auto leader_fleet = log.Replay(&metric, &jones, options.num_threads);
  auto leader_blob = leader_fleet.ok()
                         ? leader_fleet.value().CheckpointAll()
                         : fkc::Result<std::string>(leader_fleet.status());
  auto follower_blob = receiver.CheckpointAll();
  const bool converged = leader_blob.ok() && follower_blob.ok() &&
                         leader_blob.value() == follower_blob.value();
  std::printf("follower checkpoint %s the leader's (%zu bytes)\n",
              converged ? "MATCHES" : "DIFFERS FROM (bug!)",
              leader_blob.ok() ? leader_blob.value().size() : size_t{0});
  receiver.Stop();
  sender.Stop();
  if (!converged) return 1;

  // Simulated SIGKILL: a second process image knows nothing but the
  // directory. Reconstruct and compare answers with the (still live
  // here, conveniently) leader.
  srv::ReplicatedLog risen(log_dir);
  if (!risen.Open().ok()) return 1;
  auto recovered = risen.Replay(&metric, &jones, options.num_threads);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery replay failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  const bool recovered_identical =
      SameAnswers(leader.QueryAll(), recovered.value().QueryAll());
  std::printf("fleet recovered from the on-disk log answers %s\n",
              recovered_identical ? "IDENTICALLY" : "DIFFERENTLY (bug!)");
  return recovered_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t tenants = 4;
  int64_t threads = 0;  // all hardware threads
  int64_t stripes = 0;  // auto-size the routing stripes
  int64_t batch = 32;
  int64_t window = 1000;
  int64_t points = 12000;
  std::string spill_dir;
  std::string replication_log_dir;
  std::string objective = "fair-center";
  bool replication_only = false;
  bool recover_only = false;

  fkc::FlagParser flags;
  flags.AddInt64("tenants", &tenants, "number of tenant shards");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("stripes", &stripes,
                 "routing stripes of the shard map (0 = auto; rounded up "
                 "to a power of two)");
  flags.AddInt64("batch", &batch, "keyed arrivals per IngestBatch");
  flags.AddInt64("window", &window, "per-tenant window size");
  flags.AddInt64("points", &points, "total arrivals across all tenants");
  flags.AddString("objective", &objective,
                  "fleet-default clustering objective: fair-center or "
                  "k-median (per-tenant overrides still apply)");
  flags.AddString("spill_dir", &spill_dir,
                  "directory for the durable-spill phase (default: a "
                  "fresh ./multi_tenant_spill, removed afterwards)");
  flags.AddString("replication_log_dir", &replication_log_dir,
                  "directory for the replication phase's crash-safe log "
                  "(default: a fresh ./multi_tenant_replog, removed "
                  "afterwards)");
  flags.AddBool("replication_only", &replication_only,
                "run only the replication phase, slowed down so an external "
                "SIGKILL lands mid-stream (the CI kill-and-recover smoke)");
  flags.AddBool("recover_only", &recover_only,
                "restart from --replication_log_dir: recover the log (torn "
                "tail included), replay, and verify — no ingest at all");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;

  // Delete only a directory this run invented — never a user-supplied
  // path, which may pre-exist and hold foreign files. (--recover_only
  // deletes nothing: its whole input is what the kill left behind.)
  const bool owns_replication_dir = replication_log_dir.empty();
  if (owns_replication_dir) replication_log_dir = "multi_tenant_replog";

  if (recover_only) {
    return RunRecovery(replication_log_dir, metric, jones,
                       fkc::ResolveThreadCount(threads));
  }

  fkc::datasets::PhonesSimOptions data_options;
  data_options.num_points = points;
  const std::vector<fkc::Point> trace =
      fkc::datasets::GeneratePhonesSim(data_options);
  const fkc::ColorConstraint constraint =
      fkc::ColorConstraint::Proportional(trace, data_options.ell, 14);

  fkc::serving::ShardManagerOptions options;
  auto objective_kind = fkc::ParseObjectiveTag(objective);
  if (!objective_kind.ok()) {
    std::fprintf(stderr, "%s\n",
                 objective_kind.status().ToString().c_str());
    return 1;
  }
  options.objective = objective_kind.value();
  options.window.window_size = window;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;  // tenant scales unknown a priori
  options.num_threads = fkc::ResolveThreadCount(threads);
  options.num_stripes = static_cast<int>(stripes);
  fkc::serving::ShardManager manager(options, constraint, &metric, &jones);

  std::vector<std::string> keys;
  for (int64_t s = 0; s < tenants; ++s) {
    keys.push_back(fkc::StrFormat("tenant-%02lld", static_cast<long long>(s)));
  }

  if (replication_only) {
    // The kill target: leave the log directory behind for --recover_only.
    return RunReplicationPhase(replication_log_dir, metric, jones, constraint,
                               options, trace, keys, batch, /*endless=*/true);
  }

  // --- 1. One tenant deviates from the fleet template: a quarter-size
  // window, registered before its first arrival and carried through every
  // checkpoint from here on. ---
  fkc::SlidingWindowOptions small = options.window;
  small.window_size = std::max<int64_t>(window / 4, 1);
  auto override_status = manager.SetTenantOptions(keys[0], small);
  if (!override_status.ok()) {
    std::fprintf(stderr, "override failed: %s\n",
                 override_status.ToString().c_str());
    return 1;
  }
  std::printf("override: %s runs window=%lld (fleet template %lld)\n\n",
              keys[0].c_str(), static_cast<long long>(small.window_size),
              static_cast<long long>(window));

  // The trace is generated clean, so a rejected arrival here is a bug in
  // the example itself — fail loudly instead of demoing an empty fleet.
  const auto must_ingest = [](const fkc::Status& ingest_status) {
    if (!ingest_status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingest_status.ToString().c_str());
      std::exit(1);
    }
  };

  // --- Route the keyed stream, batched. ---
  std::vector<fkc::serving::KeyedPoint> pending;
  const int64_t first_phase = points / 2;
  for (int64_t t = 0; t < first_phase; ++t) {
    pending.push_back({keys[t % keys.size()], trace[t]});
    if (static_cast<int64_t>(pending.size()) >= batch) {
      must_ingest(manager.IngestBatch(std::move(pending)));
      pending = {};
    }
  }
  must_ingest(manager.IngestBatch(std::move(pending)));
  pending = {};

  // --- 2. Serve a fan-out query round. ---
  std::printf("fleet after %lld arrivals over %zu tenants (%lld pts stored):\n",
              static_cast<long long>(first_phase), manager.shard_count(),
              static_cast<long long>(manager.TotalMemory().TotalPoints()));
  const auto before = manager.QueryAll();
  PrintAnswers(before);

  // --- 3. Kill/restore cycle. ---
  auto checkpoint = manager.CheckpointAll();
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n",
                 checkpoint.status().ToString().c_str());
    return 1;
  }
  const std::string blob = std::move(checkpoint).value();
  auto restored = fkc::serving::ShardManager::Restore(
      blob, &metric, &jones, options.num_threads);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  auto after = restored.value().QueryAll();
  bool identical = before.size() == after.size();
  for (size_t i = 0; identical && i < before.size(); ++i) {
    identical = before[i].key == after[i].key &&
                before[i].solution.ok() == after[i].solution.ok() &&
                (!before[i].solution.ok() ||
                 SameSolution(before[i].solution.value(),
                              after[i].solution.value()));
  }
  std::printf("\ncheckpoint: %zu bytes for %zu shards; restored fleet answers "
              "%s\n",
              blob.size(), restored.value().shard_count(),
              identical ? "IDENTICALLY" : "DIFFERENTLY (bug!)");
  if (!identical) return 1;

  // --- 4. Business as usual on the restored fleet. ---
  for (int64_t t = first_phase; t < points; ++t) {
    pending.push_back({keys[t % keys.size()], trace[t]});
    if (static_cast<int64_t>(pending.size()) >= batch) {
      must_ingest(restored.value().IngestBatch(std::move(pending)));
      pending = {};
    }
  }
  must_ingest(restored.value().IngestBatch(std::move(pending)));
  pending = {};
  std::printf("\nfleet after %lld more arrivals into the restored manager:\n",
              static_cast<long long>(points - first_phase));
  PrintAnswers(restored.value().QueryAll());

  // --- 5. Idle-tenant eviction: spill everything idle, then watch the
  // spilled fleet keep answering — QueryAll reads spilled shards
  // ephemerally, a targeted Query rehydrates in place. ---
  fkc::serving::ShardManager& leader = restored.value();
  const int64_t evicted = leader.EvictIdle(/*idle_ttl=*/0);
  std::printf("\nEvictIdle(0): spilled %lld of %zu shards (%zu live)\n",
              static_cast<long long>(evicted), leader.shard_count(),
              leader.live_shard_count());
  PrintAnswers(leader.QueryAll());  // ephemeral: spilled shards stay spilled
  // A targeted Query on a spilled tenant rehydrates it in place (the const
  // accessor never rehydrates, so it doubles as a residency probe).
  const fkc::serving::ShardManager& probe = leader;
  std::string spilled_key = keys[0];
  for (const auto& key : keys) {
    if (probe.shard(key) == nullptr) {
      spilled_key = key;
      break;
    }
  }
  fkc::QueryStats stats;
  auto touched = leader.Query(spilled_key, &stats);
  std::printf("Query(%s) rehydrated its shard: %zu live, value=%.3f\n",
              spilled_key.c_str(), leader.live_shard_count(),
              touched.ok() ? touched.value().value : -1.0);

  // --- 6. Incremental replication: the follower (restored from the same
  // step-3 blob) missed the second half of the stream; one delta carries
  // exactly the dirty shards. ---
  auto follower = fkc::serving::ShardManager::Restore(
      blob, &metric, &jones, options.num_threads);
  if (!follower.ok()) {
    std::fprintf(stderr, "follower restore failed: %s\n",
                 follower.status().ToString().c_str());
    return 1;
  }
  auto compare = [&](const char* label, size_t dirty,
                     const std::string& delta) {
    auto applied = follower.value().ApplyDelta(delta);
    if (!applied.ok()) {
      std::fprintf(stderr, "ApplyDelta failed: %s\n",
                   applied.ToString().c_str());
      return false;
    }
    const auto leader_answers = leader.QueryAll();
    const auto follower_answers = follower.value().QueryAll();
    bool caught_up = leader_answers.size() == follower_answers.size();
    for (size_t i = 0; caught_up && i < leader_answers.size(); ++i) {
      caught_up = leader_answers[i].key == follower_answers[i].key &&
                  leader_answers[i].solution.ok() ==
                      follower_answers[i].solution.ok() &&
                  (!leader_answers[i].solution.ok() ||
                   SameSolution(leader_answers[i].solution.value(),
                                follower_answers[i].solution.value()));
    }
    std::printf("%s: %zu-byte delta (%zu dirty shards) vs %zu-byte full "
                "blob; follower answers %s\n",
                label, delta.size(), dirty, blob.size(),
                caught_up ? "IDENTICALLY" : "DIFFERENTLY (bug!)");
    return caught_up;
  };

  // First delta: every tenant took phase-4 arrivals, so it carries the
  // whole fleet. Steady state is different: only one tenant moves before
  // the second delta, which therefore ships one shard.
  std::printf("\n");
  const auto must_delta = [](fkc::Result<std::string> delta) {
    if (!delta.ok()) {
      std::fprintf(stderr, "CheckpointDelta failed: %s\n",
                   delta.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(delta).value();
  };
  size_t dirty = leader.dirty_shard_count();
  std::string delta = must_delta(leader.CheckpointDelta());
  if (!compare("catch-up delta", dirty, delta)) return 1;
  for (int64_t t = 0; t < window / 4; ++t) {
    must_ingest(leader.Ingest(keys[0], trace[static_cast<size_t>(t)]));
  }
  dirty = leader.dirty_shard_count();
  delta = must_delta(leader.CheckpointDelta());
  if (!compare("steady-state delta", dirty, delta)) return 1;

  // --- 7. Durable and hands-off: evicted shards spill to disk, and the
  // background maintenance thread does the sweeping, DeltaLog capture, and
  // spill GC — no maintenance calls in the ingest loop at all. ---
  // Delete only a directory this run invented — never a user-supplied
  // --spill_dir, which may pre-exist and hold foreign files.
  const bool owns_spill_dir = spill_dir.empty();
  if (owns_spill_dir) spill_dir = "multi_tenant_spill";
  fkc::serving::ShardManagerOptions durable_options = options;
  durable_options.max_live_shards = std::max<int64_t>(tenants / 2, 1);
  durable_options.spill_store =
      std::make_shared<fkc::serving::FileSpillStore>(spill_dir);
  fkc::serving::ShardManager durable(durable_options, constraint, &metric,
                                     &jones);
  fkc::serving::DeltaLog log;

  fkc::serving::MaintenanceOptions maintenance;
  maintenance.cadence = std::chrono::milliseconds(5);
  maintenance.idle_ttl = window;  // spill tenants idle for a full window
  maintenance.delta_log = &log;
  maintenance.gc_every = 4;
  auto started = durable.StartMaintenance(maintenance);
  if (!started.ok()) {
    std::fprintf(stderr, "StartMaintenance failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  for (int64_t t = 0; t < points; ++t) {
    pending.push_back({keys[t % keys.size()], trace[t]});
    if (static_cast<int64_t>(pending.size()) >= batch) {
      must_ingest(durable.IngestBatch(std::move(pending)));
      pending = {};
    }
  }
  must_ingest(durable.IngestBatch(std::move(pending)));
  pending = {};
  durable.StopMaintenance();
  // One final capture so the log reflects the last arrivals, then replay
  // the whole log and verify the replayed fleet answers identically.
  auto final_capture = log.Capture(&durable);
  if (!final_capture.ok()) {
    std::fprintf(stderr, "final capture failed: %s\n",
                 final_capture.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\ndurable fleet: %lld maintenance ticks, %lld evictions (%zu live / "
      "%zu spilled via '%s'), delta log: %zu B base + %lld B over %zu "
      "chained deltas, %lld rebases\n",
      static_cast<long long>(durable.maintenance_ticks()),
      static_cast<long long>(durable.evictions()),
      durable.live_shard_count(), durable.spilled_shard_count(),
      durable.spill_store()->Name(), log.base_bytes(),
      static_cast<long long>(log.chain_bytes()), log.chain_length(),
      static_cast<long long>(log.rebases()));
  auto replayed = log.Replay(&metric, &jones, options.num_threads);
  if (!replayed.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  const auto durable_answers = durable.QueryAll();
  const auto replayed_answers = replayed.value().QueryAll();
  bool replay_identical = durable_answers.size() == replayed_answers.size();
  for (size_t i = 0; replay_identical && i < durable_answers.size(); ++i) {
    replay_identical =
        durable_answers[i].key == replayed_answers[i].key &&
        durable_answers[i].solution.ok() ==
            replayed_answers[i].solution.ok() &&
        (!durable_answers[i].solution.ok() ||
         SameSolution(durable_answers[i].solution.value(),
                      replayed_answers[i].solution.value()));
  }
  std::printf("replayed fleet answers %s\n",
              replay_identical ? "IDENTICALLY" : "DIFFERENTLY (bug!)");
  if (owns_spill_dir) {
    std::error_code cleanup;  // best-effort
    std::filesystem::remove_all(spill_dir, cleanup);
  }
  if (!replay_identical) return 1;

  // --- 8. Concurrent clients: every tenant ingests from its own thread
  // while a dashboard thread runs fleet scans — no external locking, the
  // manager's per-shard locks carry it. Per-shard state depends only on
  // that tenant's own arrival order, so the result must checkpoint
  // byte-identically to a serially built fleet. ---
  fkc::serving::ShardManager live(options, constraint, &metric, &jones);
  std::atomic<bool> done{false};
  std::atomic<int64_t> scans{0};
  std::thread dashboard([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const auto& answer : live.QueryAll()) {
        if (!answer.solution.ok() &&
            answer.solution.status().code() != fkc::StatusCode::kNotFound) {
          std::fprintf(stderr, "dashboard: %s\n",
                       answer.solution.status().ToString().c_str());
          std::exit(1);
        }
      }
      scans.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> clients;
  for (size_t c = 0; c < keys.size(); ++c) {
    clients.emplace_back([&, c] {
      std::vector<fkc::serving::KeyedPoint> chunk;
      for (int64_t t = static_cast<int64_t>(c); t < points;
           t += static_cast<int64_t>(keys.size())) {
        chunk.push_back({keys[c], trace[static_cast<size_t>(t)]});
        if (static_cast<int64_t>(chunk.size()) >= batch) {
          must_ingest(live.IngestBatch(std::move(chunk)));
          chunk = {};
        }
      }
      must_ingest(live.IngestBatch(std::move(chunk)));
    });
  }
  for (auto& client : clients) client.join();
  done.store(true, std::memory_order_relaxed);
  dashboard.join();

  fkc::serving::ShardManager serial(options, constraint, &metric, &jones);
  for (size_t c = 0; c < keys.size(); ++c) {
    for (int64_t t = static_cast<int64_t>(c); t < points;
         t += static_cast<int64_t>(keys.size())) {
      must_ingest(serial.Ingest(keys[c], trace[static_cast<size_t>(t)]));
    }
  }
  auto live_blob = live.CheckpointAll();
  auto serial_blob = serial.CheckpointAll();
  const bool concurrent_identical = live_blob.ok() && serial_blob.ok() &&
                                    live_blob.value() == serial_blob.value();
  std::printf(
      "\nconcurrent serving: %zu client threads + %lld dashboard scans "
      "against one manager (%d routing stripes); checkpoint %s a serially "
      "built fleet's\n",
      keys.size(), static_cast<long long>(scans.load()), live.num_stripes(),
      concurrent_identical ? "MATCHES" : "DIFFERS FROM (bug!)");
  if (!concurrent_identical) return 1;

  // --- 9. Crash-safe replication: leader captures into a durable log, a
  // fault-injected follower converges over the wire, and a SIGKILL'd
  // leader rises again from nothing but the log directory. ---
  const int replication_code =
      RunReplicationPhase(replication_log_dir, metric, jones, constraint,
                          options, trace, keys, batch, /*endless=*/false);
  if (owns_replication_dir) {
    std::error_code cleanup;  // best-effort
    std::filesystem::remove_all(replication_log_dir, cleanup);
  }
  return replication_code;
}
