// Multi-tenant serving: one process keeping an independent fair-center
// sliding window per tenant, served through the ShardManager front-end.
//
// A fleet of tenants (think: one sensor deployment per customer) streams
// readings tagged with a tenant key. The manager routes every arrival to its
// tenant's shard, fans ingest batches and query rounds out over a shared
// thread pool, and checkpoints the whole fleet into one blob. The example
// demonstrates the full serving lifecycle:
//
//   1. route + ingest a keyed stream across N tenants,
//   2. serve a QueryAll fan-out (one fair summary per tenant),
//   3. kill/restore: checkpoint every shard, rebuild the manager from the
//      blob, and verify the restored fleet answers identically,
//   4. keep ingesting into the restored fleet (business as usual).
//
//   multi_tenant_serving [--tenants=4] [--threads=0] [--batch=32]
//                        [--window=1000] [--points=12000]
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "datasets/phones_sim.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"

namespace {

bool SameSolution(const fkc::FairCenterSolution& a,
                  const fkc::FairCenterSolution& b) {
  if (a.radius != b.radius || a.centers.size() != b.centers.size()) {
    return false;
  }
  for (size_t i = 0; i < a.centers.size(); ++i) {
    if (a.centers[i].coords != b.centers[i].coords ||
        a.centers[i].color != b.centers[i].color) {
      return false;
    }
  }
  return true;
}

void PrintAnswers(const std::vector<fkc::serving::ShardAnswer>& answers) {
  for (const auto& answer : answers) {
    if (!answer.solution.ok()) {
      std::printf("  %-10s <error: %s>\n", answer.key.c_str(),
                  answer.solution.status().ToString().c_str());
      continue;
    }
    std::printf("  %-10s radius=%8.3f centers=%2zu coreset=%3lld guess=%.3f\n",
                answer.key.c_str(), answer.solution.value().radius,
                answer.solution.value().centers.size(),
                static_cast<long long>(answer.stats.coreset_size),
                answer.stats.guess);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t tenants = 4;
  int64_t threads = 0;  // all hardware threads
  int64_t batch = 32;
  int64_t window = 1000;
  int64_t points = 12000;

  fkc::FlagParser flags;
  flags.AddInt64("tenants", &tenants, "number of tenant shards");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("batch", &batch, "keyed arrivals per IngestBatch");
  flags.AddInt64("window", &window, "per-tenant window size");
  flags.AddInt64("points", &points, "total arrivals across all tenants");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;

  fkc::datasets::PhonesSimOptions data_options;
  data_options.num_points = points;
  const std::vector<fkc::Point> trace =
      fkc::datasets::GeneratePhonesSim(data_options);
  const fkc::ColorConstraint constraint =
      fkc::ColorConstraint::Proportional(trace, data_options.ell, 14);

  fkc::serving::ShardManagerOptions options;
  options.window.window_size = window;
  options.window.delta = 1.0;
  options.window.adaptive_range = true;  // tenant scales unknown a priori
  options.num_threads = fkc::ResolveThreadCount(threads);
  fkc::serving::ShardManager manager(options, constraint, &metric, &jones);

  std::vector<std::string> keys;
  for (int64_t s = 0; s < tenants; ++s) {
    keys.push_back(fkc::StrFormat("tenant-%02lld", static_cast<long long>(s)));
  }

  // --- 1. Route the keyed stream, batched. ---
  std::vector<fkc::serving::KeyedPoint> pending;
  const int64_t first_phase = points / 2;
  for (int64_t t = 0; t < first_phase; ++t) {
    pending.push_back({keys[t % keys.size()], trace[t]});
    if (static_cast<int64_t>(pending.size()) >= batch) {
      manager.IngestBatch(std::move(pending));
      pending = {};
    }
  }
  manager.IngestBatch(std::move(pending));
  pending = {};

  // --- 2. Serve a fan-out query round. ---
  std::printf("fleet after %lld arrivals over %zu tenants (%lld pts stored):\n",
              static_cast<long long>(first_phase), manager.shard_count(),
              static_cast<long long>(manager.TotalMemory().TotalPoints()));
  const auto before = manager.QueryAll();
  PrintAnswers(before);

  // --- 3. Kill/restore cycle. ---
  const std::string blob = manager.CheckpointAll();
  auto restored = fkc::serving::ShardManager::Restore(
      blob, &metric, &jones, options.num_threads);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  auto after = restored.value().QueryAll();
  bool identical = before.size() == after.size();
  for (size_t i = 0; identical && i < before.size(); ++i) {
    identical = before[i].key == after[i].key &&
                before[i].solution.ok() == after[i].solution.ok() &&
                (!before[i].solution.ok() ||
                 SameSolution(before[i].solution.value(),
                              after[i].solution.value()));
  }
  std::printf("\ncheckpoint: %zu bytes for %zu shards; restored fleet answers "
              "%s\n",
              blob.size(), restored.value().shard_count(),
              identical ? "IDENTICALLY" : "DIFFERENTLY (bug!)");
  if (!identical) return 1;

  // --- 4. Business as usual on the restored fleet. ---
  for (int64_t t = first_phase; t < points; ++t) {
    pending.push_back({keys[t % keys.size()], trace[t]});
    if (static_cast<int64_t>(pending.size()) >= batch) {
      restored.value().IngestBatch(std::move(pending));
      pending = {};
    }
  }
  restored.value().IngestBatch(std::move(pending));
  std::printf("\nfleet after %lld more arrivals into the restored manager:\n",
              static_cast<long long>(points - first_phase));
  PrintAnswers(restored.value().QueryAll());
  return 0;
}
