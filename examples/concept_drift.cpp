// Concept drift: why sliding windows, not insertion-only streaming.
//
// The stream moves through three regimes (different locations and scales).
// An insertion-only summary keeps representatives of everything it ever saw
// — its centers lag in regions the analyst no longer cares about. The
// sliding-window algorithm forgets expired data by construction and tracks
// each regime within one window length.
//
// The insertion-only comparator is the library's one-pass doubling summary
// (core/insertion_only_fair_center.h) — the massive-data-model algorithm the
// paper's sliding-window contribution supersedes.
#include <cstdio>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "core/insertion_only_fair_center.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

int main() {
  const int64_t window_size = 1000;
  const int64_t regime_length = 2500;
  const fkc::ColorConstraint constraint({2, 2});
  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;

  fkc::SlidingWindowOptions sliding_options;
  sliding_options.window_size = window_size;
  sliding_options.delta = 1.0;
  sliding_options.adaptive_range = true;
  fkc::FairCenterSlidingWindow sliding(sliding_options, constraint, &metric,
                                       &jones);

  fkc::InsertionOnlyOptions insertion_options;
  fkc::InsertionOnlyFairCenter insertion_only(insertion_options, constraint,
                                              &metric, &jones);

  fkc::ReferenceWindow truth(window_size);
  fkc::Rng rng(7);

  struct Regime {
    const char* name;
    double center;
    double spread;
  };
  const Regime regimes[] = {{"city A (wide)", 0.0, 200.0},
                            {"city B (tight)", 10000.0, 5.0},
                            {"city C (medium)", -5000.0, 50.0}};

  std::printf("%16s %8s %16s %16s\n", "regime", "t", "sliding_radius",
              "insertion_radius");
  int64_t t = 0;
  for (const Regime& regime : regimes) {
    for (int64_t i = 0; i < regime_length; ++i) {
      ++t;
      fkc::Point p({regime.center + rng.NextGaussian(0, regime.spread),
                    rng.NextGaussian(0, regime.spread)},
                   static_cast<int>(rng.NextBounded(2)));
      p.arrival = t;
      truth.Update(p);
      sliding.Update(p);
      insertion_only.Update(p);

      if (i == regime_length - 1) {  // end of each regime
        auto sliding_result = sliding.Query();
        auto prefix_result = insertion_only.Query();
        if (!sliding_result.ok() || !prefix_result.ok()) {
          std::fprintf(stderr, "query failed\n");
          return 1;
        }
        // Both evaluated on the *current window* — what the analyst needs.
        const auto window_points = truth.Snapshot();
        const double sliding_radius = fkc::ClusteringRadius(
            metric, window_points, sliding_result.value().centers);
        const double prefix_radius = fkc::ClusteringRadius(
            metric, window_points, prefix_result.value().centers);
        std::printf("%16s %8lld %16.3f %16.3f\n", regime.name,
                    static_cast<long long>(t), sliding_radius, prefix_radius);
      }
    }
  }

  std::printf(
      "\nAfter each drift the sliding-window radius reflects only the live "
      "regime, while\nthe insertion-only summary pays for covering regimes "
      "that already left the window.\nIts centers can even sit in dead "
      "regions — useless for decisions about the present.\n");
  return 0;
}
