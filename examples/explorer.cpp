// Explorer: a flag-driven CLI to run any algorithm of the library on any
// dataset — the built-in synthetic families or your own CSV — and print the
// paper's four metrics. The practical entry point for trying the library on
// real data.
//
// Examples:
//   explorer --dataset=phones --algorithm=oblivious --window=5000
//   explorer --csv=mydata.csv --ell=4 --algorithm=ours --delta=2 --k=8
//   explorer --dataset=blobs5 --algorithm=lite --queries=20
#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/logging.h"
#include "core/fair_center_lite.h"
#include "core/fair_center_sliding_window.h"
#include "core/insertion_only_fair_center.h"
#include "datasets/csv_loader.h"
#include "datasets/registry.h"
#include "metric/aspect_ratio.h"
#include "metric/metric.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/jones_fair_center.h"
#include "stream/window_driver.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  std::string dataset_name = "phones";
  std::string csv_path;
  std::string algorithm = "oblivious";  // ours|oblivious|lite|jones|chen
  int64_t window = 2000;
  int64_t queries = 10;
  int64_t stride = 20;
  int64_t total_k = 14;
  int64_t ell_override = 0;
  double delta = 1.0;
  double beta = 2.0;
  uint64_t seed = 42;
  int64_t seed_flag = 42;
  int64_t threads = 0;  // all hardware threads (see AddThreadsFlag)
  int64_t batch = 1;
  flags.AddString("dataset", &dataset_name,
                  "named dataset (phones|higgs|covtype|blobs<d>|rotated<D>)");
  flags.AddString("csv", &csv_path,
                  "CSV path (numeric columns + integer color in the last "
                  "column); overrides --dataset");
  flags.AddString("algorithm", &algorithm,
                  "ours | oblivious | lite | jones | chen");
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("queries", &queries, "number of measured windows");
  flags.AddInt64("stride", &stride, "arrivals between measured windows");
  flags.AddInt64("k", &total_k, "total center budget (caps proportional)");
  flags.AddInt64("ell", &ell_override,
                 "number of colors for CSV input (default: max label + 1)");
  flags.AddDouble("delta", &delta, "coreset precision");
  flags.AddDouble("beta", &beta, "guess ladder progression");
  flags.AddInt64("seed", &seed_flag, "generator seed for named datasets");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("batch", &batch, "arrivals per UpdateBatch call");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  seed = static_cast<uint64_t>(seed_flag);

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const fkc::ChenMatroidCenter chen;

  // --- Assemble the stream. ---
  const int64_t stream_length = window + window / 2 + queries * stride;
  std::vector<fkc::Point> points;
  int ell = 0;
  if (!csv_path.empty()) {
    auto loaded = fkc::datasets::LoadCsv(csv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    points = std::move(loaded).value();
    for (const fkc::Point& p : points) ell = std::max(ell, p.color + 1);
    if (ell_override > 0) ell = static_cast<int>(ell_override);
    dataset_name = csv_path;
  } else {
    auto made = fkc::datasets::MakeDataset(dataset_name, stream_length, seed);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    ell = made.value().ell;
    points = std::move(made).value().points;
  }
  if (points.empty()) {
    std::fprintf(stderr, "empty dataset\n");
    return 1;
  }

  const fkc::ColorConstraint constraint = fkc::ColorConstraint::Proportional(
      points, ell, static_cast<int>(total_k));
  std::printf("dataset=%s points=%zu dim=%zu ell=%d %s\n",
              dataset_name.c_str(), points.size(), points[0].dimension(), ell,
              constraint.ToString().c_str());

  // Distance bounds for the fixed-range variant.
  std::vector<fkc::Point> sample;
  const size_t sample_stride = points.size() > 2000 ? points.size() / 2000 : 1;
  for (size_t i = 0; i < points.size(); i += sample_stride) {
    sample.push_back(points[i]);
  }
  const fkc::DistanceExtrema extrema =
      fkc::ComputeDistanceExtrema(metric, sample);

  // --- Configure the chosen algorithm. ---
  fkc::SlidingWindowOptions options;
  options.window_size = window;
  options.beta = beta;
  options.delta = delta;
  options.num_threads = fkc::ResolveThreadCount(threads);
  options.adaptive_range = (algorithm != "ours");
  if (algorithm == "ours") {
    options.d_min = extrema.min_distance / 2.0;
    options.d_max = extrema.max_distance * 2.0;
  }

  std::unique_ptr<fkc::FairCenterSlidingWindow> streaming;
  std::unique_ptr<fkc::FairCenterLite> lite;
  fkc::WindowDriver driver(&metric, constraint, window);
  if (algorithm == "ours" || algorithm == "oblivious") {
    streaming = std::make_unique<fkc::FairCenterSlidingWindow>(
        options, constraint, &metric, &jones);
    driver.AddStreaming(algorithm, streaming.get());
  } else if (algorithm == "lite") {
    lite = std::make_unique<fkc::FairCenterLite>(options, constraint, &metric,
                                                 &jones);
    driver.AddStreaming("lite", lite.get());
  } else if (algorithm == "jones") {
    driver.AddBaseline("jones", &jones);
  } else if (algorithm == "chen") {
    driver.AddBaseline("chen", &chen);
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
    return 1;
  }
  driver.AddBaseline("Jones-reference", &jones);

  fkc::VectorStream stream(std::move(points), ell, dataset_name,
                           /*cycle=*/true);
  fkc::DriverOptions run;
  run.stream_length = stream_length;
  run.num_queries = queries;
  run.query_stride = stride;
  run.update_batch_size = batch;
  const auto reports = driver.Run(&stream, run);

  std::printf("\n%-16s %10s %12s %12s %12s\n", "algorithm", "ratio",
              "memory_pts", "update_ms", "query_ms");
  for (const auto& report : reports) {
    std::printf("%-16s %10.3f %12.1f %12.4f %12.3f\n", report.name.c_str(),
                report.mean_ratio, report.mean_memory_points,
                report.mean_update_ms, report.mean_query_ms);
  }
  return 0;
}
