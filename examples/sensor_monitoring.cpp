// Sensor monitoring: the PHONES-style scenario from the paper's motivation.
//
// A fleet of smartphones streams 3-d positions labelled by user activity
// (stand, sit, walk, bike, stairs-up, stairs-down, null). An analyst keeps a
// live summary of the most recent readings: k = 14 representative positions,
// with per-activity caps proportional to activity frequencies so that no
// activity dominates the summary (the fairness requirement).
//
// The example contrasts the streaming summary with a full-window recompute,
// showing that quality is comparable while memory and query time are not.
#include <cstdio>

#include "core/fair_center_sliding_window.h"
#include "common/stopwatch.h"
#include "datasets/phones_sim.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

namespace {

const char* kActivityNames[] = {"stand",     "sit",  "walk",
                                "bike",      "st-up", "st-down",
                                "null"};

}  // namespace

int main() {
  const int64_t window_size = 2000;
  const int64_t stream_length = 8000;

  fkc::datasets::PhonesSimOptions data_options;
  data_options.num_points = stream_length;
  const std::vector<fkc::Point> trace =
      fkc::datasets::GeneratePhonesSim(data_options);

  // Caps proportional to activity frequencies, totalling 14 (the paper's
  // configuration).
  const fkc::ColorConstraint constraint =
      fkc::ColorConstraint::Proportional(trace, data_options.ell, 14);
  std::printf("activity caps:");
  for (int c = 0; c < constraint.ell(); ++c) {
    std::printf(" %s=%d", kActivityNames[c], constraint.cap(c));
  }
  std::printf("  (k=%d)\n\n", constraint.TotalK());

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;

  fkc::SlidingWindowOptions options;
  options.window_size = window_size;
  options.delta = 2.0;            // coarser coreset: bigger memory savings
  options.adaptive_range = true;  // sensor scales are unknown a priori
  fkc::FairCenterSlidingWindow streaming(options, constraint, &metric,
                                         &jones);
  fkc::ReferenceWindow full_window(window_size);

  std::printf("%8s %12s %12s %10s %12s %12s\n", "t", "stream_rad",
              "full_rad", "ratio", "stream_pts", "query_ms");
  for (int64_t t = 1; t <= stream_length; ++t) {
    fkc::Point p = trace[t - 1];
    p.arrival = t;
    full_window.Update(p);
    streaming.Update(std::move(p));

    if (t >= window_size && t % 1000 == 0) {
      fkc::Stopwatch timer;
      auto summary = streaming.Query();
      const double query_ms = timer.ElapsedMillis();
      if (!summary.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     summary.status().ToString().c_str());
        return 1;
      }
      // Ground truth: the same solver on the verbatim window.
      auto reference = full_window.Query(metric, jones, constraint);
      if (!reference.ok()) {
        std::fprintf(stderr, "reference failed: %s\n",
                     reference.status().ToString().c_str());
        return 1;
      }
      const auto window_points = full_window.Snapshot();
      const double stream_radius = fkc::ClusteringRadius(
          metric, window_points, summary.value().centers);
      const double full_radius = reference.value().radius;
      std::printf("%8lld %12.4f %12.4f %10.3f %12lld %12.3f\n",
                  static_cast<long long>(t), stream_radius, full_radius,
                  full_radius > 0 ? stream_radius / full_radius : 1.0,
                  static_cast<long long>(streaming.Memory().TotalPoints()),
                  query_ms);
    }
  }

  // Final summary with per-activity breakdown.
  auto final_summary = streaming.Query();
  if (final_summary.ok()) {
    std::printf("\nfinal fair summary of the last %lld readings:\n",
                static_cast<long long>(window_size));
    for (const fkc::Point& center : final_summary.value().centers) {
      std::printf("  [%-7s] (%.2f, %.2f, %.2f)\n",
                  kActivityNames[center.color], center.coords[0],
                  center.coords[1], center.coords[2]);
    }
  }
  return 0;
}
