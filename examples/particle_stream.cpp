// Particle stream triage: the HIGGS-style scenario.
//
// A detector pipeline streams 7-dimensional kinematic feature vectors
// labelled signal vs background. Downstream analyses work on a small coreset
// of representative events from the recent stream; the representation must
// be fair in the paper's sense — per-class *upper caps* on the number of
// representatives — so that the abundant background class cannot swamp the
// whole summary budget.
//
// This example compares:
//   * unconstrained k-center summarization (no cap: background free to fill
//     every slot), vs
//   * fair center with caps {signal <= 4, background <= 10},
// both over a sliding window, and reports class composition and radii.
#include <cstdio>

#include "core/fair_center_sliding_window.h"
#include "datasets/higgs_sim.h"
#include "metric/metric.h"
#include "sequential/gonzalez.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

int main() {
  const int64_t window_size = 1500;
  const int64_t stream_length = 6000;

  fkc::datasets::HiggsSimOptions data_options;
  data_options.num_points = stream_length;
  data_options.signal_fraction = 0.10;  // make signal genuinely rare
  const std::vector<fkc::Point> events =
      fkc::datasets::GenerateHiggsSim(data_options);

  // Budget of 14 representatives, background capped at 10: the majority
  // class can never occupy more than 10 slots of the summary.
  const fkc::ColorConstraint constraint({4, 10});  // color 0 = signal
  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;

  fkc::SlidingWindowOptions options;
  options.window_size = window_size;
  options.delta = 1.0;
  options.adaptive_range = true;
  fkc::FairCenterSlidingWindow fair_summary(options, constraint, &metric,
                                            &jones);
  fkc::ReferenceWindow window(window_size);

  std::printf("%8s | %22s | %22s\n", "t", "fair (sig/bkg, radius)",
              "unfair (sig/bkg, radius)");
  for (int64_t t = 1; t <= stream_length; ++t) {
    fkc::Point p = events[t - 1];
    p.arrival = t;
    window.Update(p);
    fair_summary.Update(std::move(p));

    if (t >= window_size && t % 1500 == 0) {
      auto fair = fair_summary.Query();
      if (!fair.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     fair.status().ToString().c_str());
        return 1;
      }
      // Unfair comparator: plain greedy k-center on the full window with the
      // same budget (14 centers, no quotas).
      const auto window_points = window.Snapshot();
      const auto greedy = fkc::GonzalezKCenter(metric, window_points, 14);
      const auto greedy_centers =
          fkc::HeadPoints(window_points, greedy);

      auto count = [](const std::vector<fkc::Point>& centers, int color) {
        int n = 0;
        for (const auto& c : centers) n += (c.color == color);
        return n;
      };
      const double fair_radius = fkc::ClusteringRadius(
          metric, window_points, fair.value().centers);
      std::printf("%8lld | %6d/%-6d r=%-8.3f | %6d/%-6d r=%-8.3f\n",
                  static_cast<long long>(t),
                  count(fair.value().centers, 0),
                  count(fair.value().centers, 1), fair_radius,
                  count(greedy_centers, 0), count(greedy_centers, 1),
                  greedy.coverage_radius);
    }
  }

  std::printf(
      "\nThe fair summary never carries more than 10 background "
      "representatives — the cap\nbinds whenever background would otherwise "
      "swamp the budget — while unconstrained\nk-center fills slots purely "
      "by geometry. The unconstrained radius can be smaller\nbecause it "
      "optimizes without the cap constraint.\n");
  return 0;
}
