// Ablation: sensitivity to the guess-ladder progression beta.
//
// The paper fixes beta = 2 for all experiments, noting that "varying this
// parameter does not significantly influence the results". This bench
// verifies the claim: quality should stay flat across beta, while memory and
// time shift mildly (smaller beta = denser ladder = more guesses, each
// cheaper to certify; the delta-parameter rule compensates quality).
#include <memory>

#include "bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/jones_fair_center.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  std::string betas_csv = "0.5,1,2,4";
  std::string dataset = "phones";
  int64_t window = 2000;
  int64_t queries = 8;
  int64_t stride = 25;
  double delta = 1.0;
  flags.AddString("betas", &betas_csv, "comma-separated beta values");
  flags.AddString("dataset", &dataset, "dataset name");
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("queries", &queries, "number of measured windows");
  flags.AddInt64("stride", &stride, "arrivals between measured windows");
  flags.AddDouble("delta", &delta, "coreset precision");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  fkc::bench::PrintPreamble(
      "beta ablation (the paper fixes beta = 2)",
      "approximation ratio roughly flat across beta; memory/update time "
      "increase as beta shrinks (denser guess ladder)");
  fkc::bench::PrintHeader("beta");

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const int64_t stream_length = window + window / 2 + queries * stride;
  fkc::bench::PreparedDataset prepared =
      fkc::bench::Prepare(dataset, stream_length, metric);

  std::vector<std::unique_ptr<fkc::FairCenterSlidingWindow>> windows;
  fkc::WindowDriver driver(&metric, prepared.constraint, window);
  std::vector<double> betas;
  for (const std::string& beta_text : fkc::StrSplit(betas_csv, ',')) {
    const double beta = fkc::ParseDouble(beta_text).value();
    betas.push_back(beta);
    fkc::SlidingWindowOptions options;
    options.window_size = window;
    options.beta = beta;
    options.delta = delta;
    options.d_min = prepared.d_min;
    options.d_max = prepared.d_max;
    windows.push_back(std::make_unique<fkc::FairCenterSlidingWindow>(
        options, prepared.constraint, &metric, &jones));
    driver.AddStreaming("Ours@beta=" + beta_text, windows.back().get());
  }
  driver.AddBaseline("Jones", &jones);

  auto stream = fkc::datasets::MakeStream(std::move(prepared.dataset));
  fkc::DriverOptions run;
  run.stream_length = stream_length;
  run.num_queries = queries;
  run.query_stride = stride;
  const auto reports = driver.Run(stream.get(), run);
  for (size_t i = 0; i < betas.size(); ++i) {
    fkc::bench::PrintRow(dataset, reports[i], betas[i]);
  }
  fkc::bench::PrintRow(dataset, reports.back(), 0.0);
  return 0;
}
