// Figure 3: memory (top) and query time (bottom, log scale in the paper) as
// a function of the window size, with the most accurate setting delta = 0.5.
//
// Paper's findings to reproduce:
//   * Baseline memory grows linearly with the window; the streaming
//     algorithms' memory stabilizes to a window-size-independent level.
//   * The query-time gap widens steeply with the window; in the paper
//     ChenEtAl times out beyond 30k-point windows and Jones beyond 200k.
//     We mirror the timeouts with per-baseline window caps.
#include <memory>

#include "bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/jones_fair_center.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  std::string windows_csv = "500,1000,2000,4000,8000";
  int64_t queries = 8;
  int64_t stride = 25;
  double delta = 0.5;
  int64_t chen_limit = 2000;    // paper: ChenEtAl times out at 30k
  int64_t jones_limit = 8000;   // paper: Jones times out at 200k
  int64_t threads = 1;
  int64_t seed = 42;
  int64_t repeats = 1;
  bool paper_scale = false;
  std::string datasets_csv = "phones,higgs,covtype";
  std::string output_csv;
  flags.AddString("windows", &windows_csv, "comma-separated window sizes");
  flags.AddInt64("queries", &queries, "number of measured windows");
  flags.AddInt64("stride", &stride, "arrivals between measured windows");
  flags.AddDouble("delta", &delta, "coreset precision (paper: 0.5)");
  flags.AddInt64("chen_limit", &chen_limit,
                 "largest window on which ChenEtAl runs");
  flags.AddInt64("jones_limit", &jones_limit,
                 "largest window on which Jones runs");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("seed", &seed, "stream/simulator seed");
  flags.AddInt64("repeats", &repeats,
                 "rerun the sweep this many times at seed, seed+1, ...");
  flags.AddBool("paper_scale", &paper_scale,
                "windows 10000..500000 as in the paper");
  flags.AddString("datasets", &datasets_csv, "datasets to run");
  flags.AddString("output_csv", &output_csv,
                  "also write raw rows to this CSV (summarizer schema)");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  if (paper_scale) {
    windows_csv = "10000,30000,100000,200000,500000";
    chen_limit = 30000;
    jones_limit = 200000;
    queries = 200;
    stride = 1;
  }

  fkc::bench::PrintPreamble(
      "Figure 3 (memory and query time vs window size, delta = 0.5)",
      "baseline memory linear in window, streaming memory flat after an "
      "initial ramp; query-time gap widens with window size (baselines "
      "eventually time out)");
  fkc::bench::PrintHeader("window");

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const fkc::ChenMatroidCenter chen;
  fkc::bench::CsvSink sink(output_csv, "fig3", "window");

  for (int64_t r = 0; r < repeats; ++r) {
    const uint64_t run_seed = static_cast<uint64_t>(seed + r);
    if (repeats > 1) {
      std::printf("# repeat %lld/%lld seed=%llu\n",
                  static_cast<long long>(r + 1),
                  static_cast<long long>(repeats),
                  static_cast<unsigned long long>(run_seed));
    }
    for (const std::string& name : fkc::StrSplit(datasets_csv, ',')) {
      for (const std::string& window_text : fkc::StrSplit(windows_csv, ',')) {
        const int64_t window_size = fkc::ParseInt(window_text).value();
        const int64_t stream_length =
            window_size + window_size / 2 + queries * stride;
        fkc::bench::PreparedDataset prepared = fkc::bench::Prepare(
            name, stream_length, metric, /*total_k=*/14, run_seed);

        fkc::SlidingWindowOptions fixed;
        fixed.window_size = window_size;
        fixed.delta = delta;
        fixed.d_min = prepared.d_min;
        fixed.d_max = prepared.d_max;
        fixed.num_threads = fkc::ResolveThreadCount(threads);
        fkc::FairCenterSlidingWindow ours(fixed, prepared.constraint, &metric,
                                          &jones);
        fkc::SlidingWindowOptions adaptive = fixed;
        adaptive.adaptive_range = true;
        adaptive.d_min = adaptive.d_max = 0.0;
        fkc::FairCenterSlidingWindow oblivious(adaptive, prepared.constraint,
                                               &metric, &jones);

        fkc::WindowDriver driver(&metric, prepared.constraint, window_size);
        driver.AddStreaming("Ours", &ours);
        driver.AddStreaming("OursObliv", &oblivious);
        if (window_size <= jones_limit) driver.AddBaseline("Jones", &jones);
        if (window_size <= chen_limit) driver.AddBaseline("ChenEtAl", &chen);

        auto stream = fkc::datasets::MakeStream(std::move(prepared.dataset));
        fkc::DriverOptions run;
        run.stream_length = stream_length;
        run.num_queries = queries;
        run.query_stride = stride;
        const auto reports = driver.Run(stream.get(), run);
        for (const auto& report : reports) {
          fkc::bench::PrintRow(name, report,
                               static_cast<double>(window_size));
          sink.Row(name, report, static_cast<double>(window_size), run_seed);
        }
      }
    }
  }
  return 0;
}
