// Figure 4: query time (left) and memory (right) as a function of the data
// dimensionality on the `blobs` datasets (21 Gaussians, sigma = 2, ell = 7,
// k_i = 3, window 10000 in the paper), with delta in {0.5, 2} and Jones as
// the only baseline.
//
// Paper's findings to reproduce:
//   * Jones is insensitive to dimensionality (it stores the window and its
//     cost depends on n and k only).
//   * Our algorithm's query time and memory grow with the dimensionality,
//     much more steeply at delta = 0.5 than delta = 2 — matching the
//     (c/delta)^D term of Theorem 2.
//   * At delta = 2 our memory stays below the window even at d = 10.
#include "bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/jones_fair_center.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  std::string dims_csv = "2,3,4,5,6,8,10";
  int64_t window = 2000;
  int64_t queries = 8;
  int64_t stride = 25;
  int64_t threads = 1;
  int64_t seed = 42;
  int64_t repeats = 1;
  bool paper_scale = false;
  std::string output_csv;
  flags.AddString("dims", &dims_csv, "comma-separated blob dimensionalities");
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("queries", &queries, "number of measured windows");
  flags.AddInt64("stride", &stride, "arrivals between measured windows");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("seed", &seed, "stream/simulator seed");
  flags.AddInt64("repeats", &repeats,
                 "rerun the sweep this many times at seed, seed+1, ...");
  flags.AddBool("paper_scale", &paper_scale, "window 10000, 200 queries");
  flags.AddString("output_csv", &output_csv,
                  "also write raw rows to this CSV (summarizer schema)");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  if (paper_scale) {
    window = 10000;
    queries = 200;
    stride = 1;
  }

  fkc::bench::PrintPreamble(
      "Figure 4 (query time and memory vs dimensionality, blobs)",
      "Jones flat in d; Ours grows with d, steeply at delta=0.5, moderately "
      "at delta=2 (memory below the window even at d=10)");
  fkc::bench::PrintHeader("dim");

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  fkc::bench::CsvSink sink(output_csv, "fig4", "dim");

  for (int64_t r = 0; r < repeats; ++r) {
    const uint64_t run_seed = static_cast<uint64_t>(seed + r);
    if (repeats > 1) {
      std::printf("# repeat %lld/%lld seed=%llu\n",
                  static_cast<long long>(r + 1),
                  static_cast<long long>(repeats),
                  static_cast<unsigned long long>(run_seed));
    }
    for (const std::string& dim_text : fkc::StrSplit(dims_csv, ',')) {
      const int64_t dim = fkc::ParseInt(dim_text).value();
      const std::string name = "blobs" + std::to_string(dim);
      const int64_t stream_length = window + window / 2 + queries * stride;
      // The paper fixes k_i = 3 for the 7 colors here (k = 21), not the
      // proportional-14 rule of the main experiments.
      fkc::bench::PreparedDataset prepared = fkc::bench::Prepare(
          name, stream_length, metric, /*total_k=*/21, run_seed);
      prepared.constraint = fkc::ColorConstraint::Uniform(7, 3);

      fkc::WindowDriver driver(&metric, prepared.constraint, window);
      fkc::SlidingWindowOptions fine;
      fine.window_size = window;
      fine.delta = 0.5;
      fine.d_min = prepared.d_min;
      fine.d_max = prepared.d_max;
      fine.num_threads = fkc::ResolveThreadCount(threads);
      fkc::FairCenterSlidingWindow ours_fine(fine, prepared.constraint,
                                             &metric, &jones);
      fkc::SlidingWindowOptions coarse = fine;
      coarse.delta = 2.0;
      fkc::FairCenterSlidingWindow ours_coarse(coarse, prepared.constraint,
                                               &metric, &jones);
      driver.AddStreaming("Ours@0.5", &ours_fine);
      driver.AddStreaming("Ours@2.0", &ours_coarse);
      driver.AddBaseline("Jones", &jones);

      auto stream = fkc::datasets::MakeStream(std::move(prepared.dataset));
      fkc::DriverOptions run;
      run.stream_length = stream_length;
      run.num_queries = queries;
      run.query_stride = stride;
      const auto reports = driver.Run(stream.get(), run);
      for (const auto& report : reports) {
        fkc::bench::PrintRow("blobs", report, static_cast<double>(dim));
        sink.Row("blobs", report, static_cast<double>(dim), run_seed);
      }
    }
  }
  return 0;
}
