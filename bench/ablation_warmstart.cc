// Ablation: replay warm-up of freshly instantiated guesses (an
// implementation decision of the adaptive-range variant, documented in
// DESIGN.md). When the witnessed distance range shifts, OursOblivious
// creates guess structures for scales it was not tracking; seeding them by
// replaying the nearest existing guess's stored points keeps the new scale
// aware of the current window. Without it, fresh guesses only learn about
// future arrivals and query quality degrades for up to a window length
// after every regime shift.
//
// Workload: a stream alternating between a wide and a tight regime every
// 1.5 window lengths, so range shifts keep happening. Expected shape: the
// cold variant's ratio (vs the full-window Jones baseline) is visibly worse;
// memory and time are essentially unchanged.
#include <cmath>

#include "bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/jones_fair_center.h"
#include "stream/window_driver.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  int64_t window = 1000;
  int64_t regimes = 6;
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("regimes", &regimes, "number of alternating regimes");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  fkc::bench::PrintPreamble(
      "replay warm-up ablation (adaptive-range design choice)",
      "warm variant's ratio stays near the baseline across regime shifts; "
      "cold variant degrades after each shift; memory/time comparable");

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const fkc::ColorConstraint constraint({2, 2});

  // Alternating-regime stream.
  fkc::Rng rng(42);
  std::vector<fkc::Point> points;
  const int64_t regime_length = window + window / 2;
  for (int64_t r = 0; r < regimes; ++r) {
    const bool wide = (r % 2 == 0);
    const double center = wide ? 0.0 : 5000.0;
    const double spread = wide ? 1000.0 : 2.0;
    for (int64_t i = 0; i < regime_length; ++i) {
      points.push_back(
          fkc::Point({center + rng.NextGaussian(0, spread),
                      center + rng.NextGaussian(0, spread)},
                     static_cast<int>(rng.NextBounded(2))));
    }
  }
  const int64_t stream_length = static_cast<int64_t>(points.size());

  fkc::SlidingWindowOptions warm_options;
  warm_options.window_size = window;
  warm_options.delta = 1.0;
  warm_options.adaptive_range = true;
  fkc::FairCenterSlidingWindow warm(warm_options, constraint, &metric,
                                    &jones);
  fkc::SlidingWindowOptions cold_options = warm_options;
  cold_options.warm_start_new_guesses = false;
  fkc::FairCenterSlidingWindow cold(cold_options, constraint, &metric,
                                    &jones);

  fkc::WindowDriver driver(&metric, constraint, window);
  driver.AddStreaming("warm-start", &warm);
  driver.AddStreaming("cold-start", &cold);
  driver.AddBaseline("Jones", &jones);

  fkc::VectorStream stream(std::move(points), 2, "alternating",
                           /*cycle=*/false);
  fkc::DriverOptions run;
  run.stream_length = stream_length;
  // Measure across the last two regimes (covering shifts in both
  // directions), sampling steadily.
  run.num_queries = 40;
  run.query_stride = (2 * regime_length) / 40;
  const auto reports = driver.Run(&stream, run);

  fkc::bench::PrintHeader("warm");
  fkc::bench::PrintRow("alternating", reports[0], 1.0);
  fkc::bench::PrintRow("alternating", reports[1], 0.0);
  fkc::bench::PrintRow("alternating", reports[2], -1.0);
  return 0;
}
