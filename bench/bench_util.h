// Shared plumbing for the figure-reproduction benches: dataset preparation
// with the paper's canonical configuration (sum k_i = 14, caps proportional
// to global color frequencies), distance-bound estimation for the
// fixed-range variant, and uniform row printing.
#ifndef FKC_BENCH_BENCH_UTIL_H_
#define FKC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datasets/registry.h"
#include "matroid/color_constraint.h"
#include "metric/aspect_ratio.h"
#include "metric/metric.h"
#include "stream/window_driver.h"

namespace fkc {
namespace bench {

/// A prepared experiment input: materialized points, the paper's fairness
/// constraint, and distance bounds for the fixed-range ("Ours") variant.
struct PreparedDataset {
  datasets::Dataset dataset;
  ColorConstraint constraint;
  double d_min = 0.0;
  double d_max = 0.0;
};

/// Generates `num_points` of the named dataset and derives the canonical
/// experiment configuration. Distance bounds come from an exact scan over a
/// subsample (the paper's Ours is given the true stream bounds; a subsample
/// with slack reproduces that knowledge at laptop cost).
inline PreparedDataset Prepare(const std::string& name, int64_t num_points,
                               const Metric& metric, int total_k = 14,
                               uint64_t seed = 42) {
  auto made = datasets::MakeDataset(name, num_points, seed);
  FKC_CHECK(made.ok()) << made.status().ToString();
  PreparedDataset out;
  out.dataset = std::move(made).value();
  out.constraint = ColorConstraint::Proportional(out.dataset.points,
                                                 out.dataset.ell, total_k);

  std::vector<Point> sample;
  const size_t stride =
      out.dataset.points.size() > 2000 ? out.dataset.points.size() / 2000 : 1;
  for (size_t i = 0; i < out.dataset.points.size(); i += stride) {
    sample.push_back(out.dataset.points[i]);
  }
  const DistanceExtrema extrema = ComputeDistanceExtrema(metric, sample);
  FKC_CHECK_GT(extrema.max_distance, 0.0) << "degenerate dataset " << name;
  out.d_min = extrema.min_distance / 2.0;  // subsample slack
  out.d_max = extrema.max_distance * 2.0;
  return out;
}

/// Prints the uniform result header used by every figure bench.
inline void PrintHeader(const char* x_name) {
  std::printf("%-10s %-16s %10s %10s %12s %12s %12s %10s\n", "dataset",
              "algorithm", x_name, "ratio", "memory_pts", "update_ms",
              "query_ms", "queries");
}

/// Prints one result row. `x` is the swept parameter (delta, window size,
/// dimensionality, ...).
inline void PrintRow(const std::string& dataset, const AlgorithmReport& r,
                     double x) {
  std::printf("%-10s %-16s %10.3g %10.3f %12.1f %12.4f %12.3f %10lld\n",
              dataset.c_str(), r.name.c_str(), x, r.mean_ratio,
              r.mean_memory_points, r.mean_update_ms, r.mean_query_ms,
              static_cast<long long>(r.queries));
}

/// Prints the bench preamble: which figure is being reproduced and the shape
/// the paper reports, so a reader can eyeball-verify the output.
inline void PrintPreamble(const char* figure, const char* expectation) {
  std::printf("# Reproduces %s\n# Paper's shape: %s\n#\n", figure,
              expectation);
}

/// Machine-readable result output behind the `--output_csv` flag every
/// figure bench carries: one raw row per (dataset, algorithm, x, seed) in
/// the schema `tools/summarize_results.py` aggregates. Constructed with an
/// empty path it is a no-op, so benches call Row() unconditionally.
class CsvSink {
 public:
  CsvSink(const std::string& path, const std::string& figure,
          const std::string& x_name)
      : figure_(figure), x_name_(x_name) {
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    FKC_CHECK(file_ != nullptr) << "cannot open --output_csv path " << path;
    std::fprintf(file_,
                 "figure,dataset,algorithm,x_name,x,seed,ratio,memory_pts,"
                 "update_ms,query_ms,queries\n");
  }
  ~CsvSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  void Row(const std::string& dataset, const AlgorithmReport& r, double x,
           uint64_t seed) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s,%s,%s,%s,%g,%llu,%.6f,%.3f,%.6f,%.6f,%lld\n",
                 figure_.c_str(), dataset.c_str(), r.name.c_str(),
                 x_name_.c_str(), x, static_cast<unsigned long long>(seed),
                 r.mean_ratio, r.mean_memory_points, r.mean_update_ms,
                 r.mean_query_ms, static_cast<long long>(r.queries));
  }

 private:
  std::string figure_;
  std::string x_name_;
  std::FILE* file_ = nullptr;
};

}  // namespace bench
}  // namespace fkc

#endif  // FKC_BENCH_BENCH_UTIL_H_
