// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// figure experiments: distance evaluation, Gonzalez, matching, the
// sequential solvers, and the streaming update/query paths.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "datasets/blobs.h"
#include "matching/capacitated_matching.h"
#include "matching/hopcroft_karp.h"
#include "metric/metric.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/gonzalez.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

std::vector<Point> MakePoints(int n, int dim, int ell = 4) {
  datasets::BlobsOptions options;
  options.num_points = n;
  options.dimension = dim;
  options.ell = ell;
  return datasets::GenerateBlobs(options);
}

void BM_EuclideanDistance(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Distance(points[0], points[1]));
  }
}
BENCHMARK(BM_EuclideanDistance)->Arg(3)->Arg(7)->Arg(54);

void BM_Gonzalez(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GonzalezKCenter(metric, points, 14));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gonzalez)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  BipartiteGraph graph(n, n);
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.NextBernoulli(0.2)) graph.AddEdge(l, r);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximumBipartiteMatching(graph));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(16)->Arg(64)->Arg(256);

void BM_CapacitatedMatching(benchmark::State& state) {
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  std::vector<std::vector<int>> allowed(14);
  Rng rng(7);
  for (auto& row : allowed) {
    for (int c = 0; c < 7; ++c) {
      if (rng.NextBernoulli(0.5)) row.push_back(c);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximumCapacitatedMatching(allowed, constraint));
  }
}
BENCHMARK(BM_CapacitatedMatching);

void BM_JonesSolver(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(static_cast<int>(state.range(0)), 3, 7);
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const JonesFairCenter solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(metric, points, constraint));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JonesSolver)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_ChenSolver(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(static_cast<int>(state.range(0)), 3, 7);
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const ChenMatroidCenter solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(metric, points, constraint));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChenSolver)->Range(256, 1024)->Complexity(benchmark::oNSquared);

// The streaming update path at the two delta extremes (cost per arrival).
void BM_SlidingWindowUpdate(benchmark::State& state) {
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const auto points = MakePoints(20000, 3, 7);

  SlidingWindowOptions options;
  options.window_size = 2000;
  options.delta = static_cast<double>(state.range(0)) / 10.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, constraint, &metric, &jones);
  size_t cursor = 0;
  // Warm up to steady state.
  for (int i = 0; i < 4000; ++i) {
    window.Update(points[cursor++ % points.size()]);
  }
  for (auto _ : state) {
    window.Update(points[cursor++ % points.size()]);
  }
}
BENCHMARK(BM_SlidingWindowUpdate)->Arg(5)->Arg(20)->Arg(40);

void BM_SlidingWindowQuery(benchmark::State& state) {
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const auto points = MakePoints(8000, 3, 7);

  SlidingWindowOptions options;
  options.window_size = 2000;
  options.delta = static_cast<double>(state.range(0)) / 10.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, constraint, &metric, &jones);
  for (const Point& p : points) window.Update(p);
  for (auto _ : state) {
    auto result = window.Query();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SlidingWindowQuery)->Arg(5)->Arg(20)->Arg(40);

}  // namespace
}  // namespace fkc

BENCHMARK_MAIN();
