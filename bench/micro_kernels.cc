// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// figure experiments: distance evaluation (scalar vs batched), Gonzalez,
// matching, the sequential solvers, and the streaming update/query paths
// (sequential vs batched vs parallel ladder).
//
//   micro_kernels [--threads=N] [google-benchmark flags]
//
// --threads (default: hardware concurrency) sets the thread count of the
// *_Parallel benchmarks.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/fair_center_sliding_window.h"
#include "core/k_median_sliding_window.h"
#include "datasets/blobs.h"
#include "matching/capacitated_matching.h"
#include "matching/hopcroft_karp.h"
#include "metric/coordinate_pool.h"
#include "metric/counting_metric.h"
#include "metric/metric.h"
#include "metric/simd_kernels.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/gonzalez.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace {

std::vector<Point> MakePoints(int n, int dim, int ell = 4) {
  datasets::BlobsOptions options;
  options.num_points = n;
  options.dimension = dim;
  options.ell = ell;
  return datasets::GenerateBlobs(options);
}

void BM_EuclideanDistance(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Distance(points[0], points[1]));
  }
}
BENCHMARK(BM_EuclideanDistance)->Arg(3)->Arg(7)->Arg(54);

// The update hot loop in its two guises: one arriving point scanned against
// a stored attractor set, distance by distance through the virtual Distance
// (scalar), versus one DistanceMany call (batched). Args: {dim, set size}.
void BM_AttractorScanScalar(benchmark::State& state) {
  const EuclideanMetric concrete;
  const Metric& metric = concrete;  // force the virtual call, as Update does
  const int n = static_cast<int>(state.range(1));
  const auto points = MakePoints(n + 1, static_cast<int>(state.range(0)));
  std::vector<double> out(n);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      out[i] = metric.Distance(points[0], points[i + 1]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AttractorScanScalar)
    ->Args({3, 16})->Args({3, 128})->Args({7, 64})->Args({54, 64})
    ->Args({16, 64})->Args({16, 512})->Args({64, 64})->Args({64, 512});

void BM_AttractorScanBatched(benchmark::State& state) {
  const EuclideanMetric concrete;
  const Metric& metric = concrete;
  const int n = static_cast<int>(state.range(1));
  const auto points = MakePoints(n + 1, static_cast<int>(state.range(0)));
  std::vector<const Point*> ptrs(n);
  for (int i = 0; i < n; ++i) ptrs[i] = &points[i + 1];
  std::vector<double> out(n);
  for (auto _ : state) {
    metric.DistanceMany(points[0], ptrs.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AttractorScanBatched)
    ->Args({3, 16})->Args({3, 128})->Args({7, 64})->Args({54, 64})
    ->Args({16, 64})->Args({16, 512})->Args({64, 64})->Args({64, 512});

// The same scan through the SoA coordinate pool, by kernel tier: the scalar
// reference kernels (dim-major layout alone) versus whatever SIMD set
// runtime dispatch picked (AVX-512 > AVX2 > scalar; cap with FKC_SIMD).
// The d=16/d=64 ladders are the headline speedup comparison against
// BM_AttractorScanBatched at identical args. Args: {dim, set size}.
void RunSoAScan(benchmark::State& state, const simd::KernelSet& kernels) {
  const int dim = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto points = MakePoints(n + 1, dim);
  CoordinatePool pool(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) pool.Append(points[i + 1]);
  std::vector<double> out(n);
  for (auto _ : state) {
    kernels.euclidean(points[0].coords.data(), pool.Row(0), pool.stride(),
                      pool.dim(), pool.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kernels.name);
}

void BM_AttractorScanSoAScalar(benchmark::State& state) {
  RunSoAScan(state, simd::ScalarKernels());
}
BENCHMARK(BM_AttractorScanSoAScalar)
    ->Args({3, 16})->Args({3, 128})->Args({7, 64})->Args({54, 64})
    ->Args({16, 64})->Args({16, 512})->Args({64, 64})->Args({64, 512});

void BM_AttractorScanSoASimd(benchmark::State& state) {
  RunSoAScan(state, simd::ActiveKernels());
}
BENCHMARK(BM_AttractorScanSoASimd)
    ->Args({3, 16})->Args({3, 128})->Args({7, 64})->Args({54, 64})
    ->Args({16, 64})->Args({16, 512})->Args({64, 64})->Args({64, 512});

// End-to-end variant through the virtual entry point, exactly as
// GuessStructure::Update calls it (dispatch + pool bookkeeping included).
void BM_AttractorScanSoAMetric(benchmark::State& state) {
  const EuclideanMetric concrete;
  const Metric& metric = concrete;
  const int dim = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto points = MakePoints(n + 1, dim);
  CoordinatePool pool(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) pool.Append(points[i + 1]);
  std::vector<double> out(n);
  for (auto _ : state) {
    metric.DistanceSoA(points[0], pool, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::ActiveKernels().name);
}
BENCHMARK(BM_AttractorScanSoAMetric)
    ->Args({16, 64})->Args({16, 512})->Args({64, 64})->Args({64, 512});

void BM_Gonzalez(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GonzalezKCenter(metric, points, 14));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gonzalez)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  BipartiteGraph graph(n, n);
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.NextBernoulli(0.2)) graph.AddEdge(l, r);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximumBipartiteMatching(graph));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(16)->Arg(64)->Arg(256);

void BM_CapacitatedMatching(benchmark::State& state) {
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  std::vector<std::vector<int>> allowed(14);
  Rng rng(7);
  for (auto& row : allowed) {
    for (int c = 0; c < 7; ++c) {
      if (rng.NextBernoulli(0.5)) row.push_back(c);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximumCapacitatedMatching(allowed, constraint));
  }
}
BENCHMARK(BM_CapacitatedMatching);

void BM_JonesSolver(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(static_cast<int>(state.range(0)), 3, 7);
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const JonesFairCenter solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(metric, points, constraint));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JonesSolver)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_ChenSolver(benchmark::State& state) {
  const EuclideanMetric metric;
  const auto points = MakePoints(static_cast<int>(state.range(0)), 3, 7);
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const ChenMatroidCenter solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(metric, points, constraint));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChenSolver)->Range(256, 1024)->Complexity(benchmark::oNSquared);

// The streaming update path at the two delta extremes (cost per arrival).
void BM_SlidingWindowUpdate(benchmark::State& state) {
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const auto points = MakePoints(20000, 3, 7);

  SlidingWindowOptions options;
  options.window_size = 2000;
  options.delta = static_cast<double>(state.range(0)) / 10.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, constraint, &metric, &jones);
  size_t cursor = 0;
  // Warm up to steady state.
  for (int i = 0; i < 4000; ++i) {
    window.Update(points[cursor++ % points.size()]);
  }
  for (auto _ : state) {
    window.Update(points[cursor++ % points.size()]);
  }
}
BENCHMARK(BM_SlidingWindowUpdate)->Arg(5)->Arg(20)->Arg(40);

// The ladder update engine across its three variants: point-at-a-time
// sequential (the scalar baseline), batched single-threaded, and batched
// parallel with --threads workers. Fixed-range mode so the ladder is static
// and the parallel path can take whole batches. Time is per batch of 64.
//
// Besides wall time the engine benches report wall-time-stable counters —
// distance evaluations and expiry sweeps per arrival — which the CI perf job
// compares against the committed baseline (machine-independent, unlike ns).
constexpr int kEngineBatch = 64;
int g_parallel_threads = 0;  // set in main from --threads

const EuclideanMetric& EngineMetric() {
  static const EuclideanMetric metric;
  return metric;
}

FairCenterSlidingWindow MakeEngineWindow(int num_threads,
                                         const Metric* metric) {
  SlidingWindowOptions options;
  options.window_size = 2000;
  options.delta = 0.5;
  options.d_min = 0.5;
  options.d_max = 800.0;
  options.num_threads = num_threads;
  static const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  static const JonesFairCenter jones;
  return FairCenterSlidingWindow(options, constraint, metric, &jones);
}

void RunEngineBench(benchmark::State& state, int num_threads,
                    bool batched) {
  const auto points = MakePoints(20000, 3, 7);
  CountingMetric counting(&EngineMetric());
  auto window = MakeEngineWindow(num_threads, &counting);
  size_t cursor = 0;
  for (int i = 0; i < 4000; ++i) {  // warm to steady state
    window.Update(points[cursor++ % points.size()]);
  }
  counting.Reset();
  const int64_t warm_sweeps = window.ExpirySweeps();
  for (auto _ : state) {
    if (batched) {
      std::vector<Point> batch;
      batch.reserve(kEngineBatch);
      for (int i = 0; i < kEngineBatch; ++i) {
        batch.push_back(points[cursor++ % points.size()]);
      }
      window.UpdateBatch(std::move(batch));
    } else {
      for (int i = 0; i < kEngineBatch; ++i) {
        window.Update(points[cursor++ % points.size()]);
      }
    }
  }
  const int64_t arrivals = state.iterations() * kEngineBatch;
  state.SetItemsProcessed(arrivals);
  state.counters["distance_calls_per_arrival"] =
      static_cast<double>(counting.count()) / static_cast<double>(arrivals);
  // Batch-level expiry dedup at work: before the watermark this was exactly
  // one sweep per guess per arrival (= Memory().guesses); now only actual
  // expiry events sweep.
  state.counters["expiry_sweeps_per_arrival"] =
      static_cast<double>(window.ExpirySweeps() - warm_sweeps) /
      static_cast<double>(arrivals);
}

void BM_UpdateEngineSequential(benchmark::State& state) {
  RunEngineBench(state, /*num_threads=*/1, /*batched=*/false);
}

void BM_UpdateEngineBatched(benchmark::State& state) {
  RunEngineBench(state, /*num_threads=*/1, /*batched=*/true);
}

void BM_UpdateEngineParallel(benchmark::State& state) {
  RunEngineBench(state, static_cast<int>(state.range(0)), /*batched=*/true);
}

// The query pipeline, sequential ladder scan vs parallel GuessPasses
// fan-out. The deterministic selection diagnostics (guesses inspected,
// coreset size) are reported as counters: identical at any thread count by
// contract, and the CI perf job's most sensitive regression tripwire.
void RunQueryBench(benchmark::State& state, int num_threads) {
  const auto points = MakePoints(8000, 3, 7);
  CountingMetric counting(&EngineMetric());
  auto window = MakeEngineWindow(num_threads, &counting);
  for (const Point& p : points) window.Update(p);

  QueryStats stats;
  for (auto _ : state) {
    auto result = window.Query(&stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["guesses_inspected"] =
      static_cast<double>(stats.guesses_inspected);
  state.counters["coreset_size"] = static_cast<double>(stats.coreset_size);
}

// Fixed-work distance-call ledger: exactly 6000 arrivals then 10 query
// plans through a CountingMetric, reported as run totals. Unlike the
// steady-state per-arrival counters above — which depend on where the
// benchmark's timing window lands in the stream and so wobble between runs
// — these totals are bit-exact for a given build and must be IDENTICAL
// across kernel widths: the CI perf job compares them at 0% tolerance
// between an FKC_SIMD=scalar run and the dispatched SIMD run.
void BM_DistanceCallLedger(benchmark::State& state) {
  const auto points = MakePoints(6000, 3, 7);
  CountingMetric counting(&EngineMetric());
  auto window = MakeEngineWindow(/*num_threads=*/1, &counting);
  for (const Point& p : points) window.Update(p);
  const int64_t update_calls = counting.count();
  counting.Reset();
  int64_t plan_coreset = 0;
  for (int q = 0; q < 10; ++q) {
    auto plan = window.PlanQuery();
    plan_coreset += plan.ok() ? plan.value().stats.coreset_size : -1;
  }
  const int64_t query_calls = counting.count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&window);
  }
  state.SetLabel(simd::ActiveKernels().name);
  state.counters["distance_calls_total_update"] =
      static_cast<double>(update_calls);
  state.counters["distance_calls_total_query"] =
      static_cast<double>(query_calls);
  state.counters["expiry_sweeps_total"] =
      static_cast<double>(window.ExpirySweeps());
  state.counters["coreset_size_planned"] = static_cast<double>(plan_coreset);
}
BENCHMARK(BM_DistanceCallLedger);

// The same fixed-work ledger through the k-median objective engine: 6000
// arrivals into a KMedianSlidingWindow (identical substrate, so the update
// ledger must match BM_DistanceCallLedger bit-exactly), then 10
// QueryObjective rounds whose distance calls cover coreset selection PLUS
// the local-search swap evaluation. All counters are deterministic totals
// compared at 0% tolerance across kernel widths, like the fair-center
// ledger above.
void BM_KMedianLedger(benchmark::State& state) {
  const auto points = MakePoints(6000, 3, 7);
  CountingMetric counting(&EngineMetric());
  SlidingWindowOptions options;
  options.window_size = 2000;
  options.delta = 0.5;
  options.d_min = 0.5;
  options.d_max = 800.0;
  options.num_threads = 1;
  static const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  static const JonesFairCenter jones;
  KMedianSlidingWindow window(options, constraint, &counting, &jones);
  for (const Point& p : points) window.Update(p);
  const int64_t update_calls = counting.count();
  counting.Reset();
  double cost_total = 0.0;
  int64_t coreset_total = 0;
  int64_t centers_total = 0;
  for (int q = 0; q < 10; ++q) {
    QueryStats stats;
    auto solution = window.QueryObjective(&stats);
    cost_total += solution.ok() ? solution.value().value : -1.0;
    coreset_total += stats.coreset_size;
    centers_total +=
        solution.ok() ? static_cast<int64_t>(solution.value().centers.size())
                      : -1;
  }
  const int64_t query_calls = counting.count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&window);
  }
  state.SetLabel(simd::ActiveKernels().name);
  state.counters["distance_calls_total_update"] =
      static_cast<double>(update_calls);
  state.counters["distance_calls_total_query"] =
      static_cast<double>(query_calls);
  state.counters["kmedian_cost_total"] = cost_total;
  state.counters["kmedian_coreset_total"] =
      static_cast<double>(coreset_total);
  state.counters["kmedian_centers_total"] =
      static_cast<double>(centers_total);
}
BENCHMARK(BM_KMedianLedger);

void BM_QueryEngineSequential(benchmark::State& state) {
  RunQueryBench(state, /*num_threads=*/1);
}

void BM_QueryEngineParallel(benchmark::State& state) {
  RunQueryBench(state, static_cast<int>(state.range(0)));
}

void BM_SlidingWindowQuery(benchmark::State& state) {
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ColorConstraint constraint = ColorConstraint::Uniform(7, 2);
  const auto points = MakePoints(8000, 3, 7);

  SlidingWindowOptions options;
  options.window_size = 2000;
  options.delta = static_cast<double>(state.range(0)) / 10.0;
  options.adaptive_range = true;
  FairCenterSlidingWindow window(options, constraint, &metric, &jones);
  for (const Point& p : points) window.Update(p);
  for (auto _ : state) {
    auto result = window.Query();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SlidingWindowQuery)->Arg(5)->Arg(20)->Arg(40);

}  // namespace
}  // namespace fkc

int main(int argc, char** argv) {
  // Pre-scan for --threads (consumed here, not by google-benchmark).
  int threads = fkc::ThreadPool::HardwareThreads();
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
      if (threads <= 0) threads = fkc::ThreadPool::HardwareThreads();
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  fkc::g_parallel_threads = threads;

  benchmark::RegisterBenchmark("BM_UpdateEngineSequential",
                               fkc::BM_UpdateEngineSequential);
  benchmark::RegisterBenchmark("BM_UpdateEngineBatched",
                               fkc::BM_UpdateEngineBatched);
  benchmark::RegisterBenchmark("BM_UpdateEngineParallel",
                               fkc::BM_UpdateEngineParallel)
      ->Arg(fkc::g_parallel_threads);
  benchmark::RegisterBenchmark("BM_QueryEngineSequential",
                               fkc::BM_QueryEngineSequential);
  benchmark::RegisterBenchmark("BM_QueryEngineParallel",
                               fkc::BM_QueryEngineParallel)
      ->Arg(fkc::g_parallel_threads);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
