// Shard-scaling throughput bench for the serving layer: one process serving
// N independent sliding windows (tenants) over a shared thread pool, swept
// over shard counts. Records aggregate updates/s and queries/s per shard
// count into a BENCH_*.json for cross-PR tracking.
//
//   shard_scaling [--dataset=phones] [--points=60000] [--window=2000]
//                 [--max_shards=8] [--threads=0] [--batch=64]
//                 [--query_every=2048] [--delta=1.0]
//                 [--churn_tenants=32] [--churn_active=4]
//                 [--churn_cap=8] [--churn_ttl=4096]
//                 [--contention_clients=8] [--contention_points=1500]
//                 [--contention_idle_tenants=24] [--contention_idle_points=1500]
//                 [--contention_client_pause_ms=10] [--contention_query_pause_ms=10]
//                 [--contention_delta=1.0] [--contention_threads=2]
//                 [--zipf_s=1.1] [--zipf_tenants=0] [--create_every=256]
//                 [--stripes=0] [--objective=fair-center]
//                 [--burst_every=0] [--burst_size=0] [--cross_tenants=4]
//                 [--spill_dir=<tmp>] [--out=BENCH_shard_scaling.json]
//
// After the shard-count sweep, an eviction-churn scenario drives a much
// larger tenant population than the live-shard cap — the active set slides,
// idle tenants are spilled by periodic EvictIdle sweeps and rehydrated when
// the schedule returns to them — and records incremental-vs-full
// checkpoint sizes (the steady-state delta is a small fraction of the
// fleet blob) plus the DeltaLog's compaction counters. The scenario runs
// twice: once over the in-memory spill store and once over the durable
// FileSpillStore (under --spill_dir, default a fresh directory beside the
// output, removed afterwards), so the JSON records the wall-time price of
// spilling to disk.
//
// After churn, the multi-thread CONTENTION scenarios: N paced client
// threads ingesting hot tenant shards, a population of cold spilled
// tenants, a background thread running continuous QueryAll fleet scans,
// and a maintenance thread running eviction-sweep ticks. The schedule runs
// in several configurations: striped routing (the manager's own locking),
// every call wrapped in one external global mutex (the old
// single-internal-mutex serving layer), a single-stripe manager (isolating
// what the striping itself buys — this needs real cores to show up), a
// --zipf_s skewed entry where every client draws keys from one shared
// heavy-tailed tenant population, and a --create_every create-heavy entry
// whose key generations rotate mid-run so shard creation stays on the
// measured path. Each fleet scan pays a store read + full state
// deserialization per cold tenant, so it costs real time: under the global
// mutex that whole scan runs with every hot client blocked, while
// per-shard locking absorbs it into the clients' think time (measurable
// even on a single-core host); the striping and work-sharing wins on top
// need a multi-core runner.
//
// After contention, the CROSS-OBJECTIVE scenario: the same keyed stream is
// replayed into three fleets — default fair-center, default k-median, and a
// mixed fleet where half the tenants are overridden to k-median before
// their first arrival — recording per-objective ingest throughput, final
// objective values, window memory, and full-checkpoint size (the mixed
// fleet's blob carries the fkc-shards-v3 objective table; the pure
// fair-center fleet stays byte-compatible v2). Objective values and
// checkpoint bytes are deterministic; the throughputs are wall-clock.
//
// Wall-clock throughput is hardware-dependent; the JSON also records the
// deterministic per-run totals (updates, queries, shard memory, eviction /
// rehydration / checkpoint-size counters) which are stable across machines
// and usable for regression checks.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "metric/simd_kernels.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"
#include "serving/spill_store.h"
#include "stream/window_driver.h"

namespace {

struct RunResult {
  int shards = 0;
  fkc::ShardedThroughputReport report;
  int64_t memory_points = 0;
};

void PrintChurn(const char* backend, const fkc::ShardedChurnReport& churn) {
  std::printf(
      "# Eviction churn [%s spill]: %.0f updates/s, %lld evictions, "
      "%lld rehydrations, delta %lld B over %lld checkpoints "
      "(%lld rebases, log %lld B) vs %lld B full\n",
      backend, churn.UpdatesPerSecond(),
      static_cast<long long>(churn.evictions),
      static_cast<long long>(churn.rehydrations),
      static_cast<long long>(churn.delta_bytes),
      static_cast<long long>(churn.delta_checkpoints),
      static_cast<long long>(churn.rebases),
      static_cast<long long>(churn.log_bytes),
      static_cast<long long>(churn.full_checkpoint_bytes));
}

void WriteChurnJson(std::ofstream& out, const char* backend,
                    const fkc::ShardedChurnReport& churn) {
  out << "    \"" << backend << "\": {\"updates\": " << churn.updates
      << ", \"updates_per_s\": "
      << fkc::StrFormat("%.1f", churn.UpdatesPerSecond())
      << ", \"evictions\": " << churn.evictions
      << ", \"rehydrations\": " << churn.rehydrations
      << ", \"total_shards\": " << churn.total_shards
      << ", \"live_shards\": " << churn.live_shards
      << ", \"delta_checkpoints\": " << churn.delta_checkpoints
      << ", \"delta_bytes\": " << churn.delta_bytes
      << ", \"rebases\": " << churn.rebases
      << ", \"log_bytes\": " << churn.log_bytes
      << ", \"full_checkpoint_bytes\": " << churn.full_checkpoint_bytes
      << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "phones";
  std::string out_path = "BENCH_shard_scaling.json";
  int64_t points = 60000;
  int64_t window = 2000;
  int64_t max_shards = 8;
  int64_t threads = 0;  // all hardware threads
  int64_t batch = 64;
  int64_t query_every = 2048;
  double delta = 1.0;
  int64_t churn_tenants = 32;
  int64_t churn_active = 4;
  int64_t churn_cap = 8;
  int64_t churn_ttl = 4096;
  int64_t contention_clients = 8;
  int64_t contention_points = 1500;
  int64_t contention_query_pause_ms = 10;
  int64_t contention_client_pause_ms = 10;
  int64_t contention_idle_tenants = 24;
  int64_t contention_idle_points = 1500;
  int64_t contention_threads = 2;
  double contention_delta = 1.0;
  double zipf_s = 1.1;
  int64_t zipf_tenants = 0;
  int64_t create_every = 256;
  int64_t stripes = 0;
  std::string objective = "fair-center";
  int64_t burst_every = 0;
  int64_t burst_size = 0;
  int64_t cross_tenants = 4;
  std::string spill_dir;

  fkc::FlagParser flags;
  flags.AddString("dataset", &dataset, "dataset name (see datasets/registry)");
  flags.AddString("out", &out_path, "output JSON path");
  flags.AddInt64("points", &points, "total keyed arrivals per run");
  flags.AddInt64("window", &window, "per-shard window size");
  flags.AddInt64("max_shards", &max_shards,
                 "sweep shard counts 1,2,4,... up to this");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("batch", &batch, "keyed arrivals per IngestBatch");
  flags.AddInt64("query_every", &query_every,
                 "QueryAll fan-out period in arrivals (0 = never)");
  flags.AddDouble("delta", &delta, "coreset precision delta");
  flags.AddInt64("churn_tenants", &churn_tenants,
                 "tenant population of the eviction-churn scenario");
  flags.AddInt64("churn_active", &churn_active,
                 "simultaneously active tenants in the churn scenario");
  flags.AddInt64("churn_cap", &churn_cap,
                 "max_live_shards (LRU cap) in the churn scenario");
  flags.AddInt64("churn_ttl", &churn_ttl,
                 "EvictIdle TTL in arrivals for the churn scenario");
  flags.AddInt64("contention_clients", &contention_clients,
                 "client threads (= tenant shards) in the contention "
                 "scenario (0 = skip it)");
  flags.AddInt64("contention_points", &contention_points,
                 "arrivals each contention client ingests");
  flags.AddInt64("contention_query_pause_ms", &contention_query_pause_ms,
                 "pause between background QueryAll rounds in the "
                 "contention scenario");
  flags.AddInt64("contention_client_pause_ms", &contention_client_pause_ms,
                 "per-client think time between ingest batches in the "
                 "contention scenario (paced arrival streams)");
  flags.AddInt64("contention_idle_tenants", &contention_idle_tenants,
                 "cold spilled tenants each QueryAll round must scan in "
                 "the contention scenario");
  flags.AddInt64("contention_idle_points", &contention_idle_points,
                 "arrivals pre-ingested into each cold tenant (sets the "
                 "per-shard cost of a fleet scan)");
  flags.AddInt64("contention_threads", &contention_threads,
                 "manager pool threads in the contention scenario (the "
                 "work-sharing pool concurrent IngestBatch callers and "
                 "QueryAll rounds interleave on; 1 = no pool)");
  flags.AddDouble("contention_delta", &contention_delta,
                  "coreset precision delta for the contention scenario");
  flags.AddDouble("zipf_s", &zipf_s,
                  "Zipf skew of the skewed contention entry (heavy-tailed "
                  "tenant popularity; 0 = skip the skewed entry)");
  flags.AddInt64("zipf_tenants", &zipf_tenants,
                 "tenant population of the skewed entry (0 = 4x clients)");
  flags.AddInt64("create_every", &create_every,
                 "arrivals between key-generation rotations in the "
                 "create-heavy contention entry (0 = skip it)");
  flags.AddInt64("stripes", &stripes,
                 "routing stripes for every manager (0 = auto; rounded up "
                 "to a power of two)");
  flags.AddString("objective", &objective,
                  "fleet-default clustering objective of the shard-count "
                  "sweep: fair-center or k-median");
  flags.AddInt64("burst_every", &burst_every,
                 "burst-arrival period of the sweep in arrivals (0 = "
                 "steady batches, no bursts)");
  flags.AddInt64("burst_size", &burst_size,
                 "arrivals delivered as one oversized IngestBatch at the "
                 "start of each burst period (0 = 8x batch)");
  flags.AddInt64("cross_tenants", &cross_tenants,
                 "tenant shards in the cross-objective scenario (0 = "
                 "skip it)");
  flags.AddString("spill_dir", &spill_dir,
                  "directory for the FileSpillStore churn run (default: "
                  "<out>.spill, removed afterwards)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const int num_threads = fkc::ResolveThreadCount(threads);
  auto objective_kind = fkc::ParseObjectiveTag(objective);
  if (!objective_kind.ok()) {
    std::fprintf(stderr, "%s\n",
                 objective_kind.status().ToString().c_str());
    return 1;
  }

  // The canonical experiment configuration (sum k_i = 14, proportional
  // caps); adaptive range so no distance bounds are needed per tenant.
  const auto prepared = fkc::bench::Prepare(dataset, points, metric);

  std::printf(
      "# Shard-scaling throughput: %lld arrivals, window %lld, batch %lld, "
      "%d threads, QueryAll every %lld\n",
      static_cast<long long>(points), static_cast<long long>(window),
      static_cast<long long>(batch), num_threads,
      static_cast<long long>(query_every));
  std::printf("%-10s %8s %14s %14s %12s %12s %12s\n", "dataset", "shards",
              "updates_per_s", "queries_per_s", "updates", "queries",
              "memory_pts");

  std::vector<RunResult> results;
  for (int64_t shards = 1; shards <= max_shards; shards *= 2) {
    fkc::serving::ShardManagerOptions options;
    options.objective = objective_kind.value();
    options.window.window_size = window;
    options.window.delta = delta;
    options.window.adaptive_range = true;
    options.num_threads = num_threads;
    options.num_stripes = static_cast<int>(stripes);
    fkc::serving::ShardManager manager(options, prepared.constraint, &metric,
                                       &jones);

    std::vector<std::string> keys;
    for (int64_t s = 0; s < shards; ++s) {
      keys.push_back(fkc::StrFormat("tenant-%02lld", static_cast<long long>(s)));
    }

    auto stream = fkc::datasets::MakeStream(prepared.dataset);
    fkc::ShardedRunOptions run_options;
    run_options.stream_length = points;
    run_options.batch_size = batch;
    run_options.query_every = query_every;
    run_options.burst_every = burst_every;
    run_options.burst_size = burst_size;

    RunResult result;
    result.shards = static_cast<int>(shards);
    result.report = fkc::RunShardedThroughput(&manager, stream.get(), keys,
                                              run_options);
    result.memory_points = manager.TotalMemory().TotalPoints();
    results.push_back(result);

    std::printf("%-10s %8d %14.0f %14.1f %12lld %12lld %12lld\n",
                dataset.c_str(), result.shards,
                result.report.UpdatesPerSecond(),
                result.report.QueriesPerSecond(),
                static_cast<long long>(result.report.updates),
                static_cast<long long>(result.report.queries),
                static_cast<long long>(result.memory_points));
  }

  // --- Eviction-churn scenario: tenants arriving and expiring under an LRU
  // cap, with periodic EvictIdle sweeps and DeltaLog captures — once per
  // spill backend. The schedules are identical, so the deterministic
  // counters must agree between the two runs; the wall times show what
  // durability costs. ---
  std::printf(
      "# Eviction churn: %lld tenants (%lld active, cap %lld, ttl %lld)\n",
      static_cast<long long>(churn_tenants),
      static_cast<long long>(churn_active), static_cast<long long>(churn_cap),
      static_cast<long long>(churn_ttl));
  // Only a directory this run invented gets deleted afterwards: blowing
  // away a user-supplied --spill_dir (which may pre-exist and hold foreign
  // files) is not this bench's call.
  const bool owns_spill_dir = spill_dir.empty();
  if (owns_spill_dir) spill_dir = out_path + ".spill";
  auto run_churn = [&](std::shared_ptr<fkc::serving::SpillStore> store) {
    fkc::serving::ShardManagerOptions churn_options;
    churn_options.window.window_size = window;
    churn_options.window.delta = delta;
    churn_options.window.adaptive_range = true;
    churn_options.num_threads = num_threads;
    churn_options.num_stripes = static_cast<int>(stripes);
    churn_options.max_live_shards = churn_cap;
    churn_options.spill_store = std::move(store);
    fkc::serving::ShardManager manager(churn_options, prepared.constraint,
                                       &metric, &jones);
    auto stream = fkc::datasets::MakeStream(prepared.dataset);
    fkc::ShardedChurnOptions churn_run;
    churn_run.stream_length = points;
    churn_run.batch_size = batch;
    churn_run.tenants = churn_tenants;
    churn_run.active = churn_active;
    churn_run.idle_ttl = churn_ttl;
    return fkc::RunShardedChurn(&manager, stream.get(), churn_run);
  };

  const fkc::ShardedChurnReport churn = run_churn(nullptr);  // in-memory
  PrintChurn("memory", churn);
  const fkc::ShardedChurnReport churn_file =
      run_churn(std::make_shared<fkc::serving::FileSpillStore>(spill_dir));
  PrintChurn("file", churn_file);
  if (owns_spill_dir) {
    std::error_code spill_cleanup;  // best-effort; the bench ran either way
    std::filesystem::remove_all(spill_dir, spill_cleanup);
  }

  // --- Contention scenarios. The same paced-clients schedule runs in
  // several configurations: striped routing vs the emulated single global
  // mutex vs a single-stripe manager (isolating what the striping itself
  // buys), plus a Zipf-skewed entry (shared heavy-tailed tenants — hot
  // stripes) and a create-heavy entry (key generations rotating mid-run,
  // so shard creation stays on the measured path). `contention_threads`
  // gives the manager a pool the concurrent IngestBatch callers and
  // QueryAll rounds interleave on (work sharing). ---
  fkc::ShardedContentionReport contention, contention_global,
      contention_single_stripe, contention_zipf, contention_create;
  if (contention_clients > 0) {
    // The contention runs replay prefixes of the same prepared dataset, so
    // fit the scenario to the stream: the cold setup may take at most half
    // of it, and the measured workload shares the rest. The warm-up set is
    // the larger of the client keys and the Zipf rank population.
    const int64_t zipf_warm =
        zipf_s > 0.0
            ? (zipf_tenants > 0 ? zipf_tenants : 4 * contention_clients)
            : 0;
    const int64_t warm_keys = std::max(contention_clients, zipf_warm);
    if (contention_idle_tenants > 0) {
      const int64_t max_idle = (points / 2) / contention_idle_tenants;
      if (contention_idle_points > max_idle) contention_idle_points = max_idle;
      FKC_CHECK_GT(contention_idle_points, 0)
          << "stream too short for cold tenants";
    }
    const int64_t setup_demand =
        contention_idle_tenants * contention_idle_points + warm_keys;
    if (contention_clients * contention_points + setup_demand > points) {
      contention_points = (points - setup_demand) / contention_clients;
      FKC_CHECK_GT(contention_points, 0);
    }
    std::printf(
        "# Contention: %lld clients x %lld arrivals (pause %lld ms), "
        "%lld cold tenants x %lld, QueryAll pause %lld ms, %lld pool "
        "threads\n",
        static_cast<long long>(contention_clients),
        static_cast<long long>(contention_points),
        static_cast<long long>(contention_client_pause_ms),
        static_cast<long long>(contention_idle_tenants),
        static_cast<long long>(contention_idle_points),
        static_cast<long long>(contention_query_pause_ms),
        static_cast<long long>(contention_threads));
    struct ContentionConfig {
      bool global_mutex = false;
      int num_stripes = 0;  // 0 = the --stripes flag (itself 0 = auto)
      double zipf_s = 0.0;
      int64_t create_every = 0;
    };
    auto run_contention = [&](const ContentionConfig& config) {
      fkc::serving::ShardManagerOptions options;
      options.window.window_size = window;
      options.window.delta = contention_delta;
      options.window.adaptive_range = true;
      options.num_threads = static_cast<int>(contention_threads);
      options.num_stripes = config.num_stripes != 0
                                ? config.num_stripes
                                : static_cast<int>(stripes);
      fkc::serving::ShardManager manager(options, prepared.constraint,
                                         &metric, &jones);
      auto stream = fkc::datasets::MakeStream(prepared.dataset);
      fkc::ShardedContentionOptions contention_run;
      contention_run.client_threads = static_cast<int>(contention_clients);
      contention_run.points_per_client = contention_points;
      contention_run.batch_size = batch;
      contention_run.query_pause_ms = contention_query_pause_ms;
      contention_run.client_pause_ms = contention_client_pause_ms;
      contention_run.idle_tenants = contention_idle_tenants;
      contention_run.idle_points = contention_idle_points;
      contention_run.global_mutex = config.global_mutex;
      contention_run.zipf_s = config.zipf_s;
      contention_run.zipf_tenants = zipf_tenants;
      contention_run.create_every = config.create_every;
      return fkc::RunShardedContention(&manager, stream.get(),
                                       contention_run);
    };
    auto print_contention = [](const char* label,
                               const fkc::ShardedContentionReport& r) {
      std::printf(
          "#   %-16s %10.0f updates/s (%lld query rounds, %lld ticks, "
          "%d stripes, hot %.2f, steals %lld)\n",
          label, r.UpdatesPerSecond(),
          static_cast<long long>(r.query_rounds),
          static_cast<long long>(r.maintenance_ticks), r.stripes,
          r.stripe_hot_ratio, static_cast<long long>(r.pool_steals));
    };
    contention_global = run_contention({/*global_mutex=*/true});
    print_contention("global mutex:", contention_global);
    contention_single_stripe = run_contention({false, /*num_stripes=*/1});
    print_contention("single stripe:", contention_single_stripe);
    contention = run_contention({});
    print_contention("striped:", contention);
    if (zipf_s > 0.0) {
      ContentionConfig config;
      config.zipf_s = zipf_s;
      contention_zipf = run_contention(config);
      print_contention("zipf skew:", contention_zipf);
    }
    if (create_every > 0) {
      ContentionConfig config;
      config.create_every = create_every;
      contention_create = run_contention(config);
      print_contention("create heavy:", contention_create);
    }
    const double speedup =
        contention_global.UpdatesPerSecond() > 0.0
            ? contention.UpdatesPerSecond() /
                  contention_global.UpdatesPerSecond()
            : 0.0;
    const double stripe_speedup =
        contention_single_stripe.UpdatesPerSecond() > 0.0
            ? contention.UpdatesPerSecond() /
                  contention_single_stripe.UpdatesPerSecond()
            : 0.0;
    std::printf("#   striped vs global %.2fx, vs single stripe %.2fx\n",
                speedup, stripe_speedup);
  }

  // --- Cross-objective scenario: the same keyed stream into a fair-center
  // fleet, a k-median fleet, and a mixed fleet (odd tenants overridden to
  // k-median before their first arrival). Objective values, memory, and
  // checkpoint bytes are deterministic; updates/s is wall-clock. ---
  struct CrossObjectiveResult {
    std::string mode;
    fkc::ShardedThroughputReport report;
    int64_t memory_points = 0;
    int64_t checkpoint_bytes = 0;
    double objective_value_sum = 0.0;
    int64_t answered = 0;
  };
  std::vector<CrossObjectiveResult> cross_results;
  if (cross_tenants > 0) {
    auto run_cross = [&](const char* mode, fkc::ObjectiveKind kind,
                         bool mixed) {
      fkc::serving::ShardManagerOptions options;
      options.objective = kind;
      options.window.window_size = window;
      options.window.delta = delta;
      options.window.adaptive_range = true;
      options.num_threads = num_threads;
      options.num_stripes = static_cast<int>(stripes);
      fkc::serving::ShardManager manager(options, prepared.constraint,
                                         &metric, &jones);
      std::vector<std::string> keys;
      for (int64_t s = 0; s < cross_tenants; ++s) {
        keys.push_back(
            fkc::StrFormat("tenant-%02lld", static_cast<long long>(s)));
        if (mixed && (s % 2) == 1) {
          FKC_CHECK_OK(manager.SetTenantObjective(
              keys.back(), fkc::ObjectiveKind::kKMedian));
        }
      }
      auto stream = fkc::datasets::MakeStream(prepared.dataset);
      fkc::ShardedRunOptions run_options;
      run_options.stream_length = points;
      run_options.batch_size = batch;
      run_options.query_every = 0;  // one final query below, not periodic
      run_options.burst_every = burst_every;
      run_options.burst_size = burst_size;
      CrossObjectiveResult result;
      result.mode = mode;
      result.report =
          fkc::RunShardedThroughput(&manager, stream.get(), keys, run_options);
      for (const auto& answer : manager.QueryAll()) {
        if (!answer.solution.ok()) continue;
        result.objective_value_sum += answer.solution.value().value;
        ++result.answered;
      }
      result.memory_points = manager.TotalMemory().TotalPoints();
      auto blob = manager.CheckpointAll();
      FKC_CHECK_OK(blob.status());
      result.checkpoint_bytes = static_cast<int64_t>(blob.value().size());
      return result;
    };
    std::printf("# Cross objective: %lld tenants, %lld arrivals\n",
                static_cast<long long>(cross_tenants),
                static_cast<long long>(points));
    cross_results.push_back(
        run_cross("fair_center", fkc::ObjectiveKind::kFairCenter, false));
    cross_results.push_back(
        run_cross("k_median", fkc::ObjectiveKind::kKMedian, false));
    cross_results.push_back(
        run_cross("mixed", fkc::ObjectiveKind::kFairCenter, true));
    for (const auto& r : cross_results) {
      std::printf(
          "#   %-12s %10.0f updates/s, value sum %.3f over %lld shards, "
          "%lld pts, checkpoint %lld B\n",
          r.mode.c_str(), r.report.UpdatesPerSecond(), r.objective_value_sum,
          static_cast<long long>(r.answered),
          static_cast<long long>(r.memory_points),
          static_cast<long long>(r.checkpoint_bytes));
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"shard_scaling\",\n";
  out << "  \"simd_kernels\": \"" << fkc::simd::ActiveKernels().name
      << "\",\n";
  out << "  \"dataset\": \"" << dataset << "\",\n";
  out << "  \"points\": " << points << ",\n  \"window\": " << window
      << ",\n  \"batch\": " << batch << ",\n  \"threads\": " << num_threads
      << ",\n  \"query_every\": " << query_every << ",\n";
  out << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"shards\": " << r.shards
        << ", \"updates\": " << r.report.updates
        << ", \"queries\": " << r.report.queries
        << ", \"updates_per_s\": " << fkc::StrFormat(
               "%.1f", r.report.UpdatesPerSecond())
        << ", \"queries_per_s\": " << fkc::StrFormat(
               "%.1f", r.report.QueriesPerSecond())
        << ", \"memory_points\": " << r.memory_points << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"churn\": {\"tenants\": " << churn_tenants
      << ", \"active\": " << churn_active << ", \"cap\": " << churn_cap
      << ", \"ttl\": " << churn_ttl << ",\n";
  WriteChurnJson(out, "memory", churn);
  out << ",\n";
  WriteChurnJson(out, "file", churn_file);
  out << "\n  }";
  if (contention_clients > 0) {
    const double speedup =
        contention_global.UpdatesPerSecond() > 0.0
            ? contention.UpdatesPerSecond() /
                  contention_global.UpdatesPerSecond()
            : 0.0;
    const double stripe_speedup =
        contention_single_stripe.UpdatesPerSecond() > 0.0
            ? contention.UpdatesPerSecond() /
                  contention_single_stripe.UpdatesPerSecond()
            : 0.0;
    auto write_contention = [&out](const char* name,
                                   const fkc::ShardedContentionReport& r) {
      out << "    \"" << name << "\": {\"updates\": " << r.updates
          << ", \"updates_per_s\": "
          << fkc::StrFormat("%.1f", r.UpdatesPerSecond())
          << ", \"shards\": " << r.shards << ", \"stripes\": " << r.stripes
          << ", \"pool_steals\": " << r.pool_steals
          << ", \"stripe_hot_ratio\": "
          << fkc::StrFormat("%.3f", r.stripe_hot_ratio)
          << ", \"query_rounds\": " << r.query_rounds
          << ", \"maintenance_ticks\": " << r.maintenance_ticks << "}";
    };
    out << ",\n  \"contention\": {\"client_threads\": " << contention_clients
        << ", \"points_per_client\": " << contention_points
        << ", \"idle_tenants\": " << contention_idle_tenants
        << ", \"idle_points\": " << contention_idle_points
        << ", \"client_pause_ms\": " << contention_client_pause_ms
        << ", \"query_pause_ms\": " << contention_query_pause_ms
        << ", \"pool_threads\": " << contention_threads
        << ", \"host_threads\": " << fkc::ThreadPool::HardwareThreads()
        << ", \"zipf_s\": " << fkc::StrFormat("%.2f", zipf_s)
        << ", \"create_every\": " << create_every << ",\n";
    write_contention("global_mutex", contention_global);
    out << ",\n";
    write_contention("single_stripe", contention_single_stripe);
    out << ",\n";
    write_contention("per_shard", contention);
    if (zipf_s > 0.0) {
      out << ",\n";
      write_contention("zipf", contention_zipf);
    }
    if (create_every > 0) {
      out << ",\n";
      write_contention("create_heavy", contention_create);
    }
    out << ",\n    \"speedup\": " << fkc::StrFormat("%.2f", speedup)
        << ",\n    \"stripe_speedup\": "
        << fkc::StrFormat("%.2f", stripe_speedup) << "\n  }";
  }
  if (!cross_results.empty()) {
    out << ",\n  \"cross_objective\": {\"tenants\": " << cross_tenants
        << ", \"burst_every\": " << burst_every
        << ", \"burst_size\": " << burst_size << ",\n";
    for (size_t i = 0; i < cross_results.size(); ++i) {
      const CrossObjectiveResult& r = cross_results[i];
      out << "    \"" << r.mode << "\": {\"updates\": " << r.report.updates
          << ", \"updates_per_s\": "
          << fkc::StrFormat("%.1f", r.report.UpdatesPerSecond())
          << ", \"bursts\": " << r.report.bursts
          << ", \"shards\": " << r.answered
          << ", \"objective_value_sum\": "
          << fkc::StrFormat("%.3f", r.objective_value_sum)
          << ", \"memory_points\": " << r.memory_points
          << ", \"checkpoint_bytes\": " << r.checkpoint_bytes << "}"
          << (i + 1 < cross_results.size() ? "," : "") << "\n";
    }
    out << "  }";
  }
  out << "\n}\n";
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
