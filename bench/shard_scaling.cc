// Shard-scaling throughput bench for the serving layer: one process serving
// N independent sliding windows (tenants) over a shared thread pool, swept
// over shard counts. Records aggregate updates/s and queries/s per shard
// count into a BENCH_*.json for cross-PR tracking.
//
//   shard_scaling [--dataset=phones] [--points=60000] [--window=2000]
//                 [--max_shards=8] [--threads=0] [--batch=64]
//                 [--query_every=2048] [--delta=1.0]
//                 [--out=BENCH_shard_scaling.json]
//
// Wall-clock throughput is hardware-dependent; the JSON also records the
// deterministic per-run totals (updates, queries, shard memory) which are
// stable across machines and usable for regression checks.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "metric/simd_kernels.h"
#include "sequential/jones_fair_center.h"
#include "serving/shard_manager.h"
#include "stream/window_driver.h"

namespace {

struct RunResult {
  int shards = 0;
  fkc::ShardedThroughputReport report;
  int64_t memory_points = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "phones";
  std::string out_path = "BENCH_shard_scaling.json";
  int64_t points = 60000;
  int64_t window = 2000;
  int64_t max_shards = 8;
  int64_t threads = 0;  // all hardware threads
  int64_t batch = 64;
  int64_t query_every = 2048;
  double delta = 1.0;

  fkc::FlagParser flags;
  flags.AddString("dataset", &dataset, "dataset name (see datasets/registry)");
  flags.AddString("out", &out_path, "output JSON path");
  flags.AddInt64("points", &points, "total keyed arrivals per run");
  flags.AddInt64("window", &window, "per-shard window size");
  flags.AddInt64("max_shards", &max_shards,
                 "sweep shard counts 1,2,4,... up to this");
  fkc::AddThreadsFlag(&flags, &threads);
  flags.AddInt64("batch", &batch, "keyed arrivals per IngestBatch");
  flags.AddInt64("query_every", &query_every,
                 "QueryAll fan-out period in arrivals (0 = never)");
  flags.AddDouble("delta", &delta, "coreset precision delta");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const int num_threads = fkc::ResolveThreadCount(threads);

  // The canonical experiment configuration (sum k_i = 14, proportional
  // caps); adaptive range so no distance bounds are needed per tenant.
  const auto prepared = fkc::bench::Prepare(dataset, points, metric);

  std::printf(
      "# Shard-scaling throughput: %lld arrivals, window %lld, batch %lld, "
      "%d threads, QueryAll every %lld\n",
      static_cast<long long>(points), static_cast<long long>(window),
      static_cast<long long>(batch), num_threads,
      static_cast<long long>(query_every));
  std::printf("%-10s %8s %14s %14s %12s %12s %12s\n", "dataset", "shards",
              "updates_per_s", "queries_per_s", "updates", "queries",
              "memory_pts");

  std::vector<RunResult> results;
  for (int64_t shards = 1; shards <= max_shards; shards *= 2) {
    fkc::serving::ShardManagerOptions options;
    options.window.window_size = window;
    options.window.delta = delta;
    options.window.adaptive_range = true;
    options.num_threads = num_threads;
    fkc::serving::ShardManager manager(options, prepared.constraint, &metric,
                                       &jones);

    std::vector<std::string> keys;
    for (int64_t s = 0; s < shards; ++s) {
      keys.push_back(fkc::StrFormat("tenant-%02lld", static_cast<long long>(s)));
    }

    auto stream = fkc::datasets::MakeStream(prepared.dataset);
    fkc::ShardedRunOptions run_options;
    run_options.stream_length = points;
    run_options.batch_size = batch;
    run_options.query_every = query_every;

    RunResult result;
    result.shards = static_cast<int>(shards);
    result.report = fkc::RunShardedThroughput(&manager, stream.get(), keys,
                                              run_options);
    result.memory_points = manager.TotalMemory().TotalPoints();
    results.push_back(result);

    std::printf("%-10s %8d %14.0f %14.1f %12lld %12lld %12lld\n",
                dataset.c_str(), result.shards,
                result.report.UpdatesPerSecond(),
                result.report.QueriesPerSecond(),
                static_cast<long long>(result.report.updates),
                static_cast<long long>(result.report.queries),
                static_cast<long long>(result.memory_points));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"shard_scaling\",\n";
  out << "  \"simd_kernels\": \"" << fkc::simd::ActiveKernels().name
      << "\",\n";
  out << "  \"dataset\": \"" << dataset << "\",\n";
  out << "  \"points\": " << points << ",\n  \"window\": " << window
      << ",\n  \"batch\": " << batch << ",\n  \"threads\": " << num_threads
      << ",\n  \"query_every\": " << query_every << ",\n";
  out << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"shards\": " << r.shards
        << ", \"updates\": " << r.report.updates
        << ", \"queries\": " << r.report.queries
        << ", \"updates_per_s\": " << fkc::StrFormat(
               "%.1f", r.report.UpdatesPerSecond())
        << ", \"queries_per_s\": " << fkc::StrFormat(
               "%.1f", r.report.QueriesPerSecond())
        << ", \"memory_points\": " << r.memory_points << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
