// Extension bench: robust fair center in sliding windows — the direction the
// paper's conclusion names as future work. Streams a clustered dataset with
// injected far-away noise and sweeps the outlier budget z, comparing the
// plain Query against QueryRobust.
//
// Expected shape: the plain query's radius is dominated by whatever noise is
// currently in the window; the robust radius collapses to the cluster scale
// once z reaches the per-window noise count, and the outlier budget is never
// exceeded.
#include <cmath>

#include "bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/jones_fair_center.h"
#include "sequential/radius.h"
#include "stream/reference_window.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  int64_t window = 1000;
  int64_t stream_length = 4000;
  double noise_rate = 0.004;  // ~4 outliers per window in expectation
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("stream", &stream_length, "points fed");
  flags.AddDouble("noise_rate", &noise_rate, "per-point noise probability");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  fkc::bench::PrintPreamble(
      "robust fair center in sliding windows (paper's future-work extension)",
      "plain (z=0) radius stuck at the noise scale; robust radius drops to "
      "the cluster scale once z covers the in-window noise; outliers <= z. "
      "Valid regime: z well below the coreset size — coreset points carry "
      "multiplicity, so budgets near |coreset| discard whole regions (the "
      "principled fix is k+z+1-sized validation sets as in the robust "
      "k-center sliding-window work [9], left as the paper leaves it: "
      "future work)");

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;
  const fkc::ColorConstraint constraint({2, 2});

  fkc::SlidingWindowOptions options;
  options.window_size = window;
  options.delta = 0.5;
  options.adaptive_range = true;
  fkc::FairCenterSlidingWindow algo(options, constraint, &metric, &jones);
  fkc::ReferenceWindow truth(window);

  fkc::Rng rng(42);
  for (int64_t t = 1; t <= stream_length; ++t) {
    fkc::Point p({0.0, 0.0}, static_cast<int>(rng.NextBounded(2)));
    const double cluster = static_cast<double>(rng.NextBounded(3)) * 40.0;
    p.coords[0] = cluster + rng.NextGaussian(0, 1.0);
    p.coords[1] = cluster + rng.NextGaussian(0, 1.0);
    if (rng.NextBernoulli(noise_rate)) {
      p.coords[0] += rng.NextGaussian(0, 20000.0);  // far-away noise
      p.coords[1] += rng.NextGaussian(0, 20000.0);
    }
    p.arrival = t;
    truth.Update(p);
    algo.Update(std::move(p));
  }

  const auto window_points = truth.Snapshot();
  std::printf("%-8s %14s %14s %12s %12s\n", "z", "radius", "coreset_pts",
              "outliers", "query_ms");
  for (int z : {0, 1, 2, 4, 8}) {
    fkc::QueryStats stats;
    fkc::Stopwatch timer;
    auto result = algo.QueryRobust(z, &stats);
    const double query_ms = timer.ElapsedMillis();
    FKC_CHECK(result.ok()) << result.status().ToString();
    FKC_CHECK(constraint.IsFeasible(result.value().centers));
    // Evaluate over the true window, excluding its worst z points (the
    // outlier semantics of the robust objective).
    std::vector<double> distances;
    distances.reserve(window_points.size());
    for (const fkc::Point& q : window_points) {
      distances.push_back(
          fkc::DistanceToSet(metric, q, result.value().centers));
    }
    std::sort(distances.begin(), distances.end());
    const size_t keep = distances.size() > static_cast<size_t>(z)
                            ? distances.size() - static_cast<size_t>(z)
                            : 0;
    const double radius = keep == 0 ? 0.0 : distances[keep - 1];
    std::printf("%-8d %14.3f %14lld %12zu %12.3f\n", z, radius,
                static_cast<long long>(stats.coreset_size),
                result.value().outlier_indices.size(), query_ms);
  }
  return 0;
}
