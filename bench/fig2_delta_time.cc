// Figure 2: update time (top) and query time (bottom, log scale in the
// paper) as a function of the coreset precision delta — same experiment grid
// as Figure 1.
//
// Paper's findings to reproduce:
//   * Baseline update time is next-to-zero (they only store the point);
//     streaming update stays a fraction of a millisecond, decreasing in
//     delta (smaller coresets).
//   * Streaming query time is 1-2 orders of magnitude below Jones, which is
//     in turn ~2 orders below ChenEtAl; OursOblivious is faster than Ours
//     (fewer active guesses).
#include "bench_util.h"
#include "common/flags.h"
#include "delta_sweep.h"

int main(int argc, char** argv) {
  fkc::bench::DeltaSweepConfig config;
  // Slightly smaller default than fig1: timing differences show at any
  // scale, and ChenEtAl dominates the run time.
  config.num_queries = 8;
  if (!fkc::bench::ParseDeltaSweepFlags(argc, argv, &config)) return 0;

  fkc::bench::PrintPreamble(
      "Figure 2 (update and query time vs delta)",
      "update: baselines ~0, streaming < a few tenths of a ms, decreasing "
      "in delta; query: Ours/OursOblivious orders of magnitude faster than "
      "Jones, Jones orders faster than ChenEtAl");
  std::printf("# window=%lld queries=%lld stride=%lld\n",
              static_cast<long long>(config.window_size),
              static_cast<long long>(config.num_queries),
              static_cast<long long>(config.query_stride));
  fkc::bench::PrintHeader("delta");

  fkc::bench::RunDeltaSweepRepeats(config, "fig2");
  return 0;
}
