// Ablation: the Corollary-2 validation-only variant (Lite) against the full
// coreset algorithm at the two ends of its delta range.
//
// The paper observes that delta = 4 "is equivalent to using a coreset
// comparable in size to the validation set, i.e. the one yielding the result
// of Corollary 2". This bench puts the three side by side: Lite should track
// Full@delta=4 in memory and be the cheapest to update, while Full@delta=0.5
// buys accuracy with memory.
#include "bench_util.h"
#include "common/flags.h"
#include "core/fair_center_lite.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/jones_fair_center.h"

int main(int argc, char** argv) {
  fkc::FlagParser flags;
  int64_t window = 2000;
  int64_t queries = 8;
  int64_t stride = 25;
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("queries", &queries, "number of measured windows");
  flags.AddInt64("stride", &stride, "arrivals between measured windows");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  fkc::bench::PrintPreamble(
      "Corollary-2 (Lite) ablation",
      "Lite memory ~ Full@delta=4 and far below Full@delta=0.5; Lite ratio "
      "worst but constant-factor; x column: 0.5/4 = Full's delta, 99 = Lite");
  fkc::bench::PrintHeader("delta");

  const fkc::EuclideanMetric metric;
  const fkc::JonesFairCenter jones;

  for (const std::string& name : fkc::datasets::RealDatasetNames()) {
    const int64_t stream_length = window + window / 2 + queries * stride;
    fkc::bench::PreparedDataset prepared =
        fkc::bench::Prepare(name, stream_length, metric);

    fkc::SlidingWindowOptions fine;
    fine.window_size = window;
    fine.delta = 0.5;
    fine.d_min = prepared.d_min;
    fine.d_max = prepared.d_max;
    fkc::FairCenterSlidingWindow full_fine(fine, prepared.constraint, &metric,
                                           &jones);
    fkc::SlidingWindowOptions coarse = fine;
    coarse.delta = 4.0;
    fkc::FairCenterSlidingWindow full_coarse(coarse, prepared.constraint,
                                             &metric, &jones);
    fkc::FairCenterLite lite(fine, prepared.constraint, &metric, &jones);

    fkc::WindowDriver driver(&metric, prepared.constraint, window);
    driver.AddStreaming("Full@0.5", &full_fine);
    driver.AddStreaming("Full@4.0", &full_coarse);
    driver.AddStreaming("Lite", &lite);
    driver.AddBaseline("Jones", &jones);

    auto stream = fkc::datasets::MakeStream(std::move(prepared.dataset));
    fkc::DriverOptions run;
    run.stream_length = stream_length;
    run.num_queries = queries;
    run.query_stride = stride;
    const auto reports = driver.Run(stream.get(), run);
    fkc::bench::PrintRow(name, reports[0], 0.5);
    fkc::bench::PrintRow(name, reports[1], 4.0);
    fkc::bench::PrintRow(name, reports[2], 99.0);
    fkc::bench::PrintRow(name, reports[3], 0.0);
  }
  return 0;
}
