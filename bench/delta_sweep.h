// The shared delta-sweep experiment behind Figures 1 and 2: for each
// dataset, all four algorithms (Ours / OursOblivious across the delta grid,
// Jones and ChenEtAl on the full window) run over one stream pass, measured
// on consecutive windows.
#ifndef FKC_BENCH_DELTA_SWEEP_H_
#define FKC_BENCH_DELTA_SWEEP_H_

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/fair_center_sliding_window.h"
#include "sequential/chen_matroid_center.h"
#include "sequential/jones_fair_center.h"

namespace fkc {
namespace bench {

struct DeltaSweepConfig {
  int64_t window_size = 2000;
  int64_t num_queries = 10;
  int64_t query_stride = 20;
  std::vector<double> deltas = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  std::vector<std::string> dataset_names = {"phones", "higgs", "covtype"};
  double beta = 2.0;  // the paper's fixed guess progression
  /// ChenEtAl times out on large windows in the paper; skip it beyond this.
  int64_t chen_window_limit = 4000;
  /// Parallel engine knobs: worker threads per streaming window (0 = all
  /// hardware threads) and arrivals per UpdateBatch call. Both default to 1
  /// so figure timings stay comparable with the paper's single-threaded
  /// per-arrival measurements unless explicitly overridden.
  int64_t num_threads = 1;
  int64_t update_batch_size = 1;
  /// Stream/simulator seed. Repeats rerun the whole sweep at seed,
  /// seed + 1, ... so the summarizer can take median/p95 across them.
  uint64_t seed = 42;
  int64_t repeats = 1;
  /// When non-empty, raw rows are appended to this CSV (schema in
  /// bench_util.h CsvSink) in addition to the stdout table.
  std::string output_csv;
};

struct DeltaSweepResult {
  std::string dataset;
  double delta;  // 0 for the baselines (delta-independent)
  AlgorithmReport report;
};

/// Runs the sweep once at `seed` and returns one row per
/// (dataset, algorithm, delta).
inline std::vector<DeltaSweepResult> RunDeltaSweep(
    const DeltaSweepConfig& config, uint64_t seed) {
  const EuclideanMetric metric;
  const JonesFairCenter jones;
  const ChenMatroidCenter chen;
  std::vector<DeltaSweepResult> rows;

  for (const std::string& name : config.dataset_names) {
    const int64_t stream_length = config.window_size + config.window_size / 2 +
                                  config.num_queries * config.query_stride;
    PreparedDataset prepared =
        Prepare(name, stream_length, metric, /*total_k=*/14, seed);

    // Own the windows for the whole driver run.
    std::vector<std::unique_ptr<FairCenterSlidingWindow>> windows;
    WindowDriver driver(&metric, prepared.constraint, config.window_size);

    for (double delta : config.deltas) {
      SlidingWindowOptions fixed;
      fixed.window_size = config.window_size;
      fixed.beta = config.beta;
      fixed.delta = delta;
      fixed.d_min = prepared.d_min;
      fixed.d_max = prepared.d_max;
      fixed.num_threads = ResolveThreadCount(config.num_threads);
      windows.push_back(std::make_unique<FairCenterSlidingWindow>(
          fixed, prepared.constraint, &metric, &jones));
      driver.AddStreaming(StrFormat("Ours@%g", delta), windows.back().get());

      SlidingWindowOptions adaptive = fixed;
      adaptive.adaptive_range = true;
      adaptive.d_min = adaptive.d_max = 0.0;
      windows.push_back(std::make_unique<FairCenterSlidingWindow>(
          adaptive, prepared.constraint, &metric, &jones));
      driver.AddStreaming(StrFormat("OursObliv@%g", delta),
                          windows.back().get());
    }
    driver.AddBaseline("Jones", &jones);
    const bool run_chen = config.window_size <= config.chen_window_limit;
    if (run_chen) driver.AddBaseline("ChenEtAl", &chen);

    auto stream = datasets::MakeStream(std::move(prepared.dataset));
    DriverOptions run;
    run.stream_length = stream_length;
    run.num_queries = config.num_queries;
    run.query_stride = config.query_stride;
    run.update_batch_size = config.update_batch_size;
    const auto reports = driver.Run(stream.get(), run);

    size_t r = 0;
    for (double delta : config.deltas) {
      rows.push_back({name, delta, reports[r++]});  // Ours
      rows.push_back({name, delta, reports[r++]});  // OursOblivious
    }
    rows.push_back({name, 0.0, reports[r++]});  // Jones
    if (run_chen) rows.push_back({name, 0.0, reports[r++]});
  }
  return rows;
}

/// Runs `config.repeats` seeded sweeps, printing every row and mirroring it
/// into `config.output_csv` when set. Shared by fig1 and fig2 (same grid,
/// different commentary).
inline void RunDeltaSweepRepeats(const DeltaSweepConfig& config,
                                 const char* figure) {
  CsvSink sink(config.output_csv, figure, "delta");
  for (int64_t r = 0; r < config.repeats; ++r) {
    const uint64_t seed = config.seed + static_cast<uint64_t>(r);
    if (config.repeats > 1) {
      std::printf("# repeat %lld/%lld seed=%llu\n",
                  static_cast<long long>(r + 1),
                  static_cast<long long>(config.repeats),
                  static_cast<unsigned long long>(seed));
    }
    const auto rows = RunDeltaSweep(config, seed);
    for (const auto& row : rows) {
      PrintRow(row.dataset, row.report, row.delta);
      sink.Row(row.dataset, row.report, row.delta, seed);
    }
  }
}

/// Shared flag wiring for the two delta-sweep figures. Returns false (after
/// printing usage) when --help was requested.
inline bool ParseDeltaSweepFlags(int argc, char** argv,
                                 DeltaSweepConfig* config) {
  FlagParser flags;
  int64_t window = config->window_size;
  int64_t queries = config->num_queries;
  int64_t stride = config->query_stride;
  int64_t threads = config->num_threads;
  int64_t batch = config->update_batch_size;
  int64_t seed = static_cast<int64_t>(config->seed);
  int64_t repeats = config->repeats;
  bool paper_scale = false;
  std::string datasets_csv;
  std::string deltas_csv;
  std::string output_csv;
  flags.AddInt64("window", &window, "window size in points");
  flags.AddInt64("queries", &queries, "number of measured windows");
  flags.AddInt64("stride", &stride, "arrivals between measured windows");
  AddThreadsFlag(&flags, &threads);
  flags.AddInt64("batch", &batch, "arrivals per UpdateBatch call");
  flags.AddInt64("seed", &seed, "stream/simulator seed");
  flags.AddInt64("repeats", &repeats,
                 "rerun the sweep this many times at seed, seed+1, ...");
  flags.AddBool("paper_scale", &paper_scale,
                "use the paper's window size (10000) and 200 queries");
  flags.AddString("datasets", &datasets_csv,
                  "comma-separated dataset names (default: all three)");
  flags.AddString("deltas", &deltas_csv,
                  "comma-separated delta grid (default: the paper's "
                  "0.5..4 in steps of 0.5)");
  flags.AddString("output_csv", &output_csv,
                  "also write raw rows to this CSV (summarizer schema)");
  FKC_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return false;
  }
  FKC_CHECK_GE(seed, 0) << "--seed must be non-negative";
  FKC_CHECK_GE(repeats, 1) << "--repeats must be >= 1";
  config->window_size = window;
  config->num_queries = queries;
  config->query_stride = stride;
  config->num_threads = threads;
  config->update_batch_size = batch;
  config->seed = static_cast<uint64_t>(seed);
  config->repeats = repeats;
  config->output_csv = output_csv;
  if (paper_scale) {
    config->window_size = 10000;
    config->num_queries = 200;
    config->query_stride = 1;
  }
  if (!datasets_csv.empty()) {
    config->dataset_names = StrSplit(datasets_csv, ',');
  }
  if (!deltas_csv.empty()) {
    config->deltas.clear();
    for (const std::string& text : StrSplit(deltas_csv, ',')) {
      auto parsed = ParseDouble(text);
      FKC_CHECK(parsed.ok() && parsed.value() > 0.0)
          << "bad --deltas entry '" << text << "'";
      config->deltas.push_back(parsed.value());
    }
  }
  return true;
}

}  // namespace bench
}  // namespace fkc

#endif  // FKC_BENCH_DELTA_SWEEP_H_
