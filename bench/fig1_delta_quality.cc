// Figure 1: approximation ratio (top) and memory in points (bottom) as a
// function of the coreset precision delta, window fixed (paper: 10000),
// datasets PHONES / HIGGS / COVTYPE, algorithms Ours, OursOblivious, and the
// full-window baselines Jones and ChenEtAl.
//
// Paper's findings to reproduce:
//   * Ours and OursOblivious have comparable quality; at delta = 4 they stay
//     within ~2x of the baselines, and approach them as delta shrinks.
//   * Their memory is far below the window (the baselines store all of it),
//     shrinking as delta grows; OursOblivious slightly below Ours.
#include "bench_util.h"
#include "common/flags.h"
#include "delta_sweep.h"

int main(int argc, char** argv) {
  fkc::bench::DeltaSweepConfig config;
  if (!fkc::bench::ParseDeltaSweepFlags(argc, argv, &config)) return 0;

  fkc::bench::PrintPreamble(
      "Figure 1 (approximation ratio and memory vs delta)",
      "streaming ratio <= ~2 at delta=4, ~1 at delta=0.5; streaming memory "
      "<< window and decreasing in delta; baselines store the whole window");
  std::printf("# window=%lld queries=%lld stride=%lld\n",
              static_cast<long long>(config.window_size),
              static_cast<long long>(config.num_queries),
              static_cast<long long>(config.query_stride));
  fkc::bench::PrintHeader("delta");

  fkc::bench::RunDeltaSweepRepeats(config, "fig1");
  return 0;
}
