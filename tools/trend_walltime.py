#!/usr/bin/env python3
"""Folds paired wall-time artifacts from many PRs into one trend table.

The CI `walltime` job gates each PR at a 25% wall-time regression, but a
sequence of PRs each 10-20% slower sails under that per-PR gate. This tool
makes the slow drift visible: it ingests the `walltime-pair-<sha>` artifacts
the job uploads (each holds `base_shard.json`/`head_shard.json` and
`base_micro.json`/`head_micro.json`, produced back to back on ONE runner)
and chains the per-PR slowdown factors into a cumulative drift per
benchmark.

Within one artifact the base/head ratio is machine-comparable (same runner,
interleaved). Across artifacts only the RATIOS are comparable — absolute
times come from heterogeneous runners — which is exactly why the trend is a
product of per-PR ratios, never a comparison of raw timings across runs.

Slowdown convention: > 1.0 means head was slower than base.
  * google-benchmark entries: head real_time / base real_time
  * shard_scaling throughputs (updates_per_s, queries_per_s):
    base / head (a throughput drop is a slowdown)

Usage:
  # download the artifacts of the last N runs, oldest first, then:
  python3 tools/trend_walltime.py pairs/walltime-pair-aaa pairs/walltime-pair-bbb \
      [--out-md TREND.md] [--max-cumulative-drift 0.25] [--fail-on-drift]

  # or point at one directory of pair subdirectories (sorted by mtime):
  python3 tools/trend_walltime.py pairs/

Pairs are folded in the order given on the command line (pass oldest
first); a single directory argument containing pair subdirectories folds
them in mtime order. Exit code 1 only with --fail-on-drift when any
benchmark's cumulative slowdown exceeds --max-cumulative-drift.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench  # noqa: E402  (shared JSON flattening)

# (base filename, head filename, suite label)
PAIR_FILES = [
    ("base_shard.json", "head_shard.json", "shard_scaling"),
    ("base_micro.json", "head_micro.json", "micro_kernels"),
]


def pair_label(path):
    """walltime-pair-<sha> -> short sha; anything else -> basename."""
    name = os.path.basename(os.path.normpath(path))
    if name.startswith("walltime-pair-"):
        return name[len("walltime-pair-"):][:10]
    return name


def slowdowns_for_pair(pair_dir):
    """{(suite, benchmark, field): slowdown} for one artifact directory."""
    out = {}
    for base_name, head_name, suite in PAIR_FILES:
        base_path = os.path.join(pair_dir, base_name)
        head_path = os.path.join(pair_dir, head_name)
        if not (os.path.isfile(base_path) and os.path.isfile(head_path)):
            continue  # older artifacts may predate a suite
        base_format, base = compare_bench.load(base_path)
        head_format, head = compare_bench.load(head_path)
        if base_format != head_format:
            raise SystemExit(
                f"error: {pair_dir}: {base_name} and {head_name} disagree on "
                f"format ({base_format} vs {head_format})")
        for name in sorted(set(base) & set(head)):
            if base_format == "google_benchmark":
                base_time = base[name].get("real_time")
                head_time = head[name].get("real_time")
                if base_time and head_time and base_time > 0:
                    out[(suite, name, "real_time")] = head_time / base_time
            else:
                for field in compare_bench.THROUGHPUT_FIELDS:
                    base_tp = base[name].get(field)
                    head_tp = head[name].get(field)
                    if base_tp and head_tp and head_tp > 0:
                        out[(suite, name, field)] = base_tp / head_tp
    if not out:
        raise SystemExit(f"error: no comparable pair files in {pair_dir}")
    return out


def expand_pair_dirs(args_dirs):
    """Explicit dirs keep argv order; one container dir -> mtime order."""
    if len(args_dirs) == 1 and os.path.isdir(args_dirs[0]):
        sole = args_dirs[0]
        has_pair_files = any(
            os.path.isfile(os.path.join(sole, base))
            for base, _, _ in PAIR_FILES)
        if not has_pair_files:
            subdirs = [os.path.join(sole, d) for d in os.listdir(sole)
                       if os.path.isdir(os.path.join(sole, d))]
            if not subdirs:
                raise SystemExit(f"error: no pair subdirectories in {sole}")
            return sorted(subdirs, key=lambda d: (os.path.getmtime(d), d))
    for d in args_dirs:
        if not os.path.isdir(d):
            raise SystemExit(f"error: no such pair directory {d}")
    return list(args_dirs)


def build_trend(pair_dirs):
    labels = [pair_label(d) for d in pair_dirs]
    per_pair = [slowdowns_for_pair(d) for d in pair_dirs]
    keys = sorted(set().union(*per_pair))
    rows = []
    for key in keys:
        cells = [pair.get(key) for pair in per_pair]
        cumulative = 1.0
        for value in cells:
            if value is not None:
                cumulative *= value
        rows.append((key, cells, cumulative))
    return labels, rows


def render_markdown(labels, rows, max_drift):
    header = ["benchmark", "metric"] + labels + ["cumulative"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for (suite, name, field), cells, cumulative in rows:
        flag = " ⚠" if cumulative > 1.0 + max_drift else ""
        cell_text = ["·" if v is None else f"{v:.3f}" for v in cells]
        lines.append(
            "| " + " | ".join([f"{suite}/{name}", field] + cell_text +
                              [f"{cumulative:.3f}{flag}"]) + " |")
    lines.append("")
    lines.append(f"Slowdown factors per PR (head/base wall time; > 1 is "
                 f"slower). ⚠ marks cumulative drift beyond "
                 f"{1.0 + max_drift:.2f}x.")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("pairs", nargs="+",
                        help="walltime-pair artifact directories (oldest "
                             "first), or one directory containing them")
    parser.add_argument("--out-md", help="write the trend table here")
    parser.add_argument("--max-cumulative-drift", type=float, default=0.25,
                        help="flag benchmarks whose chained slowdown exceeds "
                             "1 + this value (default 0.25)")
    parser.add_argument("--fail-on-drift", action="store_true",
                        help="exit 1 when any benchmark is flagged")
    args = parser.parse_args()

    pair_dirs = expand_pair_dirs(args.pairs)
    labels, rows = build_trend(pair_dirs)
    table = render_markdown(labels, rows, args.max_cumulative_drift)
    print(table)
    if args.out_md:
        with open(args.out_md, "w") as f:
            f.write(table)
        print(f"wrote {args.out_md}")

    flagged = [key for key, _, cumulative in rows
               if cumulative > 1.0 + args.max_cumulative_drift]
    if flagged:
        print(f"{len(flagged)} benchmark(s) beyond the cumulative drift "
              f"limit:", file=sys.stderr)
        for suite, name, field in flagged:
            print(f"  {suite}/{name}/{field}", file=sys.stderr)
        if args.fail_on_drift:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
