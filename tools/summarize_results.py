#!/usr/bin/env python3
"""Aggregates raw figure-bench CSVs into median/p95 summary tables.

The figure benches (`bench/fig1_delta_quality` ... `fig5_rotated_dimensionality`)
emit one raw row per (dataset, algorithm, swept value, seed) when run with
`--output_csv` — the `run/run_exp_fig*.sh` runners invoke them once per seed
and land the raw files under `results/raw/<exp>/raw_seed<SEED>.csv`. This
tool joins those repeats into one summary row per configuration:

  figure,dataset,algorithm,x_name,x,n,
  ratio_median,ratio_p95,memory_pts_median,memory_pts_p95,
  update_ms_median,update_ms_p95,query_ms_median,query_ms_p95

The column order above is the stable public schema (tests pin it); new
columns may only be appended. `n` is the number of raw rows aggregated
(seeds x in-binary repeats). Median is the textbook midpoint (mean of the
two middle values for even n); p95 linearly interpolates between order
statistics at rank 0.95*(n-1), so p95 of a single repeat is that repeat.

Usage:
  # summary CSV + markdown for one experiment directory of raw_*.csv files
  python3 tools/summarize_results.py results/raw/fig1 \
      --out-csv results/raw/fig1/summary.csv \
      --out-md results/raw/fig1/summary.md

  # regenerate the per-figure tables inside REPRODUCTION.md: every block
  #   <!-- BEGIN AUTOGEN:figN --> ... <!-- END AUTOGEN:figN -->
  # whose figure appears in the input data is rewritten in place
  python3 tools/summarize_results.py results/raw/fig1 ... results/raw/fig5 \
      --update-report REPRODUCTION.md

Inputs may be raw CSV files or directories (directories glob raw_*.csv so a
previously written summary.csv is never re-ingested). Exit code 1 on empty
input, malformed rows, or a report whose AUTOGEN markers are missing for a
figure present in the data — fail loud, never silently summarize nothing.
"""

import argparse
import glob
import math
import os
import sys

RAW_COLUMNS = [
    "figure", "dataset", "algorithm", "x_name", "x", "seed",
    "ratio", "memory_pts", "update_ms", "query_ms", "queries",
]

# Aggregated metrics, in output order.
METRICS = ["ratio", "memory_pts", "update_ms", "query_ms"]

SUMMARY_COLUMNS = ["figure", "dataset", "algorithm", "x_name", "x", "n"] + [
    f"{metric}_{stat}" for metric in METRICS for stat in ("median", "p95")
]

BEGIN_MARKER = "<!-- BEGIN AUTOGEN:{fig} -->"
END_MARKER = "<!-- END AUTOGEN:{fig} -->"


def median(values):
    """Midpoint of the sorted values (mean of the two middles for even n)."""
    if not values:
        raise ValueError("median of empty list")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def p95(values):
    """95th percentile with linear interpolation between order statistics
    (numpy's default): rank = 0.95 * (n - 1)."""
    if not values:
        raise ValueError("p95 of empty list")
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        return ordered[0]
    rank = 0.95 * (n - 1)
    lower = int(math.floor(rank))
    frac = rank - lower
    if lower + 1 >= n:
        return ordered[-1]
    return ordered[lower] + frac * (ordered[lower + 1] - ordered[lower])


def expand_inputs(paths):
    """Files stay files; directories glob raw_*.csv (sorted)."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "raw_*.csv")))
            if not found:
                raise SystemExit(f"error: no raw_*.csv files under {path}")
            files.extend(found)
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise SystemExit(f"error: no such raw input {path}")
    return files


def read_raw(files):
    """Parses raw rows from every file, validating the schema."""
    rows = []
    for path in files:
        with open(path) as f:
            header = f.readline().strip()
            if header.split(",") != RAW_COLUMNS:
                raise SystemExit(
                    f"error: {path} header {header!r} does not match the raw "
                    f"schema {','.join(RAW_COLUMNS)}")
            for lineno, line in enumerate(f, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) != len(RAW_COLUMNS):
                    raise SystemExit(
                        f"error: {path}:{lineno} has {len(parts)} fields, "
                        f"expected {len(RAW_COLUMNS)}")
                row = dict(zip(RAW_COLUMNS, parts))
                try:
                    row["x"] = float(row["x"])
                    for metric in METRICS:
                        row[metric] = float(row[metric])
                except ValueError as err:
                    raise SystemExit(f"error: {path}:{lineno}: {err}")
                rows.append(row)
    if not rows:
        raise SystemExit("error: no raw rows in any input")
    return rows


def summarize(rows):
    """One summary row per (figure, dataset, algorithm, x_name, x)."""
    groups = {}
    for row in rows:
        key = (row["figure"], row["dataset"], row["algorithm"],
               row["x_name"], row["x"])
        groups.setdefault(key, []).append(row)

    summary = []
    for key in sorted(groups):
        figure, dataset, algorithm, x_name, x = key
        group = groups[key]
        out = {
            "figure": figure,
            "dataset": dataset,
            "algorithm": algorithm,
            "x_name": x_name,
            "x": x,
            "n": len(group),
        }
        for metric in METRICS:
            values = [row[metric] for row in group]
            # A NaN ratio (no baseline ran at this configuration) stays NaN
            # rather than poisoning sorts on some platforms: filter, and
            # only fall back to NaN when every repeat was NaN.
            finite = [v for v in values if not math.isnan(v)]
            use = finite if finite else values
            out[f"{metric}_median"] = median(use) if finite else float("nan")
            out[f"{metric}_p95"] = p95(use) if finite else float("nan")
        summary.append(out)
    return summary


def format_value(column, value):
    if column in ("figure", "dataset", "algorithm", "x_name"):
        return str(value)
    if column == "n":
        return str(value)
    if column == "x":
        return f"{value:g}"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    if column.startswith("ratio"):
        return f"{value:.3f}"
    if column.startswith("memory_pts"):
        return f"{value:.1f}"
    return f"{value:.4f}"  # update_ms / query_ms


def write_summary_csv(summary, path):
    with open(path, "w") as f:
        f.write(",".join(SUMMARY_COLUMNS) + "\n")
        for row in summary:
            f.write(",".join(format_value(c, row[c])
                             for c in SUMMARY_COLUMNS) + "\n")


def markdown_cell(column, row):
    value = row[column]
    if isinstance(value, float) and math.isnan(value):
        return "n/a"
    return format_value(column, value)


def markdown_for_figure(summary, figure):
    """One markdown table for a single figure's summary rows."""
    rows = [r for r in summary if r["figure"] == figure]
    if not rows:
        return None
    x_name = rows[0]["x_name"]
    header = ["dataset", "algorithm", x_name, "ratio (med / p95)",
              "memory pts (med)", "update ms (med / p95)",
              "query ms (med / p95)", "n"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for r in rows:
        cells = [
            r["dataset"],
            r["algorithm"],
            format_value("x", r["x"]),
            f"{markdown_cell('ratio_median', r)} / "
            f"{markdown_cell('ratio_p95', r)}",
            markdown_cell("memory_pts_median", r),
            f"{markdown_cell('update_ms_median', r)} / "
            f"{markdown_cell('update_ms_p95', r)}",
            f"{markdown_cell('query_ms_median', r)} / "
            f"{markdown_cell('query_ms_p95', r)}",
            str(r["n"]),
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def write_markdown(summary, path):
    figures = sorted({r["figure"] for r in summary})
    blocks = []
    for figure in figures:
        blocks.append(f"### {figure}\n\n{markdown_for_figure(summary, figure)}")
    with open(path, "w") as f:
        f.write("\n".join(blocks))


def update_report(summary, report_path):
    """Rewrites every AUTOGEN block whose figure appears in the summary."""
    with open(report_path) as f:
        text = f.read()
    figures = sorted({r["figure"] for r in summary})
    for figure in figures:
        begin = BEGIN_MARKER.format(fig=figure)
        end = END_MARKER.format(fig=figure)
        start = text.find(begin)
        stop = text.find(end)
        if start < 0 or stop < 0 or stop < start:
            raise SystemExit(
                f"error: {report_path} lacks the markers {begin} ... {end} "
                f"for figure {figure!r} present in the input data")
        table = markdown_for_figure(summary, figure)
        text = (text[:start + len(begin)] + "\n" + table + text[stop:])
    with open(report_path, "w") as f:
        f.write(text)
    return figures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("inputs", nargs="+",
                        help="raw CSV files or directories of raw_*.csv")
    parser.add_argument("--out-csv", help="write the summary CSV here")
    parser.add_argument("--out-md", help="write per-figure markdown here")
    parser.add_argument("--update-report",
                        help="rewrite AUTOGEN blocks in this markdown report")
    args = parser.parse_args()

    rows = read_raw(expand_inputs(args.inputs))
    summary = summarize(rows)

    if args.out_csv:
        write_summary_csv(summary, args.out_csv)
        print(f"wrote {args.out_csv} ({len(summary)} summary rows)")
    if args.out_md:
        write_markdown(summary, args.out_md)
        print(f"wrote {args.out_md}")
    if args.update_report:
        figures = update_report(summary, args.update_report)
        print(f"updated {args.update_report}: {', '.join(figures)}")
    if not (args.out_csv or args.out_md or args.update_report):
        # No sink chosen: print the summary CSV to stdout.
        print(",".join(SUMMARY_COLUMNS))
        for row in summary:
            print(",".join(format_value(c, row[c]) for c in SUMMARY_COLUMNS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
