#!/usr/bin/env python3
"""Compares a fresh micro_kernels run against the committed baseline.

Only wall-time-STABLE metrics are compared: the deterministic counters the
engine benches emit (distance calls per arrival, expiry sweeps per arrival,
query selection diagnostics). Nanosecond timings are machine-dependent and
deliberately ignored — the baseline was recorded on a different box than CI.

Usage:
  python3 tools/compare_bench.py BENCH_micro_kernels.json new.json \
      [--max-regression 0.20] [--exact-prefixes distance_calls,...]

Exit code 1 when any stable counter moved by more than --max-regression
relative to the baseline, or when a baseline benchmark with stable counters
disappeared from the new run (dropped coverage hides regressions).
New benchmarks absent from the baseline are reported but pass: they become
baseline on the next regeneration.

--exact-prefixes names counter prefixes held to ZERO tolerance regardless of
--max-regression. The CI perf job uses it to assert that a run on the
SoA/SIMD distance path performs exactly the same distance evaluations as a
scalar run (FKC_SIMD=scalar): kernel width must change wall time only, never
any algorithmic counter. Wall-time fields are never compared at all.
"""

import argparse
import json
import sys

# Counter-name prefixes considered machine-independent.
STABLE_PREFIXES = (
    "distance_calls",
    "expiry_sweeps",
    "guesses_inspected",
    "coreset_size",
)


def stable_counters(entry):
    """The wall-time-stable counters of one google-benchmark JSON entry."""
    out = {}
    for key, value in entry.items():
        if isinstance(value, (int, float)) and key.startswith(STABLE_PREFIXES):
            out[key] = float(value)
    return out


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        entry["name"]: entry
        for entry in data.get("benchmarks", [])
        if entry.get("run_type", "iteration") == "iteration"
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="max allowed relative change of a stable counter")
    parser.add_argument("--exact-prefixes", default="",
                        help="comma-separated counter-name prefixes that must "
                             "match the baseline exactly (0%% tolerance)")
    args = parser.parse_args()
    exact_prefixes = tuple(p for p in args.exact_prefixes.split(",") if p)

    baseline = load(args.baseline)
    fresh = load(args.new)

    failures = []
    compared = 0
    for name, base_entry in sorted(baseline.items()):
        base_counters = stable_counters(base_entry)
        if not base_counters:
            continue  # timing-only entry: nothing stable to compare
        if name not in fresh:
            failures.append(f"{name}: present in baseline but missing from "
                            "the new run (dropped bench coverage)")
            continue
        new_counters = stable_counters(fresh[name])
        for counter, base_value in sorted(base_counters.items()):
            if counter not in new_counters:
                failures.append(f"{name}/{counter}: counter disappeared")
                continue
            new_value = new_counters[counter]
            compared += 1
            if base_value == 0.0:
                rel = 0.0 if new_value == 0.0 else float("inf")
            else:
                rel = abs(new_value - base_value) / abs(base_value)
            exact = counter.startswith(exact_prefixes) if exact_prefixes \
                else False
            limit = 0.0 if exact else args.max_regression
            marker = "FAIL" if rel > limit else "ok"
            suffix = " [exact]" if exact else ""
            print(f"[{marker}] {name}/{counter}: "
                  f"{base_value:.4g} -> {new_value:.4g} ({rel:+.1%})"
                  f"{suffix}")
            if rel > limit:
                failures.append(
                    f"{name}/{counter}: {base_value:.4g} -> {new_value:.4g} "
                    f"moved {rel:.1%} (limit "
                    f"{'exact match' if exact else f'{limit:.0%}'})")

    for name in sorted(set(fresh) - set(baseline)):
        if stable_counters(fresh[name]):
            print(f"[new ] {name}: not in baseline yet (will be on next "
                  "regeneration)")

    if compared == 0:
        print("error: no stable counters in the baseline — regenerate it "
              "with the current micro_kernels", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} perf-counter regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} stable counters within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
