#!/usr/bin/env python3
"""Compares two bench runs: counters against a committed baseline, and —
for paired before/after runs on the same machine — wall-time throughput.

Two input formats are auto-detected:

* google-benchmark JSON (bench/micro_kernels): by default only
  wall-time-STABLE metrics are compared — the deterministic counters the
  engine benches emit (distance calls per arrival, expiry sweeps per
  arrival, query selection diagnostics). Nanosecond timings are
  machine-dependent and ignored against the committed baseline (recorded
  on a different box than CI), but a PAIRED base-vs-head run on the same
  runner may gate real_time with --max-walltime-regression.

* shard_scaling JSON (bench/shard_scaling, a top-level "bench" key):
  deterministic counters (updates, queries, memory points, evictions,
  rehydrations, checkpoint sizes) are compared like stable counters, and
  the throughput fields (updates_per_s, queries_per_s) can additionally
  be compared with --max-walltime-regression. Every dict child of the
  contention scenario becomes an entry (contention/global_mutex,
  contention/single_stripe, contention/per_shard, contention/zipf,
  contention/create_heavy, ...); `updates` and `shards` are deterministic
  counters, updates_per_s rides the wall-time axis, and the volatile
  fields — query_rounds / maintenance_ticks (background threads complete
  as many rounds as the clock allows), speedup / stripe_speedup (ratios
  of two wall times), pool_steals / stripe_hot_ratio (scheduling-order
  gauges), stripes (host-dependent when auto) — are excluded from
  comparison entirely. The cross_objective scenario's dict children
  (cross_objective/fair_center, cross_objective/k_median,
  cross_objective/mixed) flatten the same way: objective_value_sum,
  memory_points, checkpoint_bytes, bursts, updates, and shards are
  deterministic counters (bit-identical engine state contract),
  updates_per_s rides the wall-time axis, and the VOLATILE_FIELDS filter
  applies so any future timing-dependent field is excluded by name. Wall-time comparison is only meaningful when both
  files were produced in the same run environment — the CI walltime job
  builds the PR's base commit and head in the same runner and runs both,
  so the pair IS comparable.

Usage:
  python3 tools/compare_bench.py BENCH_micro_kernels.json new.json \
      [--max-regression 0.20] [--exact-prefixes distance_calls,...]
  python3 tools/compare_bench.py base_shard.json head_shard.json \
      --max-walltime-regression 0.25 --walltime-only
  python3 tools/compare_bench.py base_micro.json head_micro.json \
      --max-walltime-regression 0.25 --walltime-only

Exit code 1 when any compared counter moved by more than --max-regression
relative to the baseline, any throughput fell by more than
--max-walltime-regression, or a baseline benchmark with stable counters
disappeared from the new run (dropped coverage hides regressions).
New benchmarks absent from the baseline are reported but pass: they become
baseline on the next regeneration.

--exact-prefixes names counter prefixes held to ZERO tolerance regardless of
--max-regression. The CI perf job uses it to assert that a run on the
SoA/SIMD distance path performs exactly the same distance evaluations as a
scalar run (FKC_SIMD=scalar): kernel width must change wall time only, never
any algorithmic counter.

--walltime-only skips the counter comparison entirely: the paired
before/after job compares commits whose counters may differ by design (the
PR changed the algorithm), so only the wall-time axis is gated there; the
perf job keeps gating counters at its existing 0%/20% tolerances.
"""

import argparse
import json
import sys

# Counter-name prefixes considered machine-independent (google-benchmark
# entries).
STABLE_PREFIXES = (
    "distance_calls",
    "expiry_sweeps",
    "guesses_inspected",
    "coreset_size",
    "kmedian",
)

# shard_scaling fields: higher-is-better throughputs (wall time axis) vs
# deterministic counters.
THROUGHPUT_FIELDS = ("updates_per_s", "queries_per_s")

# Contention-scenario fields that are neither deterministic counters nor
# gateable throughputs: background threads complete as many rounds/ticks as
# the wall clock lets them, the speedups are ratios of two wall times,
# pool_steals / stripe_hot_ratio depend on scheduling order, and the stripe
# count is host-dependent when the bench runs with --stripes=0 (auto).
# Replication fields ride the same axis: how many frames a leader sends
# (heartbeats included), how often a follower has to resync, and how many
# entries a recovery adopts all depend on connection timing and where the
# kill landed. They stay in the JSON for humans but are never compared.
VOLATILE_FIELDS = (
    "query_rounds",
    "maintenance_ticks",
    "speedup",
    "stripe_speedup",
    "pool_steals",
    "stripe_hot_ratio",
    "stripes",
    "frames_sent",
    "resyncs",
    "recovered_entries",
)


def stable_counters(entry):
    """The wall-time-stable counters of one google-benchmark JSON entry."""
    out = {}
    for key, value in entry.items():
        if isinstance(value, (int, float)) and key.startswith(STABLE_PREFIXES):
            out[key] = float(value)
    return out


def load_google_benchmark(data):
    return {
        entry["name"]: entry
        for entry in data.get("benchmarks", [])
        if entry.get("run_type", "iteration") == "iteration"
    }


def flatten_shard_scaling(data):
    """shard_scaling JSON -> {entry_name: {field: value}} with throughput
    fields kept apart from the deterministic counters."""
    entries = {}
    for run in data.get("runs", []):
        name = f"shards/{run.get('shards')}"
        entries[name] = {
            k: float(v) for k, v in run.items()
            if isinstance(v, (int, float)) and k != "shards"
        }
    churn = data.get("churn", {})
    for backend in ("memory", "file"):
        sub = churn.get(backend)
        if isinstance(sub, dict):
            entries[f"churn/{backend}"] = {
                k: float(v) for k, v in sub.items()
                if isinstance(v, (int, float))
            }
    contention = data.get("contention", {})
    # Every dict child is a contention run (global_mutex, single_stripe,
    # per_shard, zipf, create_heavy, and whatever future modes appear);
    # scalar children (speedups, host facts) are header fields, not runs.
    for mode in sorted(contention):
        sub = contention[mode]
        if isinstance(sub, dict):
            entries[f"contention/{mode}"] = {
                k: float(v) for k, v in sub.items()
                if isinstance(v, (int, float)) and k not in VOLATILE_FIELDS
            }
    cross = data.get("cross_objective", {})
    # Dict children are per-objective runs (fair_center, k_median, mixed);
    # scalar children (tenants, burst flags) are header fields.
    for mode in sorted(cross):
        sub = cross[mode]
        if isinstance(sub, dict):
            entries[f"cross_objective/{mode}"] = {
                k: float(v) for k, v in sub.items()
                if isinstance(v, (int, float)) and k not in VOLATILE_FIELDS
            }
    return entries


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") == "shard_scaling":
        return "shard_scaling", flatten_shard_scaling(data)
    return "google_benchmark", load_google_benchmark(data)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="max allowed relative change of a stable counter")
    parser.add_argument("--exact-prefixes", default="",
                        help="comma-separated counter-name prefixes that must "
                             "match the baseline exactly (0%% tolerance)")
    parser.add_argument("--max-walltime-regression", type=float, default=None,
                        help="max allowed relative DROP of a throughput "
                             "field (shard_scaling format); only meaningful "
                             "for paired same-machine runs")
    parser.add_argument("--walltime-only", action="store_true",
                        help="compare only throughput fields (for paired "
                             "base-vs-head runs whose counters may differ "
                             "by design)")
    args = parser.parse_args()
    exact_prefixes = tuple(p for p in args.exact_prefixes.split(",") if p)

    base_format, baseline = load(args.baseline)
    new_format, fresh = load(args.new)
    if base_format != new_format:
        print(f"error: format mismatch ({base_format} vs {new_format})",
              file=sys.stderr)
        return 1
    if args.walltime_only and args.max_walltime_regression is None:
        print("error: --walltime-only requires --max-walltime-regression",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0

    def compare_counter(name, counter, base_value, new_value, exact):
        nonlocal compared
        compared += 1
        if base_value == 0.0:
            rel = 0.0 if new_value == 0.0 else float("inf")
        else:
            rel = abs(new_value - base_value) / abs(base_value)
        limit = 0.0 if exact else args.max_regression
        marker = "FAIL" if rel > limit else "ok"
        suffix = " [exact]" if exact else ""
        print(f"[{marker}] {name}/{counter}: "
              f"{base_value:.4g} -> {new_value:.4g} ({rel:+.1%}){suffix}")
        if rel > limit:
            failures.append(
                f"{name}/{counter}: {base_value:.4g} -> {new_value:.4g} "
                f"moved {rel:.1%} (limit "
                f"{'exact match' if exact else f'{limit:.0%}'})")

    def compare_walltime(name, field, base_value, new_value,
                         lower_is_better=False):
        nonlocal compared
        compared += 1
        # Only a move in the WRONG direction is a regression: a throughput
        # drop, or (for raw timings) a real_time increase. Faster always
        # passes.
        if base_value <= 0.0:
            loss = 0.0
        elif lower_is_better:
            loss = max(0.0, (new_value - base_value) / base_value)
        else:
            loss = max(0.0, (base_value - new_value) / base_value)
        limit = args.max_walltime_regression
        marker = "FAIL" if loss > limit else "ok"
        print(f"[{marker}] {name}/{field}: "
              f"{base_value:.4g} -> {new_value:.4g} "
              f"(-{loss:.1%} vs limit {limit:.0%}) [walltime]")
        if loss > limit:
            failures.append(
                f"{name}/{field}: "
                f"{'slowed' if lower_is_better else 'throughput fell'} "
                f"{loss:.1%} ({base_value:.4g} -> {new_value:.4g}, "
                f"limit {limit:.0%})")

    for name, base_entry in sorted(baseline.items()):
        if base_format == "google_benchmark":
            base_counters = stable_counters(base_entry)
        else:
            base_counters = {
                k: v for k, v in base_entry.items()
                if k not in THROUGHPUT_FIELDS
            }
        if base_format == "shard_scaling":
            base_walltimes = {
                k: v for k, v in base_entry.items() if k in THROUGHPUT_FIELDS
            }
        elif (args.max_walltime_regression is not None
              and "real_time" in base_entry):
            # Paired same-runner google-benchmark runs gate on real_time.
            base_walltimes = {"real_time": float(base_entry["real_time"])}
        else:
            base_walltimes = {}
        if not base_counters and not base_walltimes:
            continue  # timing-only entry: nothing stable to compare
        if name not in fresh:
            failures.append(f"{name}: present in baseline but missing from "
                            "the new run (dropped bench coverage)")
            continue
        fresh_entry = fresh[name]
        if not args.walltime_only:
            new_counters = stable_counters(fresh_entry) \
                if base_format == "google_benchmark" else fresh_entry
            for counter, base_value in sorted(base_counters.items()):
                if counter not in new_counters:
                    failures.append(f"{name}/{counter}: counter disappeared")
                    continue
                exact = counter.startswith(exact_prefixes) \
                    if exact_prefixes else False
                compare_counter(name, counter, base_value,
                                float(new_counters[counter]), exact)
        if args.max_walltime_regression is not None:
            for field, base_value in sorted(base_walltimes.items()):
                if field not in fresh_entry:
                    failures.append(f"{name}/{field}: throughput disappeared")
                    continue
                compare_walltime(name, field, base_value,
                                 float(fresh_entry[field]),
                                 lower_is_better=field == "real_time")

    for name in sorted(set(fresh) - set(baseline)):
        has_stable = stable_counters(fresh[name]) \
            if base_format == "google_benchmark" else fresh[name]
        if has_stable:
            print(f"[new ] {name}: not in baseline yet (will be on next "
                  "regeneration)")

    if compared == 0:
        print("error: nothing compared — regenerate the baseline with the "
              "current bench binary", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
