#!/usr/bin/env bash
# Downloads the three real UCI datasets of the paper's evaluation and
# converts them into the prepared CSV format the library ingests
# (src/datasets/registry.cc LoadRealDataset): numeric coordinates, one point
# per row, 0-based integer color label in the LAST column.
#
#   bash datasets/download_real_datasets.sh [target_dir]
#
# Target dir defaults to this script's directory (datasets/). Point the
# binaries at it with FKC_DATA_DIR (default "datasets"). When a prepared
# <name>.csv is absent the library falls back to its statistical simulator
# with a stderr warning naming FKC_DATA_DIR and the missing path; export
# FKC_REQUIRE_REAL_DATA=1 to make that fallback a hard error instead
# (recommended whenever you intend to report real-data numbers).
#
# Checksums: the SHA-256 of every prepared CSV is recorded in
# <target_dir>/CHECKSUMS.sha256 on first successful preparation and
# verified against it on every later run (trust-on-first-use). A mismatch —
# a torn download, a silently changed upstream file, local corruption —
# aborts with both sums printed; delete the file and its CHECKSUMS line to
# re-download deliberately.
#
# Prepared formats:
#   phones.csv   x,y,z,activity           (3-d, ell=7; activity 0..6)
#   higgs.csv    f1,...,f7,label          (the 7 high-level features, ell=2)
#   covtype.csv  c1,...,c54,covertype     (54-d, ell=7; label shifted to 0..6)
set -euo pipefail
trap 'echo "download_real_datasets.sh: FAILED at line $LINENO (exit $?)" >&2' ERR

dir="${1:-$(cd -- "$(dirname -- "$0")" && pwd)}"
mkdir -p "$dir"
cd "$dir"
sums_file="CHECKSUMS.sha256"

sha256_of() {
  if command -v sha256sum >/dev/null 2>&1; then
    sha256sum "$1" | awk '{print $1}'
  elif command -v shasum >/dev/null 2>&1; then
    shasum -a 256 "$1" | awk '{print $1}'
  else
    echo "need sha256sum or shasum for checksum verification" >&2
    exit 1
  fi
}

# Verifies $1 against the recorded checksum, or records it on first sight.
verify_or_record() {
  local file="$1" have want
  have="$(sha256_of "$file")"
  want="$(awk -v f="$file" '$2 == f {print $1}' "$sums_file" 2>/dev/null ||
          true)"
  if [ -z "$want" ]; then
    printf '%s %s\n' "$have" "$file" >>"$sums_file"
    echo "checksum recorded (first preparation): $file sha256=$have"
  elif [ "$have" != "$want" ]; then
    echo "ERROR: checksum mismatch for $dir/$file" >&2
    echo "  recorded $want" >&2
    echo "  actual   $have" >&2
    echo "The file changed since it was first prepared (torn download," >&2
    echo "upstream change, or local corruption). Delete $dir/$file and" >&2
    echo "its line in $dir/$sums_file to re-download deliberately." >&2
    exit 1
  else
    echo "checksum OK: $file"
  fi
}

fetch() {
  url="$1"; out="$2"
  if command -v curl >/dev/null 2>&1; then
    curl -L --fail -o "$out" "$url"
  elif command -v wget >/dev/null 2>&1; then
    wget -O "$out" "$url"
  else
    echo "need curl or wget" >&2
    exit 1
  fi
}

# --- HIGGS (UCI 00280): label first, 21 low-level + 7 high-level features.
# The paper uses the 7 high-level features (columns 23-29); label 0/1 is
# already 0-based and moves to the last column.
if [ ! -f higgs.csv ]; then
  echo "== HIGGS (2.6 GB download; ~11M rows)"
  fetch "https://archive.ics.uci.edu/ml/machine-learning-databases/00280/HIGGS.csv.gz" higgs.csv.gz
  gunzip -c higgs.csv.gz | awk -F, '{
    printf "%s,%s,%s,%s,%s,%s,%s,%d\n", $23,$24,$25,$26,$27,$28,$29,int($1)
  }' > higgs.csv
  rm -f higgs.csv.gz
fi
verify_or_record higgs.csv

# --- COVTYPE (UCI covtype): 54 features, cover type 1..7 last -> 0..6.
if [ ! -f covtype.csv ]; then
  echo "== COVTYPE (~11 MB compressed; 581k rows)"
  fetch "https://archive.ics.uci.edu/ml/machine-learning-databases/covtype/covtype.data.gz" covtype.data.gz
  gunzip -c covtype.data.gz | awk -F, '{
    out=$1; for (i=2; i<=54; ++i) out=out","$i
    printf "%s,%d\n", out, $55-1
  }' > covtype.csv
  rm -f covtype.data.gz
fi
verify_or_record covtype.csv

# --- PHONES (UCI 00344, Heterogeneity Activity Recognition,
# Phones_accelerometer.csv): x,y,z accelerometer readings labelled with one
# of 7 activities (null included), mapped to 0..6 in the order the phones
# simulator uses.
if [ ! -f phones.csv ]; then
  echo "== PHONES (~1.3 GB zip; 13M rows)"
  fetch "https://archive.ics.uci.edu/ml/machine-learning-databases/00344/Activity%20recognition%20exp.zip" phones.zip
  unzip -o phones.zip "Activity recognition exp/Phones_accelerometer.csv"
  awk -F, 'NR > 1 {
    gt=$10
    c = (gt=="stand")?0:(gt=="sit")?1:(gt=="walk")?2:(gt=="bike")?3: \
        (gt=="stairsup")?4:(gt=="stairsdown")?5:6
    printf "%s,%s,%s,%d\n", $4,$5,$6,c
  }' "Activity recognition exp/Phones_accelerometer.csv" > phones.csv
  rm -rf phones.zip "Activity recognition exp"
fi
verify_or_record phones.csv

echo "prepared CSVs in $(pwd):"
ls -lh ./*.csv | awk '{print "  "$9" ("$5")"}'
echo "Point the binaries at them with FKC_DATA_DIR=$(pwd)"
echo "(export FKC_REQUIRE_REAL_DATA=1 to forbid the simulator fallback)."
