#!/usr/bin/env sh
# Downloads the three real UCI datasets of the paper's evaluation and
# converts them into the prepared CSV format the library ingests
# (src/datasets/registry.cc LoadRealDataset): numeric coordinates, one point
# per row, 0-based integer color label in the LAST column.
#
#   sh datasets/download_real_datasets.sh [target_dir]
#
# Target dir defaults to this script's directory (datasets/). Point the
# binaries at it with FKC_DATA_DIR (default "datasets"); when a prepared
# <name>.csv is absent the library transparently falls back to its
# statistical simulator, so running this script is optional.
#
# Prepared formats:
#   phones.csv   x,y,z,activity           (3-d, ell=7; activity 0..6)
#   higgs.csv    f1,...,f7,label          (the 7 high-level features, ell=2)
#   covtype.csv  c1,...,c54,covertype     (54-d, ell=7; label shifted to 0..6)
set -eu

dir="${1:-$(dirname "$0")}"
mkdir -p "$dir"
cd "$dir"

fetch() {
  url="$1"; out="$2"
  if command -v curl >/dev/null 2>&1; then
    curl -L --fail -o "$out" "$url"
  elif command -v wget >/dev/null 2>&1; then
    wget -O "$out" "$url"
  else
    echo "need curl or wget" >&2
    exit 1
  fi
}

# --- HIGGS (UCI 00280): label first, 21 low-level + 7 high-level features.
# The paper uses the 7 high-level features (columns 23-29); label 0/1 is
# already 0-based and moves to the last column.
if [ ! -f higgs.csv ]; then
  echo "== HIGGS (2.6 GB download; ~11M rows)"
  fetch "https://archive.ics.uci.edu/ml/machine-learning-databases/00280/HIGGS.csv.gz" higgs.csv.gz
  gunzip -c higgs.csv.gz | awk -F, '{
    printf "%s,%s,%s,%s,%s,%s,%s,%d\n", $23,$24,$25,$26,$27,$28,$29,int($1)
  }' > higgs.csv
  rm -f higgs.csv.gz
fi

# --- COVTYPE (UCI covtype): 54 features, cover type 1..7 last -> 0..6.
if [ ! -f covtype.csv ]; then
  echo "== COVTYPE (~11 MB compressed; 581k rows)"
  fetch "https://archive.ics.uci.edu/ml/machine-learning-databases/covtype/covtype.data.gz" covtype.data.gz
  gunzip -c covtype.data.gz | awk -F, '{
    out=$1; for (i=2; i<=54; ++i) out=out","$i
    printf "%s,%d\n", out, $55-1
  }' > covtype.csv
  rm -f covtype.data.gz
fi

# --- PHONES (UCI 00344, Heterogeneity Activity Recognition,
# Phones_accelerometer.csv): x,y,z accelerometer readings labelled with one
# of 7 activities (null included), mapped to 0..6 in the order the phones
# simulator uses.
if [ ! -f phones.csv ]; then
  echo "== PHONES (~1.3 GB zip; 13M rows)"
  fetch "https://archive.ics.uci.edu/ml/machine-learning-databases/00344/Activity%20recognition%20exp.zip" phones.zip
  unzip -o phones.zip "Activity recognition exp/Phones_accelerometer.csv"
  awk -F, 'NR > 1 {
    gt=$10
    c = (gt=="stand")?0:(gt=="sit")?1:(gt=="walk")?2:(gt=="bike")?3: \
        (gt=="stairsup")?4:(gt=="stairsdown")?5:6
    printf "%s,%s,%s,%d\n", $4,$5,$6,c
  }' "Activity recognition exp/Phones_accelerometer.csv" > phones.csv
  rm -rf phones.zip "Activity recognition exp"
fi

echo "prepared CSVs in $(pwd): $(ls -lh *.csv | awk '{print $9" ("$5")"}' | tr '\n' ' ')"
