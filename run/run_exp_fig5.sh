#!/usr/bin/env bash
# Figure 5: query time and memory vs the number of COORDINATES on the
# `rotated` datasets — PHONES-like 3-d data zero-padded to D dimensions and
# rigidly rotated, so the intrinsic (doubling) dimension stays 3. The
# paper's point: cost tracks the intrinsic dimension, not the coordinate
# count (contrast with Figure 4).
#
# Sweep overrides (env, beyond the common knobs in run/common.sh):
#   DIMS     comma-separated ambient dimensions    (default 3,6,9,12,15)
#   WINDOW   window size in points                 (default 2000; paper 10000)
#   QUERIES  measured windows per run              (default 8; paper 200)
#   STRIDE   arrivals between measured windows     (default 25)
#
#   PAPER_SCALE=1 runs the paper's window (10000) and 200 queries.
EXP=fig5
BIN=fig5_rotated_dimensionality
source "$(dirname -- "${BASH_SOURCE[0]}")/common.sh"

args=(
  --dims="${DIMS:-3,6,9,12,15}"
  --window="${WINDOW:-2000}"
  --queries="${QUERIES:-8}"
  --stride="${STRIDE:-25}"
)
[[ "$PAPER_SCALE" == 1 ]] && args+=(--paper_scale)

ensure_built
run_repeats "${args[@]}"
summarize
