#!/usr/bin/env bash
# Figure 2: update time (top) and query time (bottom) vs the coreset
# precision delta — the same grid as Figure 1, measured on the time axis
# (ChenEtAl dominates the run time, hence the smaller default query count).
#
# Sweep overrides (env, beyond the common knobs in run/common.sh):
#   WINDOW   window size in points                (default 2000; paper 10000)
#   QUERIES  measured windows per run             (default 8; paper 200)
#   STRIDE   arrivals between measured windows    (default 20; paper 1)
#   DELTAS   comma-separated delta grid           (default 0.5..4 step 0.5)
#   DATASETS comma-separated datasets             (default phones,higgs,covtype)
#
#   PAPER_SCALE=1 runs the paper's exact grid instead of the defaults.
EXP=fig2
BIN=fig2_delta_time
source "$(dirname -- "${BASH_SOURCE[0]}")/common.sh"

args=(
  --window="${WINDOW:-2000}"
  --queries="${QUERIES:-8}"
  --stride="${STRIDE:-20}"
  --deltas="${DELTAS:-0.5,1,1.5,2,2.5,3,3.5,4}"
  --datasets="${DATASETS:-phones,higgs,covtype}"
)
[[ "$PAPER_SCALE" == 1 ]] && args+=(--paper_scale)

ensure_built
run_repeats "${args[@]}"
summarize
