# Shared plumbing for the figure-experiment runners (run/run_exp_fig*.sh).
# Sourced, not executed; the sourcing script must set EXP and BIN first.
#
# Environment overrides (all optional):
#   BUILD_DIR    cmake build tree holding the bench binaries (default: build)
#   RESULTS_DIR  where raw CSV + summaries land        (default: results/raw)
#   REPEATS      repeats per sweep, seeded BASE_SEED..+R-1      (default: 3)
#   BASE_SEED    first seed                                    (default: 42)
#   THREADS      worker threads per window; 1 keeps timings comparable with
#                the paper's single-threaded measurements       (default: 1)
#   PAPER_SCALE  =1 runs the paper's full grids (window 10000, 200 queries —
#                hours of wall time on real data)               (default: 0)
#   FKC_DATA_DIR directory with the prepared real CSVs (default: datasets).
#                A missing file falls back to the statistical simulator with
#                a stderr warning; export FKC_REQUIRE_REAL_DATA=1 to turn
#                that fallback into a hard error.
#
# Per-figure sweep overrides (WINDOW, QUERIES, STRIDE, DELTAS, DATASETS,
# WINDOWS, DIMS, ...) are documented in each run_exp_fig*.sh.
#
# Conventions (mirrored from the Join-Sampling-style run/ harness this
# reproduces): fail-loud ERR trap naming script and line, scratch files in a
# mktemp dir removed on exit, one raw CSV per seed under
# $RESULTS_DIR/$EXP/raw_seed<SEED>.csv, and a median/p95 summary.csv +
# summary.md regenerated from the raw files after every run.
set -euo pipefail

[[ -n "${EXP:-}" && -n "${BIN:-}" ]] ||
  { echo "common.sh: EXP and BIN must be set before sourcing" >&2; exit 1; }

RUN_DIR="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname -- "$RUN_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
RESULTS_DIR="${RESULTS_DIR:-$REPO_ROOT/results/raw}"
REPEATS="${REPEATS:-3}"
BASE_SEED="${BASE_SEED:-42}"
THREADS="${THREADS:-1}"
PAPER_SCALE="${PAPER_SCALE:-0}"

trap 'echo "[run/$EXP] FAILED at ${BASH_SOURCE[0]}:$LINENO (exit $?)" >&2' ERR

TMP_DIR="$(mktemp -d "${TMPDIR:-/tmp}/fkc_${EXP}.XXXXXX")"
trap 'rm -rf "$TMP_DIR"' EXIT

fail() { echo "[run/$EXP] ERROR: $*" >&2; exit 1; }

# Builds $BIN if the binary is missing. A build tree is configured on first
# use; an existing one is reused as-is (its build type included).
ensure_built() {
  if [[ ! -x "$BUILD_DIR/$BIN" ]]; then
    if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
      echo "[run/$EXP] configuring $BUILD_DIR (Release)"
      cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
    fi
    echo "[run/$EXP] building $BIN"
    cmake --build "$BUILD_DIR" --target "$BIN" -j "$(nproc)"
  fi
  [[ -x "$BUILD_DIR/$BIN" ]] || fail "$BUILD_DIR/$BIN missing after build"
}

# Runs $BIN once per seed (BASE_SEED .. BASE_SEED+REPEATS-1), landing one
# raw CSV per seed under $RESULTS_DIR/$EXP/. The bench's stdout table goes
# to a log in $TMP_DIR and is replayed on failure.
run_repeats() {
  local out_dir="$RESULTS_DIR/$EXP"
  mkdir -p "$out_dir"
  rm -f "$out_dir"/raw_seed*.csv
  local r seed csv log
  for ((r = 0; r < REPEATS; ++r)); do
    seed=$((BASE_SEED + r))
    csv="$out_dir/raw_seed${seed}.csv"
    log="$TMP_DIR/seed${seed}.log"
    echo "[run/$EXP] repeat $((r + 1))/$REPEATS (seed $seed)"
    "$BUILD_DIR/$BIN" "$@" --threads="$THREADS" --seed="$seed" \
        --output_csv="$csv" >"$log" 2>&1 ||
      { cat "$log" >&2; fail "$BIN exited non-zero at seed $seed"; }
    # Header plus at least one data row, or the run measured nothing.
    [[ "$(wc -l <"$csv")" -ge 2 ]] || fail "$BIN wrote no rows to $csv"
  done
}

# Joins the raw seeds into summary.csv (stable schema) + summary.md.
summarize() {
  python3 "$REPO_ROOT/tools/summarize_results.py" "$RESULTS_DIR/$EXP" \
    --out-csv "$RESULTS_DIR/$EXP/summary.csv" \
    --out-md "$RESULTS_DIR/$EXP/summary.md"
  echo "[run/$EXP] done: raw + summary under $RESULTS_DIR/$EXP"
}
