#!/usr/bin/env bash
# Figure 1: approximation ratio (top) and memory in points (bottom) vs the
# coreset precision delta, on PHONES / HIGGS / COVTYPE, algorithms
# Ours / OursOblivious vs the full-window baselines Jones and ChenEtAl.
#
# Sweep overrides (env, beyond the common knobs in run/common.sh):
#   WINDOW   window size in points                (default 2000; paper 10000)
#   QUERIES  measured windows per run             (default 10; paper 200)
#   STRIDE   arrivals between measured windows    (default 20; paper 1)
#   DELTAS   comma-separated delta grid           (default 0.5..4 step 0.5)
#   DATASETS comma-separated datasets             (default phones,higgs,covtype)
#
#   PAPER_SCALE=1 runs the paper's exact grid instead of the defaults.
EXP=fig1
BIN=fig1_delta_quality
source "$(dirname -- "${BASH_SOURCE[0]}")/common.sh"

args=(
  --window="${WINDOW:-2000}"
  --queries="${QUERIES:-10}"
  --stride="${STRIDE:-20}"
  --deltas="${DELTAS:-0.5,1,1.5,2,2.5,3,3.5,4}"
  --datasets="${DATASETS:-phones,higgs,covtype}"
)
[[ "$PAPER_SCALE" == 1 ]] && args+=(--paper_scale)

ensure_built
run_repeats "${args[@]}"
summarize
