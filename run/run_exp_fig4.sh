#!/usr/bin/env bash
# Figure 4: query time and memory vs the data dimensionality on the `blobs`
# synthetic datasets (21 Gaussians, ell = 7, k_i = 3), delta in {0.5, 2},
# Jones as the only baseline — the (c/delta)^D growth of Theorem 2.
#
# Sweep overrides (env, beyond the common knobs in run/common.sh):
#   DIMS     comma-separated blob dimensionalities (default 2,3,4,5,6,8,10)
#   WINDOW   window size in points                 (default 2000; paper 10000)
#   QUERIES  measured windows per run              (default 8; paper 200)
#   STRIDE   arrivals between measured windows     (default 25)
#
#   PAPER_SCALE=1 runs the paper's window (10000) and 200 queries.
EXP=fig4
BIN=fig4_blobs_dimensionality
source "$(dirname -- "${BASH_SOURCE[0]}")/common.sh"

args=(
  --dims="${DIMS:-2,3,4,5,6,8,10}"
  --window="${WINDOW:-2000}"
  --queries="${QUERIES:-8}"
  --stride="${STRIDE:-25}"
)
[[ "$PAPER_SCALE" == 1 ]] && args+=(--paper_scale)

ensure_built
run_repeats "${args[@]}"
summarize
