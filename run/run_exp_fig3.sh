#!/usr/bin/env bash
# Figure 3: memory (top) and query time (bottom) vs the window size at the
# most accurate setting delta = 0.5. The baselines mirror the paper's
# timeouts with per-baseline window caps (ChenEtAl 30k, Jones 200k at paper
# scale).
#
# Sweep overrides (env, beyond the common knobs in run/common.sh):
#   WINDOWS     comma-separated window sizes   (default 500,1000,2000,4000,8000)
#   QUERIES     measured windows per run       (default 8; paper 200)
#   STRIDE      arrivals between measured windows          (default 25)
#   DELTA       coreset precision                          (default 0.5)
#   CHEN_LIMIT  largest window ChenEtAl runs on            (default 2000)
#   JONES_LIMIT largest window Jones runs on               (default 8000)
#   DATASETS    comma-separated datasets       (default phones,higgs,covtype)
#
#   PAPER_SCALE=1 runs windows 10000..500000 with the paper's timeouts.
EXP=fig3
BIN=fig3_window_size
source "$(dirname -- "${BASH_SOURCE[0]}")/common.sh"

args=(
  --windows="${WINDOWS:-500,1000,2000,4000,8000}"
  --queries="${QUERIES:-8}"
  --stride="${STRIDE:-25}"
  --delta="${DELTA:-0.5}"
  --chen_limit="${CHEN_LIMIT:-2000}"
  --jones_limit="${JONES_LIMIT:-8000}"
  --datasets="${DATASETS:-phones,higgs,covtype}"
)
[[ "$PAPER_SCALE" == 1 ]] && args+=(--paper_scale)

ensure_built
run_repeats "${args[@]}"
summarize
