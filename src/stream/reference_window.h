// The naive full-window baseline: stores the window verbatim and answers
// queries by running a sequential solver on all of it. This is how the paper
// evaluates ChenEtAl and Jones in the sliding-window setting, and it doubles
// as ground truth for the streaming algorithm's radius in tests.
#ifndef FKC_STREAM_REFERENCE_WINDOW_H_
#define FKC_STREAM_REFERENCE_WINDOW_H_

#include <deque>

#include "common/status.h"
#include "matroid/color_constraint.h"
#include "sequential/fair_center_solver.h"

namespace fkc {

/// A verbatim sliding window of the last n points.
class ReferenceWindow {
 public:
  explicit ReferenceWindow(int64_t window_size);

  /// Appends the next stream point, evicting the oldest when full. The
  /// point's arrival/id metadata is kept as provided.
  void Update(Point p);

  /// Materializes the current window contents, oldest first.
  std::vector<Point> Snapshot() const;

  /// Runs `solver` on the entire window — the baseline query.
  Result<FairCenterSolution> Query(const Metric& metric,
                                   const FairCenterSolver& solver,
                                   const ColorConstraint& constraint) const;

  int64_t size() const { return static_cast<int64_t>(buffer_.size()); }
  int64_t window_size() const { return window_size_; }

  /// Memory in the paper's unit: every window point is stored.
  int64_t MemoryPoints() const { return size(); }

 private:
  int64_t window_size_;
  std::deque<Point> buffer_;
};

}  // namespace fkc

#endif  // FKC_STREAM_REFERENCE_WINDOW_H_
