#include "stream/window_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sequential/radius.h"
#include "serving/delta_log.h"

namespace fkc {
namespace {

/// The keyed-arrival batching both sharded drivers share: buffers arrivals,
/// delivers them through IngestBatch in `batch_size` chunks, accumulates the
/// ingest wall time, and CHECKs every status (the drivers' schedules only
/// produce valid arrivals, so a rejection is a driver bug).
class KeyedBatchFeeder {
 public:
  KeyedBatchFeeder(serving::ShardManager* manager, int64_t batch_size,
                   double* update_seconds)
      : manager_(manager),
        batch_size_(batch_size),
        update_seconds_(update_seconds) {
    pending_.reserve(static_cast<size_t>(batch_size_));
  }

  void Add(std::string key, Point point) {
    pending_.push_back({std::move(key), std::move(point)});
    if (static_cast<int64_t>(pending_.size()) >= batch_size_) Flush();
  }

  void Flush() {
    if (pending_.empty()) return;
    Stopwatch timer;
    const Status status = manager_->IngestBatch(std::move(pending_));
    FKC_CHECK(status.ok()) << status.ToString();
    *update_seconds_ += timer.ElapsedMillis() / 1e3;
    pending_ = {};
    pending_.reserve(static_cast<size_t>(batch_size_));
  }

 private:
  serving::ShardManager* manager_;
  int64_t batch_size_;
  double* update_seconds_;
  std::vector<serving::KeyedPoint> pending_;
};

}  // namespace

BaselineAdapter::BaselineAdapter(std::string name,
                                 const FairCenterSolver* solver,
                                 const Metric* metric,
                                 ColorConstraint constraint,
                                 int64_t window_size)
    : name_(std::move(name)),
      solver_(solver),
      metric_(metric),
      constraint_(std::move(constraint)),
      window_(window_size) {}

Result<FairCenterSolution> BaselineAdapter::Query(QueryStats* stats) {
  if (stats != nullptr) {
    *stats = QueryStats{};
    stats->coreset_size = window_.size();
  }
  return window_.Query(*metric_, *solver_, constraint_);
}

WindowDriver::WindowDriver(const Metric* metric, ColorConstraint constraint,
                           int64_t window_size)
    : metric_(metric),
      constraint_(std::move(constraint)),
      window_size_(window_size) {
  FKC_CHECK(metric != nullptr);
  FKC_CHECK_GT(window_size, 0);
}

void WindowDriver::Add(std::unique_ptr<DrivenAlgorithm> algorithm) {
  algorithms_.push_back(std::move(algorithm));
}

void WindowDriver::AddBaseline(std::string name,
                               const FairCenterSolver* solver) {
  Add(std::make_unique<BaselineAdapter>(std::move(name), solver, metric_,
                                        constraint_, window_size_));
}

std::vector<AlgorithmReport> WindowDriver::Run(PointStream* stream,
                                               const DriverOptions& options) {
  FKC_CHECK_GT(options.stream_length, 0);
  FKC_CHECK_GT(options.num_queries, 0);
  FKC_CHECK_GT(options.query_stride, 0);
  FKC_CHECK_GT(options.update_batch_size, 0);
  FKC_CHECK(!algorithms_.empty());

  std::vector<MetricsRecorder> recorders;
  recorders.reserve(algorithms_.size());
  for (const auto& algo : algorithms_) recorders.emplace_back(algo->Name());

  // Ground-truth window for radius evaluation (harness-side only).
  ReferenceWindow truth(window_size_);

  const int64_t measure_from =
      options.stream_length - options.num_queries * options.query_stride + 1;

  // Arrivals awaiting dispatch; flushed per batch and before every measured
  // query so query positions do not depend on the batch size.
  std::vector<Point> pending;
  pending.reserve(static_cast<size_t>(options.update_batch_size));
  auto flush = [&]() {
    if (pending.empty()) return;
    for (size_t a = 0; a < algorithms_.size(); ++a) {
      Stopwatch timer;
      algorithms_[a]->UpdateBatch(pending);
      const int64_t per_point =
          timer.ElapsedNanos() / static_cast<int64_t>(pending.size());
      for (size_t j = 0; j < pending.size(); ++j) {
        recorders[a].RecordUpdateNanos(per_point);
      }
    }
    pending.clear();
  };

  for (int64_t t = 1; t <= options.stream_length; ++t) {
    auto next = stream->Next();
    FKC_CHECK(next.has_value())
        << "stream exhausted at t=" << t << "; need " << options.stream_length;
    Point p = std::move(*next);
    p.arrival = t;
    p.id = static_cast<uint64_t>(t);
    truth.Update(p);

    const bool measure =
        t >= measure_from && (t - measure_from) % options.query_stride == 0;

    if (options.update_batch_size == 1) {
      for (size_t a = 0; a < algorithms_.size(); ++a) {
        Stopwatch timer;
        algorithms_[a]->Update(p);
        recorders[a].RecordUpdateNanos(timer.ElapsedNanos());
      }
    } else {
      pending.push_back(std::move(p));
      if (static_cast<int64_t>(pending.size()) >= options.update_batch_size ||
          measure || t == options.stream_length) {
        flush();
      }
    }

    if (!measure) continue;

    const std::vector<Point> window_points = truth.Snapshot();
    std::vector<double> radii(algorithms_.size());
    std::vector<int64_t> query_nanos(algorithms_.size());
    std::vector<int64_t> memories(algorithms_.size());

    double best_baseline = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < algorithms_.size(); ++a) {
      Stopwatch timer;
      QueryStats stats;
      auto solution = algorithms_[a]->Query(&stats);
      query_nanos[a] = timer.ElapsedNanos();
      FKC_CHECK(solution.ok()) << algorithms_[a]->Name() << ": "
                               << solution.status().ToString();
      if (options.check_fairness) {
        FKC_CHECK(constraint_.IsFeasible(solution.value().centers))
            << algorithms_[a]->Name() << " violated the color caps";
      }
      radii[a] =
          ClusteringRadius(*metric_, window_points, solution.value().centers);
      memories[a] = algorithms_[a]->MemoryPoints();
      if (algorithms_[a]->IsBaseline()) {
        best_baseline = std::min(best_baseline, radii[a]);
      }
    }

    for (size_t a = 0; a < algorithms_.size(); ++a) {
      double ratio = std::numeric_limits<double>::quiet_NaN();
      if (std::isfinite(best_baseline) && best_baseline > 0.0) {
        ratio = radii[a] / best_baseline;
      }
      recorders[a].RecordQuery(query_nanos[a], radii[a], memories[a], ratio);
    }
  }

  std::vector<AlgorithmReport> reports;
  reports.reserve(recorders.size());
  for (const MetricsRecorder& rec : recorders) {
    AlgorithmReport report;
    report.name = rec.name();
    report.mean_update_ms = rec.MeanUpdateMillis();
    report.mean_query_ms = rec.MeanQueryMillis();
    report.mean_memory_points = rec.MeanMemoryPoints();
    report.mean_radius = rec.MeanRadius();
    report.mean_ratio = rec.MeanApproxRatio();
    report.queries = rec.QueryCount();
    reports.push_back(report);
  }
  return reports;
}

ShardedThroughputReport RunShardedThroughput(
    serving::ShardManager* manager, PointStream* stream,
    const std::vector<std::string>& keys, const ShardedRunOptions& options) {
  FKC_CHECK(manager != nullptr);
  FKC_CHECK(stream != nullptr);
  FKC_CHECK(!keys.empty());
  FKC_CHECK_GT(options.stream_length, 0);
  FKC_CHECK_GT(options.batch_size, 0);

  ShardedThroughputReport report;
  report.shards = static_cast<int>(keys.size());

  KeyedBatchFeeder feeder(manager, options.batch_size,
                          &report.update_seconds);

  // Burst schedule: the first burst_size arrivals of every burst_every
  // cycle accumulate here and land as one oversized IngestBatch. The burst
  // is always delivered before the next paced arrival is read, so per-key
  // arrival order matches the paced stream exactly.
  int64_t burst_size = 0;
  if (options.burst_every > 0) {
    burst_size = options.burst_size > 0 ? options.burst_size
                                        : 8 * options.batch_size;
    burst_size = std::min(burst_size, options.burst_every);
  }
  std::vector<serving::KeyedPoint> burst;
  if (burst_size > 0) burst.reserve(static_cast<size_t>(burst_size));
  auto deliver_burst = [&] {
    if (burst.empty()) return;
    feeder.Flush();  // paced arrivals buffered earlier precede the burst
    Stopwatch timer;
    const Status status = manager->IngestBatch(std::move(burst));
    FKC_CHECK(status.ok()) << status.ToString();
    report.update_seconds += timer.ElapsedMillis() / 1e3;
    ++report.bursts;
    burst = {};
    burst.reserve(static_cast<size_t>(burst_size));
  };

  for (int64_t t = 0; t < options.stream_length; ++t) {
    auto next = stream->Next();
    FKC_CHECK(next.has_value()) << "stream exhausted at arrival " << t;
    const std::string& key =
        keys[static_cast<size_t>(t % static_cast<int64_t>(keys.size()))];
    if (burst_size > 0 && t % options.burst_every < burst_size) {
      burst.push_back({key, std::move(*next)});
      if (static_cast<int64_t>(burst.size()) >= burst_size) deliver_burst();
    } else {
      feeder.Add(key, std::move(*next));
    }
    ++report.updates;

    if (options.query_every > 0 && (t + 1) % options.query_every == 0) {
      deliver_burst();  // a query mid-cycle ships the partial burst first
      feeder.Flush();  // answers must reflect every arrival delivered so far
      Stopwatch timer;
      const auto answers = manager->QueryAll();
      report.query_seconds += timer.ElapsedMillis() / 1e3;
      for (const serving::ShardAnswer& answer : answers) {
        FKC_CHECK(answer.solution.ok())
            << "shard '" << answer.key
            << "': " << answer.solution.status().ToString();
      }
      report.queries += static_cast<int64_t>(answers.size());
    }
  }
  deliver_burst();
  feeder.Flush();
  return report;
}

ShardedChurnReport RunShardedChurn(serving::ShardManager* manager,
                                   PointStream* stream,
                                   const ShardedChurnOptions& options) {
  FKC_CHECK(manager != nullptr);
  FKC_CHECK(stream != nullptr);
  FKC_CHECK_GT(options.stream_length, 0);
  FKC_CHECK_GT(options.batch_size, 0);
  FKC_CHECK_GT(options.tenants, 0);
  FKC_CHECK_GT(options.active, 0);
  FKC_CHECK_GT(options.rotate_every, 0);

  ShardedChurnReport report;
  KeyedBatchFeeder feeder(manager, options.batch_size,
                          &report.update_seconds);
  serving::DeltaLog::Options log_options;
  log_options.max_chain_length = options.delta_chain_budget;
  serving::DeltaLog log(log_options);

  for (int64_t t = 0; t < options.stream_length; ++t) {
    auto next = stream->Next();
    FKC_CHECK(next.has_value()) << "stream exhausted at arrival " << t;
    // The active set slides forward one tenant per rotate_every arrivals;
    // tenants behind the set go idle and the periodic sweep spills them.
    const int64_t tenant =
        (t / options.rotate_every + t % options.active) % options.tenants;
    feeder.Add(StrFormat("tenant-%04lld", static_cast<long long>(tenant)),
               std::move(*next));
    ++report.updates;

    if (options.evict_every > 0 && (t + 1) % options.evict_every == 0) {
      feeder.Flush();
      Stopwatch timer;
      Status spill_status;
      manager->EvictIdle(options.idle_ttl, &spill_status);
      FKC_CHECK(spill_status.ok()) << spill_status.ToString();
      report.maintenance_seconds += timer.ElapsedMillis() / 1e3;
    }
    if (options.delta_every > 0 && (t + 1) % options.delta_every == 0) {
      feeder.Flush();
      Stopwatch timer;
      auto captured = log.Capture(manager);
      report.maintenance_seconds += timer.ElapsedMillis() / 1e3;
      FKC_CHECK(captured.ok()) << captured.status().ToString();
      if (!captured.value().rebased) {
        ++report.delta_checkpoints;
        report.delta_bytes += static_cast<int64_t>(captured.value().bytes);
      }
    }
  }
  feeder.Flush();

  Stopwatch timer;
  auto full = manager->CheckpointAll();
  FKC_CHECK(full.ok()) << full.status().ToString();
  report.full_checkpoint_bytes = static_cast<int64_t>(full.value().size());
  report.maintenance_seconds += timer.ElapsedMillis() / 1e3;
  report.log_bytes = static_cast<int64_t>(log.base_bytes()) + log.chain_bytes();
  report.rebases = log.rebases();
  report.evictions = manager->evictions();
  report.rehydrations = manager->rehydrations();
  report.total_shards = static_cast<int64_t>(manager->shard_count());
  report.live_shards = static_cast<int64_t>(manager->live_shard_count());
  return report;
}

ShardedContentionReport RunShardedContention(
    serving::ShardManager* manager, PointStream* stream,
    const ShardedContentionOptions& options) {
  FKC_CHECK(manager != nullptr);
  FKC_CHECK(stream != nullptr);
  FKC_CHECK_GT(options.client_threads, 0);
  FKC_CHECK_GT(options.points_per_client, 0);
  FKC_CHECK_GT(options.batch_size, 0);

  ShardedContentionReport report;
  report.client_threads = options.client_threads;
  report.idle_tenants = static_cast<int>(options.idle_tenants);

  // The key schedule. Classic mode: client c owns "client-c", fully
  // disjoint. Zipf mode (zipf_s > 0): every arrival's key is a rank drawn
  // from a shared heavy-tailed tenant population, so hot tenants — and
  // their routing stripes — are contended across clients. create_every
  // rotates either schedule to a fresh key generation mid-run, keeping
  // shard creation on the measured path.
  const int64_t zipf_tenants =
      options.zipf_s > 0.0
          ? (options.zipf_tenants > 0
                 ? options.zipf_tenants
                 : int64_t{4} * options.client_threads)
          : 0;
  std::unique_ptr<ZipfDistribution> zipf;
  if (options.zipf_s > 0.0) {
    zipf = std::make_unique<ZipfDistribution>(
        static_cast<size_t>(zipf_tenants), options.zipf_s);
  }
  auto key_for = [&](int client, int64_t i, Rng* rng) -> std::string {
    const long long generation =
        options.create_every > 0
            ? static_cast<long long>(i / options.create_every)
            : 0;
    if (zipf != nullptr) {
      const long long rank = static_cast<long long>(zipf->Next(rng));
      return generation == 0 ? StrFormat("hot-%04lld", rank)
                             : StrFormat("hot-g%lld-%04lld", generation, rank);
    }
    return generation == 0
               ? StrFormat("client-%02d", client)
               : StrFormat("client-%02d-g%lld", client, generation);
  };

  // Pre-generate every client's keyed arrivals before the clock starts:
  // stream synthesis (and Zipf sampling) must not be measured, and clients
  // must not contend on the stream itself. Deterministic per client: the
  // Zipf draws are seeded by the client index.
  std::vector<std::vector<serving::KeyedPoint>> per_client(
      static_cast<size_t>(options.client_threads));
  for (int c = 0; c < options.client_threads; ++c) {
    Rng rng(/*seed=*/777 + static_cast<uint64_t>(c));
    auto& arrivals = per_client[static_cast<size_t>(c)];
    arrivals.reserve(static_cast<size_t>(options.points_per_client));
    for (int64_t i = 0; i < options.points_per_client; ++i) {
      auto next = stream->Next();
      FKC_CHECK(next.has_value()) << "stream exhausted pre-generating points";
      arrivals.push_back({key_for(c, i, &rng), std::move(*next)});
    }
  }

  // Build the cold half of the fleet (also unmeasured): fill each idle
  // tenant, then spill all of them at once. They stay spilled for the whole
  // run — the hot keys are disjoint and the maintenance TTL is far larger
  // than the run — so every QueryAll round pays idle_tenants ephemeral
  // reads with full state deserialization.
  for (int64_t t = 0; t < options.idle_tenants; ++t) {
    const std::string key = StrFormat("idle-%02lld", static_cast<long long>(t));
    std::vector<serving::KeyedPoint> batch;
    batch.reserve(static_cast<size_t>(options.batch_size));
    for (int64_t i = 0; i < options.idle_points; ++i) {
      auto next = stream->Next();
      FKC_CHECK(next.has_value()) << "stream exhausted building idle tenants";
      batch.push_back({key, std::move(*next)});
      if (static_cast<int64_t>(batch.size()) == options.batch_size ||
          i + 1 == options.idle_points) {
        const Status status = manager->IngestBatch(std::move(batch));
        FKC_CHECK(status.ok()) << status.ToString();
        batch.clear();
        batch.reserve(static_cast<size_t>(options.batch_size));
      }
    }
  }
  // Warm up the generation-0 hot shards: one arrival each, so the measured
  // phase never pays their creation (later create_every generations pay it
  // on the hot path by design), and the fleet clock moves past every cold
  // tenant's last touch (EvictIdle counts a shard idle only when it is
  // STRICTLY older than the TTL). In Zipf mode the warm set is the whole
  // rank population — even the tail ranks a client may never draw.
  std::vector<std::string> warm_keys;
  if (zipf != nullptr) {
    for (int64_t rank = 0; rank < zipf_tenants; ++rank) {
      warm_keys.push_back(StrFormat("hot-%04lld", static_cast<long long>(rank)));
    }
  } else {
    for (int c = 0; c < options.client_threads; ++c) {
      warm_keys.push_back(StrFormat("client-%02d", c));
    }
  }
  for (const std::string& key : warm_keys) {
    auto next = stream->Next();
    FKC_CHECK(next.has_value()) << "stream exhausted warming hot shards";
    std::vector<serving::KeyedPoint> warmup;
    warmup.push_back({key, std::move(*next)});
    const Status status = manager->IngestBatch(std::move(warmup));
    FKC_CHECK(status.ok()) << status.ToString();
  }
  if (options.idle_tenants > 0) {
    // TTL = warm_keys - 1 separates the fleet exactly: every cold tenant
    // is at least warm_keys arrivals stale (the warmups above all came
    // later), while the oldest hot warmup is warm_keys - 1.
    Status spill_status;
    const int64_t spilled = manager->EvictIdle(
        static_cast<int64_t>(warm_keys.size()) - 1, &spill_status);
    FKC_CHECK(spill_status.ok()) << spill_status.ToString();
    FKC_CHECK_EQ(spilled, options.idle_tenants)
        << "cold tenants failed to spill";
  }

  // The baseline's "one internal mutex": every manager call — ingest,
  // QueryAll, maintenance — funnels through this lock when global_mutex is
  // set. With it off the lambda is pass-through and the manager's own
  // two-level locking is what's measured.
  std::mutex global_mu;
  auto locked = [&](auto&& fn) {
    if (options.global_mutex) {
      std::lock_guard<std::mutex> lock(global_mu);
      return fn();
    }
    return fn();
  };

  std::atomic<bool> done{false};
  std::atomic<int64_t> query_rounds{0};
  std::atomic<int64_t> maintenance_ticks{0};

  // Background QueryAll storm: rounds run back to back, separated only by
  // the configured pause (the baseline's ingest window — see the header).
  std::thread query_thread([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto answers = locked([&] { return manager->QueryAll(); });
      for (const serving::ShardAnswer& answer : answers) {
        FKC_CHECK(answer.solution.ok())
            << "shard '" << answer.key
            << "': " << answer.solution.status().ToString();
      }
      query_rounds.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.query_pause_ms));
    }
  });
  std::thread maintenance_thread([&] {
    serving::MaintenanceOptions tick_options;
    tick_options.idle_ttl = options.idle_ttl;
    while (!done.load(std::memory_order_relaxed)) {
      const auto tick =
          locked([&] { return manager->RunMaintenanceTick(tick_options); });
      FKC_CHECK(tick.status.ok()) << tick.status.ToString();
      maintenance_ticks.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.maintenance_pause_ms));
    }
  });

  // Release the clients and time the whole concurrent phase: wall clock
  // from here to the last client finishing its fixed workload, with the
  // background threads hammering throughout.
  Stopwatch timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.client_threads));
  for (int c = 0; c < options.client_threads; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<serving::KeyedPoint>& arrivals =
          per_client[static_cast<size_t>(c)];
      for (size_t start = 0; start < arrivals.size();
           start += static_cast<size_t>(options.batch_size)) {
        const size_t end = std::min(
            arrivals.size(), start + static_cast<size_t>(options.batch_size));
        std::vector<serving::KeyedPoint> batch(arrivals.begin() + start,
                                               arrivals.begin() + end);
        const Status status =
            locked([&] { return manager->IngestBatch(std::move(batch)); });
        FKC_CHECK(status.ok()) << status.ToString();
        if (options.client_pause_ms > 0 &&
            end < arrivals.size()) {  // no tail padding after the last batch
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options.client_pause_ms));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  report.update_seconds = timer.ElapsedMillis() / 1e3;
  done.store(true, std::memory_order_relaxed);
  query_thread.join();
  maintenance_thread.join();

  report.updates = static_cast<int64_t>(options.client_threads) *
                   options.points_per_client;
  report.query_rounds = query_rounds.load();
  report.maintenance_ticks = maintenance_ticks.load();
  report.shards = static_cast<int>(manager->shard_count()) -
                  static_cast<int>(options.idle_tenants);
  report.stripes = manager->num_stripes();
  report.pool_steals = manager->pool_shared_claims();
  const std::vector<int64_t> stripe_ops = manager->StripeOps();
  int64_t hottest = 0, total_ops = 0;
  for (int64_t ops : stripe_ops) {
    hottest = std::max(hottest, ops);
    total_ops += ops;
  }
  report.stripe_hot_ratio =
      total_ops > 0 ? static_cast<double>(hottest) / total_ops : 0.0;
  return report;
}

}  // namespace fkc
