#include "stream/metrics_recorder.h"

#include <cmath>
#include <limits>

namespace fkc {

MetricsRecorder::MetricsRecorder(std::string algorithm_name)
    : name_(std::move(algorithm_name)) {}

void MetricsRecorder::RecordQuery(int64_t nanos, double radius,
                                  int64_t memory_points, double ratio) {
  query_time_.AddNanos(nanos);
  radius_sum_ += radius;
  memory_sum_ += static_cast<double>(memory_points);
  ++sample_count_;
  if (std::isfinite(ratio)) {
    ratio_sum_ += ratio;
    ++ratio_count_;
  }
}

double MetricsRecorder::MeanRadius() const {
  if (sample_count_ == 0) return 0.0;
  return radius_sum_ / static_cast<double>(sample_count_);
}

double MetricsRecorder::MeanMemoryPoints() const {
  if (sample_count_ == 0) return 0.0;
  return memory_sum_ / static_cast<double>(sample_count_);
}

double MetricsRecorder::MeanApproxRatio() const {
  if (ratio_count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return ratio_sum_ / static_cast<double>(ratio_count_);
}

}  // namespace fkc
