// Experiment driver: feeds a stream into any number of sliding-window
// algorithms and full-window baselines, measures the paper's four indicators
// (memory in points, update time, query time, approximation ratio vs the
// best baseline radius per window), and averages them over consecutive
// query windows exactly as Section 4 prescribes.
#ifndef FKC_STREAM_WINDOW_DRIVER_H_
#define FKC_STREAM_WINDOW_DRIVER_H_

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/fair_center_sliding_window.h"
#include "matroid/color_constraint.h"
#include "serving/shard_manager.h"
#include "stream/metrics_recorder.h"
#include "stream/reference_window.h"
#include "stream/stream.h"

namespace fkc {

/// Uniform handle the driver uses to drive one competitor.
class DrivenAlgorithm {
 public:
  virtual ~DrivenAlgorithm() = default;
  virtual void Update(const Point& p) = 0;
  /// Consumes a batch of consecutive arrivals. The default unrolls into
  /// Update calls; adapters over batch-capable windows forward to their
  /// native UpdateBatch so the parallel engine sees whole batches.
  virtual void UpdateBatch(const std::vector<Point>& batch) {
    for (const Point& p : batch) Update(p);
  }
  virtual Result<FairCenterSolution> Query(QueryStats* stats) = 0;
  /// Stored points, the paper's memory unit.
  virtual int64_t MemoryPoints() const = 0;
  virtual const std::string& Name() const = 0;
  /// Baselines define the denominator of the approximation ratio.
  virtual bool IsBaseline() const = 0;
};

namespace internal {
/// Detects a native UpdateBatch(std::vector<Point>) on the wrapped window.
template <typename Window, typename = void>
struct HasUpdateBatch : std::false_type {};
template <typename Window>
struct HasUpdateBatch<Window,
                      std::void_t<decltype(std::declval<Window&>().UpdateBatch(
                          std::declval<std::vector<Point>>()))>>
    : std::true_type {};
}  // namespace internal

/// Adapter over FairCenterSlidingWindow / FairCenterLite (anything with the
/// same Update/Query/Memory surface).
template <typename Window>
class StreamingAdapter final : public DrivenAlgorithm {
 public:
  StreamingAdapter(std::string name, Window* window)
      : name_(std::move(name)), window_(window) {}

  void Update(const Point& p) override { window_->Update(p); }
  void UpdateBatch(const std::vector<Point>& batch) override {
    if constexpr (internal::HasUpdateBatch<Window>::value) {
      window_->UpdateBatch(batch);
    } else {
      DrivenAlgorithm::UpdateBatch(batch);
    }
  }
  Result<FairCenterSolution> Query(QueryStats* stats) override {
    return window_->Query(stats);
  }
  int64_t MemoryPoints() const override {
    return window_->Memory().TotalPoints();
  }
  const std::string& Name() const override { return name_; }
  bool IsBaseline() const override { return false; }

 private:
  std::string name_;
  Window* window_;
};

/// A sequential solver run on a verbatim copy of the window — how the paper
/// evaluates ChenEtAl and Jones in the sliding-window setting.
class BaselineAdapter final : public DrivenAlgorithm {
 public:
  BaselineAdapter(std::string name, const FairCenterSolver* solver,
                  const Metric* metric, ColorConstraint constraint,
                  int64_t window_size);

  void Update(const Point& p) override { window_.Update(p); }
  Result<FairCenterSolution> Query(QueryStats* stats) override;
  int64_t MemoryPoints() const override { return window_.MemoryPoints(); }
  const std::string& Name() const override { return name_; }
  bool IsBaseline() const override { return true; }

 private:
  std::string name_;
  const FairCenterSolver* solver_;
  const Metric* metric_;
  ColorConstraint constraint_;
  ReferenceWindow window_;
};

/// Final averaged measurements for one algorithm.
struct AlgorithmReport {
  std::string name;
  double mean_update_ms = 0.0;
  double mean_query_ms = 0.0;
  double mean_memory_points = 0.0;
  double mean_radius = 0.0;
  /// Mean per-window radius / best-baseline-radius; NaN without baselines.
  double mean_ratio = 0.0;
  int64_t queries = 0;
};

/// Experiment schedule.
struct DriverOptions {
  /// Total stream points fed (must exceed window_size to exercise sliding).
  int64_t stream_length = 0;
  /// Number of measured query windows at the end of the stream (the paper
  /// averages over 200 consecutive windows).
  int64_t num_queries = 200;
  /// Arrivals between consecutive measured queries.
  int64_t query_stride = 1;
  /// Arrivals delivered per UpdateBatch call. 1 reproduces the classic
  /// point-at-a-time drive; larger values exercise the batched engine.
  /// Batches are flushed early when a measured query is due, so query
  /// positions are identical at every batch size.
  int64_t update_batch_size = 1;
  /// Verify that every returned solution satisfies the color caps.
  bool check_fairness = true;
};

/// Runs registered algorithms over a stream and reports averages.
class WindowDriver {
 public:
  WindowDriver(const Metric* metric, ColorConstraint constraint,
               int64_t window_size);

  /// Registers a competitor; the driver takes ownership of the adapter.
  void Add(std::unique_ptr<DrivenAlgorithm> algorithm);

  /// Convenience wrappers.
  template <typename Window>
  void AddStreaming(std::string name, Window* window) {
    Add(std::make_unique<StreamingAdapter<Window>>(std::move(name), window));
  }
  void AddBaseline(std::string name, const FairCenterSolver* solver);

  /// Feeds `options.stream_length` points and measures the tail windows.
  /// Radii are always evaluated against the true window contents.
  std::vector<AlgorithmReport> Run(PointStream* stream,
                                   const DriverOptions& options);

 private:
  const Metric* metric_;
  ColorConstraint constraint_;
  int64_t window_size_;
  std::vector<std::unique_ptr<DrivenAlgorithm>> algorithms_;
};

/// Schedule of a sharded serving run (bench/shard_scaling and the
/// multi-tenant example).
struct ShardedRunOptions {
  /// Total keyed arrivals fed across all shards.
  int64_t stream_length = 0;
  /// Keyed arrivals per IngestBatch call.
  int64_t batch_size = 64;
  /// A QueryAll fan-out after every this many arrivals (0 = never).
  int64_t query_every = 1024;
  /// Burst arrivals: every `burst_every` arrivals the driver withholds the
  /// next `burst_size` arrivals and delivers them as ONE oversized
  /// IngestBatch call (bypassing `batch_size`), modelling synchronized
  /// sensor flushes or thundering-herd tenants instead of a perfectly
  /// paced stream. Any paced arrivals still buffered are flushed before
  /// the burst, so per-key arrival order — the only order that matters —
  /// is exactly the paced stream's. 0 disables bursts.
  int64_t burst_every = 0;
  /// Arrivals per burst; clamped to `burst_every`, and 0 defaults to
  /// 8 * batch_size when bursts are enabled.
  int64_t burst_size = 0;
};

/// Aggregate throughput of one sharded run.
struct ShardedThroughputReport {
  int shards = 0;
  int64_t updates = 0;
  int64_t queries = 0;  ///< per-shard answers, i.e. QueryAll calls * shards
  int64_t bursts = 0;   ///< oversized burst batches delivered
  double update_seconds = 0.0;
  double query_seconds = 0.0;

  double UpdatesPerSecond() const {
    return update_seconds > 0.0 ? static_cast<double>(updates) / update_seconds
                                : 0.0;
  }
  double QueriesPerSecond() const {
    return query_seconds > 0.0 ? static_cast<double>(queries) / query_seconds
                                : 0.0;
  }
};

/// Drives a ShardManager for throughput measurement: arrivals from `stream`
/// are routed round-robin over `keys` (arrival i goes to keys[i % keys]),
/// delivered in batches, with periodic QueryAll fan-outs. Every returned
/// answer is checked OK; wall times for ingest and query are accumulated
/// separately.
ShardedThroughputReport RunShardedThroughput(
    serving::ShardManager* manager, PointStream* stream,
    const std::vector<std::string>& keys, const ShardedRunOptions& options);

/// Schedule of an eviction-churn serving run: a large tenant population of
/// which only a small set is active at any moment, the active set sliding
/// over time so tenants go idle, get spilled by periodic EvictIdle sweeps
/// (into whichever SpillStore backend the manager was built with), and are
/// rehydrated if the schedule returns to them. Periodic delta captures feed
/// a compacting serving::DeltaLog, measuring how much smaller steady-state
/// deltas are than the full fleet blob and how often the chain re-bases.
struct ShardedChurnOptions {
  /// Total keyed arrivals fed across the run.
  int64_t stream_length = 0;
  /// Keyed arrivals per IngestBatch call.
  int64_t batch_size = 64;
  /// Tenant population the schedule cycles through.
  int64_t tenants = 32;
  /// Tenants receiving arrivals at any moment (arrival t goes to tenant
  /// (t / rotate_every + t % active) % tenants).
  int64_t active = 4;
  /// Arrivals between sliding the active set forward by one tenant.
  int64_t rotate_every = 1024;
  /// Arrivals between EvictIdle sweeps (0 = never evict).
  int64_t evict_every = 1024;
  /// Idle TTL handed to EvictIdle, in fleet-wide arrivals.
  int64_t idle_ttl = 4096;
  /// Arrivals between DeltaLog captures (0 = never).
  int64_t delta_every = 8192;
  /// DeltaLog chain-length budget: captures past this many chained deltas
  /// re-base on a full checkpoint.
  int64_t delta_chain_budget = 8;
};

/// Outcome of one churn run. The counters (updates, evictions,
/// rehydrations, shard/byte totals) are deterministic for a fixed stream
/// and schedule; the wall times are not.
struct ShardedChurnReport {
  int64_t updates = 0;
  int64_t evictions = 0;
  int64_t rehydrations = 0;
  int64_t total_shards = 0;      ///< live + spilled at the end
  int64_t live_shards = 0;       ///< live at the end (post final sweep)
  int64_t delta_checkpoints = 0;  ///< DeltaLog captures that shipped a delta
  int64_t delta_bytes = 0;       ///< summed over all delta captures
  int64_t rebases = 0;           ///< chain compactions (budget exceeded)
  int64_t log_bytes = 0;         ///< final DeltaLog size (base + chain)
  int64_t full_checkpoint_bytes = 0;  ///< one CheckpointAll at the end
  double update_seconds = 0.0;
  double maintenance_seconds = 0.0;  ///< EvictIdle + checkpoint time

  double UpdatesPerSecond() const {
    return update_seconds > 0.0 ? static_cast<double>(updates) / update_seconds
                                : 0.0;
  }
};

/// Drives a ShardManager through the churn schedule above. Every IngestBatch
/// status is checked OK (the schedule only produces valid arrivals).
ShardedChurnReport RunShardedChurn(serving::ShardManager* manager,
                                   PointStream* stream,
                                   const ShardedChurnOptions& options);

/// Schedule of a multi-thread contention run: N client threads, each
/// ingesting a fixed number of pre-generated arrivals into its own tenant
/// shard, while a background thread runs continuous QueryAll rounds and a
/// maintenance thread runs eviction-sweep ticks. Measures how much ingest
/// the serving layer sustains while fleet-wide reads and maintenance hammer
/// it — the scenario per-shard locking exists for. With `global_mutex` the
/// same schedule wraps EVERY manager call in one external mutex, emulating
/// the old single-internal-mutex design as the baseline: there a QueryAll
/// round blocks all clients for the whole fleet scan.
struct ShardedContentionOptions {
  /// Client threads; client c ingests only into its own key ("client-c"),
  /// so client threads never contend with each other under per-shard
  /// locking, only with the fleet-wide readers.
  int client_threads = 8;
  /// Arrivals each client ingests (pre-generated before the clock starts,
  /// so stream synthesis is not measured).
  int64_t points_per_client = 0;
  /// Keyed arrivals per IngestBatch call.
  int64_t batch_size = 64;
  /// Think time between a client's batches, modelling a paced per-tenant
  /// arrival stream instead of an offline replay. The pacing leaves the
  /// fleet idle headroom — per-shard locking spends it on the background
  /// QueryAll scans without delaying any client, while the single-mutex
  /// baseline stalls every client for the full duration of each scan.
  /// 0 = hammer (clients replay as fast as the manager admits them).
  int64_t client_pause_ms = 2;
  /// Cold tenants: before the clock starts, each is filled with
  /// `idle_points` arrivals and spilled to the store (EvictIdle(0)). They
  /// never ingest again, but every background QueryAll round pays an
  /// ephemeral read — store Get + full state deserialization — for each
  /// one. That is what makes a fleet scan cost real time: under the
  /// single-mutex baseline the whole scan happens with every hot client
  /// blocked, while per-shard locking deserializes cold state outside any
  /// lock the clients need.
  int64_t idle_tenants = 24;
  /// Arrivals pre-ingested into each cold tenant (sets its spilled-state
  /// size, i.e. the per-shard cost of a fleet scan).
  int64_t idle_points = 1000;
  /// Pause between background QueryAll rounds. Deliberately non-zero: it
  /// also gives the single-mutex baseline its only ingest window — with a
  /// back-to-back query loop the global mutex would be re-acquired before
  /// any waiting client wakes, and the baseline would measure pure
  /// starvation instead of contention.
  int64_t query_pause_ms = 2;
  /// Pause between maintenance ticks (each = one eviction sweep).
  int64_t maintenance_pause_ms = 5;
  /// Idle TTL handed to the per-tick sweep. The default is large enough
  /// that the sweep scans but spills nothing — the contention scenario
  /// measures locking, not spill IO.
  int64_t idle_ttl = int64_t{1} << 30;
  /// Baseline mode: serialize every manager call behind one external
  /// mutex (ingest, QueryAll, and maintenance alike).
  bool global_mutex = false;
  /// Zipf skew of the key routing. 0 keeps the classic schedule (client c
  /// owns key "client-c", fully disjoint). s > 0 switches to a shared
  /// heavy-tailed tenant population: each client draws every arrival's key
  /// from Zipf(s) over `zipf_tenants` ranks (deterministically, seeded per
  /// client), so hot tenants — and their routing stripes — are shared
  /// across clients. Measures the striped map under realistic hot-key
  /// popularity instead of perfectly spread routing.
  double zipf_s = 0.0;
  /// Tenant population for the Zipf schedule; 0 = 4 * client_threads.
  int64_t zipf_tenants = 0;
  /// Create-heavy churn: every this many arrivals, a client rotates to a
  /// fresh never-seen key generation (key "client-c-gN" or a fresh Zipf
  /// rank namespace), so shard CREATION — the routing-layer write path the
  /// stripes exist to spread — stays on the hot path instead of happening
  /// once at warm-up. 0 = keys are stable for the whole run.
  int64_t create_every = 0;
};

/// Outcome of one contention run. updates and shards are deterministic;
/// everything else is wall-clock dependent (including query_rounds and
/// maintenance_ticks — background threads run as often as the clock lets
/// them).
struct ShardedContentionReport {
  int shards = 0;          ///< hot shards at the end (clients or Zipf ranks)
  int client_threads = 0;
  int idle_tenants = 0;    ///< cold spilled tenants scanned by every round
  int64_t updates = 0;
  int64_t query_rounds = 0;       ///< completed background QueryAll rounds
  int64_t maintenance_ticks = 0;  ///< completed background sweeps
  int stripes = 0;                ///< manager's resolved routing-stripe count
  /// Pool iterations claimed while another fan-out was concurrently in
  /// flight (ThreadPool work sharing). Volatile, like query_rounds.
  int64_t pool_steals = 0;
  /// Fraction of routing ops landing on the single busiest stripe — 1/N is
  /// perfectly spread, ~1.0 is one hot stripe. Volatile under concurrency.
  double stripe_hot_ratio = 0.0;
  /// Wall time from releasing the clients to the last client finishing,
  /// with the background threads running throughout.
  double update_seconds = 0.0;

  double UpdatesPerSecond() const {
    return update_seconds > 0.0 ? static_cast<double>(updates) / update_seconds
                                : 0.0;
  }
};

/// Runs the contention schedule. Every IngestBatch status, QueryAll answer,
/// and maintenance tick is checked OK.
ShardedContentionReport RunShardedContention(
    serving::ShardManager* manager, PointStream* stream,
    const ShardedContentionOptions& options);

}  // namespace fkc

#endif  // FKC_STREAM_WINDOW_DRIVER_H_
