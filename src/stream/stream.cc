#include "stream/stream.h"

#include "common/logging.h"

namespace fkc {

VectorStream::VectorStream(std::vector<Point> points, int ell,
                           std::string name, bool cycle)
    : points_(std::move(points)),
      ell_(ell),
      name_(std::move(name)),
      cycle_(cycle) {
  FKC_CHECK_GT(ell, 0);
}

std::optional<Point> VectorStream::Next() {
  if (cursor_ >= points_.size()) {
    if (!cycle_ || points_.empty()) return std::nullopt;
    cursor_ = 0;
  }
  return points_[cursor_++];
}

int VectorStream::dimension() const {
  return points_.empty() ? 0 : static_cast<int>(points_.front().dimension());
}

}  // namespace fkc
