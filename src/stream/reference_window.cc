#include "stream/reference_window.h"

#include "common/logging.h"

namespace fkc {

ReferenceWindow::ReferenceWindow(int64_t window_size)
    : window_size_(window_size) {
  FKC_CHECK_GT(window_size, 0);
}

void ReferenceWindow::Update(Point p) {
  buffer_.push_back(std::move(p));
  if (static_cast<int64_t>(buffer_.size()) > window_size_) {
    buffer_.pop_front();
  }
}

std::vector<Point> ReferenceWindow::Snapshot() const {
  return std::vector<Point>(buffer_.begin(), buffer_.end());
}

Result<FairCenterSolution> ReferenceWindow::Query(
    const Metric& metric, const FairCenterSolver& solver,
    const ColorConstraint& constraint) const {
  return solver.Solve(metric, Snapshot(), constraint);
}

}  // namespace fkc
