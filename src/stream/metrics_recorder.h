// Per-algorithm measurement accumulation for the experiment harness: the
// four indicators of the paper's Section 4 (memory in points, update time,
// query time, approximation ratio), averaged over consecutive windows.
#ifndef FKC_STREAM_METRICS_RECORDER_H_
#define FKC_STREAM_METRICS_RECORDER_H_

#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace fkc {

/// Aggregated measurements for one algorithm over one experiment run.
class MetricsRecorder {
 public:
  explicit MetricsRecorder(std::string algorithm_name);

  void RecordUpdateNanos(int64_t nanos) { update_time_.AddNanos(nanos); }
  void RecordQuery(int64_t nanos, double radius, int64_t memory_points,
                   double ratio);

  const std::string& name() const { return name_; }

  double MeanUpdateMillis() const { return update_time_.MeanMillis(); }
  double MeanQueryMillis() const { return query_time_.MeanMillis(); }
  double MeanRadius() const;
  double MeanMemoryPoints() const;
  /// Mean of per-window (radius / best-baseline-radius); NaN when ratios
  /// were not supplied.
  double MeanApproxRatio() const;
  int64_t QueryCount() const { return query_time_.count(); }
  int64_t UpdateCount() const { return update_time_.count(); }

 private:
  std::string name_;
  TimingAccumulator update_time_;
  TimingAccumulator query_time_;
  double radius_sum_ = 0.0;
  double memory_sum_ = 0.0;
  double ratio_sum_ = 0.0;
  int64_t ratio_count_ = 0;
  int64_t sample_count_ = 0;
};

}  // namespace fkc

#endif  // FKC_STREAM_METRICS_RECORDER_H_
