// Stream abstraction: a source of colored points consumed one per logical
// time step by the sliding-window algorithms.
#ifndef FKC_STREAM_STREAM_H_
#define FKC_STREAM_STREAM_H_

#include <optional>
#include <string>
#include <vector>

#include "metric/point.h"

namespace fkc {

/// A (finite or infinite) source of points.
class PointStream {
 public:
  virtual ~PointStream() = default;

  /// The next stream point, or nullopt when the stream is exhausted.
  virtual std::optional<Point> Next() = 0;

  /// Number of colors the stream may emit.
  virtual int ell() const = 0;

  virtual int dimension() const = 0;
  virtual std::string Name() const = 0;
};

/// Wraps a materialized point vector as a stream (optionally cycling).
class VectorStream final : public PointStream {
 public:
  /// `cycle = true` restarts from the beginning on exhaustion, turning a
  /// finite dataset into an unbounded stream.
  VectorStream(std::vector<Point> points, int ell, std::string name,
               bool cycle = false);

  std::optional<Point> Next() override;
  int ell() const override { return ell_; }
  int dimension() const override;
  std::string Name() const override { return name_; }

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  int ell_;
  std::string name_;
  bool cycle_;
  size_t cursor_ = 0;
};

}  // namespace fkc

#endif  // FKC_STREAM_STREAM_H_
