// Per-guess state and update logic: Algorithms 1 (Update) and 2 (Cleanup) of
// the paper, for one guess gamma of the ladder.
//
// For each guess the algorithm maintains two families of active points:
//   validation points — AV (v-attractors, pairwise > 2*gamma, at most k+1
//     outside Cleanup) and RV (one recent representative per live attractor,
//     plus orphaned representatives of expired/evicted attractors);
//   coreset points — A (c-attractors, pairwise > delta*gamma/2, size bounded
//     only by the doubling-dimension analysis) and R (per-attractor maximal
//     independent representative sets, plus orphans).
//
// The Corollary-2 variant (kValidationOnly) drops the coreset family and
// upgrades each v-representative to a maximal independent set.
#ifndef FKC_CORE_GUESS_STRUCTURE_H_
#define FKC_CORE_GUESS_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "core/attractor_set.h"
#include "core/memory_footprint.h"
#include "matroid/color_constraint.h"
#include "metric/coordinate_pool.h"
#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {

/// Algorithm variant selector.
enum class CoreVariant {
  kFull,            ///< validation + coreset points (Theorem 1)
  kValidationOnly,  ///< Corollary 2: independent sets on validation points
};

/// Receives every distance the structure evaluates between the arriving
/// point and a stored active point. The adaptive-range tracker of
/// OursOblivious listens here.
class DistanceObserver {
 public:
  virtual ~DistanceObserver() = default;
  virtual void ObserveDistance(double distance) = 0;
};

/// State of one guess gamma.
class GuessStructure {
 public:
  /// The constraint is copied (it is a small cap vector), keeping the
  /// structure self-contained and safely movable. All caps of colors that
  /// occur in the stream must be >= 1 (the paper assumes positive k_i).
  GuessStructure(double gamma, double delta, int64_t window_size,
                 const ColorConstraint& constraint, CoreVariant variant);

  /// Algorithm 1 body for this guess: expiry, v-assignment (with Cleanup on
  /// new v-attractors), c-assignment. `observer` may be null.
  void Update(const Point& p, int64_t now, const Metric& metric,
              DistanceObserver* observer);

  /// Removes expired points without inserting (used before queries that may
  /// happen after the structure stopped receiving updates). Cheap when
  /// nothing can expire: a stored watermark of the oldest arrival proves the
  /// sweep would be a no-op and skips it, so per-arrival calls inside a
  /// batch degenerate to one actual sweep per expiry event (batch-level
  /// expiry dedup) with bit-identical state.
  void ExpireOnly(int64_t now);

  double gamma() const { return gamma_; }

  /// |AV| <= k, the validity test of Query (Algorithm 3).
  bool IsValid() const {
    return static_cast<int>(v_entries_.size()) <= constraint_.TotalK();
  }

  int64_t v_attractor_count() const {
    return static_cast<int64_t>(v_entries_.size());
  }
  int64_t c_attractor_count() const {
    return static_cast<int64_t>(c_entries_.size());
  }

  /// RV: live representatives plus orphans.
  std::vector<Point> ValidationPoints() const;

  /// R: coreset representatives plus orphans. In the kValidationOnly
  /// variant this equals ValidationPoints() (Query runs A on RV there).
  std::vector<Point> CoresetPoints() const;

  MemoryStats Memory() const;

  /// Replays every currently stored point (attractors and representatives,
  /// sorted by arrival) into `sink` via its Update. Used to warm up freshly
  /// instantiated guesses in the adaptive-range variant.
  void ReplayInto(GuessStructure* sink, int64_t now,
                  const Metric& metric) const;

  /// Introspection for tests, invariant checks, and diagnostics.
  const std::vector<AttractorEntry>& v_entries() const { return v_entries_; }
  const std::vector<AttractorEntry>& c_entries() const { return c_entries_; }
  const std::vector<Point>& v_orphans() const { return v_orphans_; }
  const std::vector<Point>& c_orphans() const { return c_orphans_; }

  /// Overwrites the stored sets verbatim — checkpoint restore only
  /// (core/checkpoint.cc); the caller is responsible for state validity.
  void RestoreState(std::vector<AttractorEntry> v_entries,
                    std::vector<Point> v_orphans,
                    std::vector<AttractorEntry> c_entries,
                    std::vector<Point> c_orphans) {
    v_entries_ = std::move(v_entries);
    v_orphans_ = std::move(v_orphans);
    c_entries_ = std::move(c_entries);
    c_orphans_ = std::move(c_orphans);
    RebuildPools();
    RecomputeOldestArrival();
  }

  /// Number of expiry sweeps actually executed (skipped no-op calls are not
  /// counted). Diagnostic only — never serialized, no effect on state.
  int64_t expiry_sweeps() const { return expiry_sweeps_; }

 private:
  void Cleanup(int64_t now);

  /// Resets the expiry watermark to the exact minimum stored arrival
  /// (INT64_MAX when nothing is stored).
  void RecomputeOldestArrival();

  /// Appends `p` to `pool`, (re)dimensioning an empty pool first so the
  /// first attractor of a stream fixes the pool's dimension.
  static void AppendAttractorCoords(CoordinatePool* pool, const Point& p);

  /// Rebuilds both pools from the entry vectors (checkpoint restore — the
  /// only mutation path where incremental maintenance has nothing to work
  /// from).
  void RebuildPools();

  /// Removes from `pool` every dense position whose entry `predicate(entry)`
  /// says is about to be removed from `entries`, keeping pool dense order ==
  /// entry order. Must run BEFORE the entry vector itself is compacted.
  template <typename Predicate>
  void RemovePoolEntries(CoordinatePool* pool,
                         const std::vector<AttractorEntry>& entries,
                         Predicate predicate) {
    const size_t n = entries.size();
    if (n == 0) return;
    scratch_mask_.resize(n);
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      scratch_mask_[i] = predicate(entries[i]) ? 1 : 0;
      any |= scratch_mask_[i] != 0;
    }
    if (any) pool->RemoveMasked(scratch_mask_);
  }

  double gamma_;
  double delta_;
  int64_t window_size_;
  ColorConstraint constraint_;
  CoreVariant variant_;

  // Validation family. In kFull each entry holds exactly one representative.
  std::vector<AttractorEntry> v_entries_;
  std::vector<Point> v_orphans_;

  // Coreset family (kFull only).
  std::vector<AttractorEntry> c_entries_;
  std::vector<Point> c_orphans_;

  // Dim-major mirrors of the attractor coordinates (dense position i ==
  // entries[i]), feeding the vectorized Metric::DistanceSoA scans. Derived
  // state — rebuilt on restore, never serialized.
  CoordinatePool v_pool_;
  CoordinatePool c_pool_;

  // Reusable scratch for the batched attractor scans (transient — never
  // serialized). Kept per-structure so ladder updates can run in parallel
  // without sharing buffers.
  std::vector<double> scratch_dists_;
  std::vector<unsigned char> scratch_mask_;

  // Expiry watermark: a lower bound on the arrival of every stored point.
  // While it proves all stored points active, ExpireOnly is O(1). Removals
  // (Cleanup, representative replacement) may leave it stale-low, which only
  // costs a redundant sweep — never a missed one. INT64_MAX = empty.
  int64_t oldest_arrival_ = INT64_MAX;
  int64_t expiry_sweeps_ = 0;  // transient diagnostic
};

}  // namespace fkc

#endif  // FKC_CORE_GUESS_STRUCTURE_H_
