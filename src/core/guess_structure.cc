#include "core/guess_structure.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fkc {

GuessStructure::GuessStructure(double gamma, double delta, int64_t window_size,
                               const ColorConstraint& constraint,
                               CoreVariant variant)
    : gamma_(gamma),
      delta_(delta),
      window_size_(window_size),
      constraint_(constraint),
      variant_(variant) {
  FKC_CHECK_GT(gamma, 0.0);
  FKC_CHECK_GT(delta, 0.0);
  FKC_CHECK_GT(window_size, 0);
  
}

void GuessStructure::ExpireOnly(int64_t now) {
  // Batch-level expiry dedup: when even the oldest stored point is still
  // active, every IsActive test below would pass and the sweep would change
  // nothing — skip it. Exact, not heuristic: the watermark is a lower bound
  // on all stored arrivals, so state stays bit-identical to sweeping always.
  if (oldest_arrival_ > now - window_size_) return;
  ++expiry_sweeps_;
  // The pools mirror the entry vectors by dense position, so compaction must
  // run off the same predicate ExpireEntries applies, before the entries
  // themselves shift.
  const auto attractor_expired = [&](const AttractorEntry& entry) {
    return !IsActive(entry.attractor, now, window_size_);
  };
  RemovePoolEntries(&v_pool_, v_entries_, attractor_expired);
  RemovePoolEntries(&c_pool_, c_entries_, attractor_expired);
  ExpireEntries(&v_entries_, &v_orphans_, now, window_size_);
  ExpirePoints(&v_orphans_, now, window_size_);
  ExpireEntries(&c_entries_, &c_orphans_, now, window_size_);
  ExpirePoints(&c_orphans_, now, window_size_);
  FKC_CHECK_EQ(v_pool_.size(), v_entries_.size());
  FKC_CHECK_EQ(c_pool_.size(), c_entries_.size());
  RecomputeOldestArrival();
}

void GuessStructure::AppendAttractorCoords(CoordinatePool* pool,
                                           const Point& p) {
  if (pool->empty() && pool->dim() != p.dimension()) {
    pool->ResetDim(p.dimension());
  }
  pool->Append(p);
}

void GuessStructure::RebuildPools() {
  v_pool_.Clear();
  c_pool_.Clear();
  for (const AttractorEntry& entry : v_entries_) {
    AppendAttractorCoords(&v_pool_, entry.attractor);
  }
  for (const AttractorEntry& entry : c_entries_) {
    AppendAttractorCoords(&c_pool_, entry.attractor);
  }
}

void GuessStructure::RecomputeOldestArrival() {
  int64_t oldest = INT64_MAX;
  auto scan = [&oldest](const std::vector<AttractorEntry>& entries,
                        const std::vector<Point>& orphans) {
    for (const AttractorEntry& entry : entries) {
      oldest = std::min(oldest, entry.attractor.arrival);
      for (const Point& rep : entry.representatives) {
        oldest = std::min(oldest, rep.arrival);
      }
    }
    for (const Point& p : orphans) oldest = std::min(oldest, p.arrival);
  };
  scan(v_entries_, v_orphans_);
  scan(c_entries_, c_orphans_);
  oldest_arrival_ = oldest;
}

void GuessStructure::Update(const Point& p, int64_t now, const Metric& metric,
                            DistanceObserver* observer) {
  FKC_CHECK_GE(constraint_.cap(p.color), 1)
      << "arriving point has a zero-cap color; the paper requires k_i >= 1";
  ExpireOnly(now);
  // p lands in the validation family below whatever branch is taken; keep
  // the expiry watermark a valid lower bound (replay feeds old arrivals).
  oldest_arrival_ = std::min(oldest_arrival_, p.arrival);

  // --- Validation phase: assign p to a v-attractor (lines 1-10). ---
  // One SoA kernel call over the dim-major attractor pool evaluates every
  // attractor distance; the observer sees them in storage order, exactly as
  // the scalar loop did. This trades the old no-observer early exit (worth
  // at most |AV| <= k+2 evaluations) for the vector kernel's throughput;
  // CountingMetric totals are correspondingly a constant higher than a
  // per-pair early-exit scan.
  const size_t nv = v_entries_.size();
  scratch_dists_.resize(nv);
  metric.DistanceSoA(p, v_pool_, scratch_dists_.data());
  if (observer != nullptr) {
    for (size_t i = 0; i < nv; ++i) {
      observer->ObserveDistance(scratch_dists_[i]);
    }
  }
  // The paper picks an arbitrary element of EV and the first works.
  int v_target = -1;
  for (size_t i = 0; i < nv; ++i) {
    if (scratch_dists_[i] <= 2.0 * gamma_) {
      v_target = static_cast<int>(i);
      break;
    }
  }

  if (v_target == -1) {
    // p becomes a new v-attractor and its own representative.
    v_entries_.push_back(AttractorEntry{p, {p}});
    AppendAttractorCoords(&v_pool_, p);
    Cleanup(now);
  } else {
    AttractorEntry& entry = v_entries_[v_target];
    if (variant_ == CoreVariant::kFull) {
      // Single representative: replace by the newcomer (line 10). The old
      // representative leaves RV entirely — it is superseded, not orphaned.
      entry.representatives.assign(1, p);
    } else {
      // Corollary 2: maintain a maximal independent set of the most recent
      // attracted points. To mirror the coreset balancing rule, re-target to
      // the eligible attractor with the fewest same-color representatives
      // (the batched distances are already in hand — no re-evaluation).
      int best = v_target;
      int best_count = CountColor(entry, p.color);
      for (size_t i = v_target + 1; i < nv; ++i) {
        if (scratch_dists_[i] <= 2.0 * gamma_) {
          const int count = CountColor(v_entries_[i], p.color);
          if (count < best_count) {
            best_count = count;
            best = static_cast<int>(i);
          }
        }
      }
      AddRepresentativeWithCap(&v_entries_[best], p,
                               constraint_.cap(p.color));
    }
  }

  // --- Coreset phase: assign p to a c-attractor (lines 11-20). ---
  if (variant_ != CoreVariant::kFull) return;

  const double c_threshold = delta_ * gamma_ / 2.0;
  const size_t nc = c_entries_.size();
  scratch_dists_.resize(nc);
  metric.DistanceSoA(p, c_pool_, scratch_dists_.data());
  int c_target = -1;
  int c_target_count = std::numeric_limits<int>::max();
  for (size_t i = 0; i < nc; ++i) {
    if (scratch_dists_[i] <= c_threshold) {
      const int count = CountColor(c_entries_[i], p.color);
      if (count < c_target_count) {
        c_target_count = count;
        c_target = static_cast<int>(i);
      }
    }
  }
  if (c_target == -1) {
    c_entries_.push_back(AttractorEntry{p, {p}});
    AppendAttractorCoords(&c_pool_, p);
  } else {
    AddRepresentativeWithCap(&c_entries_[c_target], p,
                             constraint_.cap(p.color));
  }
}

void GuessStructure::Cleanup(int64_t now) {
  (void)now;
  const int k = constraint_.TotalK();

  // Line 1-2: with k+2 v-attractors, evict the oldest; its representatives
  // survive as orphans (subject to the threshold below).
  if (static_cast<int>(v_entries_.size()) == k + 2) {
    size_t victim = 0;
    for (size_t i = 1; i < v_entries_.size(); ++i) {
      if (v_entries_[i].attractor.arrival <
          v_entries_[victim].attractor.arrival) {
        victim = i;
      }
    }
    for (Point& rep : v_entries_[victim].representatives) {
      v_orphans_.push_back(std::move(rep));
    }
    v_pool_.Remove(v_pool_.SlotAt(victim));
    v_entries_.erase(v_entries_.begin() + victim);
  }

  // Lines 3-5: with k+1 v-attractors the guess is invalid until the oldest
  // of them expires; points older than that are useless and are dropped
  // from A, RV, and R.
  if (static_cast<int>(v_entries_.size()) == k + 1) {
    int64_t threshold = std::numeric_limits<int64_t>::max();
    for (const AttractorEntry& entry : v_entries_) {
      threshold = std::min(threshold, entry.attractor.arrival);
    }
    DropPointsOlderThan(&v_orphans_, threshold);
    RemovePoolEntries(&c_pool_, c_entries_, [&](const AttractorEntry& entry) {
      return entry.attractor.arrival < threshold;
    });
    DropEntriesOlderThan(&c_entries_, &c_orphans_, threshold);
    DropPointsOlderThan(&c_orphans_, threshold);
    FKC_CHECK_EQ(c_pool_.size(), c_entries_.size());
  }
}

std::vector<Point> GuessStructure::ValidationPoints() const {
  std::vector<Point> rv;
  for (const AttractorEntry& entry : v_entries_) {
    rv.insert(rv.end(), entry.representatives.begin(),
              entry.representatives.end());
  }
  rv.insert(rv.end(), v_orphans_.begin(), v_orphans_.end());
  return rv;
}

std::vector<Point> GuessStructure::CoresetPoints() const {
  if (variant_ == CoreVariant::kValidationOnly) return ValidationPoints();
  std::vector<Point> r;
  for (const AttractorEntry& entry : c_entries_) {
    r.insert(r.end(), entry.representatives.begin(),
             entry.representatives.end());
  }
  r.insert(r.end(), c_orphans_.begin(), c_orphans_.end());
  return r;
}

MemoryStats GuessStructure::Memory() const {
  MemoryStats stats;
  stats.guesses = 1;
  stats.v_attractors = static_cast<int64_t>(v_entries_.size());
  stats.v_representatives =
      CountRepresentatives(v_entries_) + static_cast<int64_t>(v_orphans_.size());
  stats.c_attractors = static_cast<int64_t>(c_entries_.size());
  stats.c_representatives =
      CountRepresentatives(c_entries_) + static_cast<int64_t>(c_orphans_.size());
  return stats;
}

void GuessStructure::ReplayInto(GuessStructure* sink, int64_t now,
                                const Metric& metric) const {
  std::vector<Point> stored;
  auto harvest = [&stored](const std::vector<AttractorEntry>& entries,
                           const std::vector<Point>& orphans) {
    for (const AttractorEntry& entry : entries) {
      stored.push_back(entry.attractor);
      stored.insert(stored.end(), entry.representatives.begin(),
                    entry.representatives.end());
    }
    stored.insert(stored.end(), orphans.begin(), orphans.end());
  };
  harvest(v_entries_, v_orphans_);
  harvest(c_entries_, c_orphans_);

  std::sort(stored.begin(), stored.end(),
            [](const Point& a, const Point& b) { return a.arrival < b.arrival; });
  uint64_t last_id = 0;
  for (const Point& p : stored) {
    if (p.id == last_id && last_id != 0) continue;  // attractor == its rep
    last_id = p.id;
    sink->Update(p, now, metric, nullptr);
  }
}

}  // namespace fkc
