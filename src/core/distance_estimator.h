// Sliding-window distance-range estimation for the aspect-ratio-oblivious
// variant (OursOblivious in the paper's experiments).
//
// The paper obtains running estimates of d_min and d_max for the current
// window "by means of the techniques of [8], based on a sliding-window
// diameter-estimation algorithm", and then considers only guesses inside
// [d_min, d_max]. We follow the same blueprint with an O(log Delta)-state
// witness tracker:
//
//   Every distance the algorithm evaluates between the arriving point and a
//   stored active point (plus the distance to the immediately preceding
//   arrival, which bootstraps the tracker) is an observation between two
//   points that are both alive *now*. Observations are bucketed by guess
//   exponent; each bucket remembers the last observation time. A bucket
//   whose witness is older than one window length cannot correspond to a
//   live pair any more (both endpoints arrived before the observation, so
//   they have expired) and is dropped.
//
// The reported range [d_min_est, d_max_est] therefore never underestimates
// how long a distance scale stays relevant, and overshoots by at most one
// window length after the witnessing pair expires — which costs a transient
// sliver of memory, never correctness. Fresh scales entering the window are
// picked up as soon as any arriving point witnesses them.
#ifndef FKC_CORE_DISTANCE_ESTIMATOR_H_
#define FKC_CORE_DISTANCE_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/guess_ladder.h"
#include "core/guess_structure.h"

namespace fkc {

/// Tracks which guess exponents are witnessed by pairs of currently-active
/// points.
class WindowDistanceEstimator final : public DistanceObserver {
 public:
  /// The ladder is copied (two doubles), keeping the estimator
  /// self-contained and safely movable.
  WindowDistanceEstimator(const GuessLadder& ladder, int64_t window_size);

  /// Sets the logical time of subsequent observations.
  void BeginStep(int64_t now) { now_ = now; }

  /// Records one distance between two points active at the current step.
  /// Zero distances are ignored (they carry no scale information).
  void ObserveDistance(double distance) override;

  /// True once at least one non-zero distance has ever been observed within
  /// the current window.
  bool HasRange() const;

  /// Smallest / largest witnessed exponent among live buckets. Call only
  /// when HasRange().
  int MinExponent() const;
  int MaxExponent() const;

  /// Number of live buckets (diagnostics).
  int64_t LiveBuckets() const;

  /// Checkpoint support: dumps / restores the witness buckets verbatim.
  std::vector<std::pair<int, int64_t>> DumpBuckets() const;
  void RestoreBuckets(const std::vector<std::pair<int, int64_t>>& buckets,
                      int64_t now);

 private:
  /// Removes buckets whose last witness left the window.
  void EvictStale() const;

  GuessLadder ladder_;
  int64_t window_size_;
  int64_t now_ = 0;
  /// exponent -> last observation time.
  mutable std::map<int, int64_t> last_seen_;
};

}  // namespace fkc

#endif  // FKC_CORE_DISTANCE_ESTIMATOR_H_
