#include "core/distance_estimator.h"

#include "common/logging.h"

namespace fkc {

WindowDistanceEstimator::WindowDistanceEstimator(const GuessLadder& ladder,
                                                 int64_t window_size)
    : ladder_(ladder), window_size_(window_size) {
  FKC_CHECK_GT(window_size, 0);
}

void WindowDistanceEstimator::ObserveDistance(double distance) {
  if (distance <= 0.0) return;
  const int exponent = ladder_.FloorExponent(distance);
  auto [it, inserted] = last_seen_.try_emplace(exponent, now_);
  if (!inserted) it->second = now_;
}

void WindowDistanceEstimator::EvictStale() const {
  // A witness observed at time T involved two points alive at T, which both
  // expire by T + window_size at the latest.
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (it->second <= now_ - window_size_) {
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

bool WindowDistanceEstimator::HasRange() const {
  EvictStale();
  return !last_seen_.empty();
}

int WindowDistanceEstimator::MinExponent() const {
  EvictStale();
  FKC_CHECK(!last_seen_.empty());
  return last_seen_.begin()->first;
}

int WindowDistanceEstimator::MaxExponent() const {
  EvictStale();
  FKC_CHECK(!last_seen_.empty());
  return last_seen_.rbegin()->first;
}

int64_t WindowDistanceEstimator::LiveBuckets() const {
  EvictStale();
  return static_cast<int64_t>(last_seen_.size());
}

std::vector<std::pair<int, int64_t>> WindowDistanceEstimator::DumpBuckets()
    const {
  EvictStale();
  return {last_seen_.begin(), last_seen_.end()};
}

void WindowDistanceEstimator::RestoreBuckets(
    const std::vector<std::pair<int, int64_t>>& buckets, int64_t now) {
  last_seen_.clear();
  for (const auto& [exponent, seen] : buckets) last_seen_[exponent] = seen;
  now_ = now;
}

}  // namespace fkc
