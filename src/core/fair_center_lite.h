// The Corollary-2 variant: a dimension-oblivious sliding-window fair-center
// algorithm. It drops the coreset family entirely and instead maintains, per
// v-attractor, a maximal independent set of recently attracted points;
// Query runs the sequential solver on the validation points.
//
// Trade-off versus the full algorithm (Theorem 1): space and update time
// shrink to O(k^2 log Delta / eps) — no exponential dependence on the
// doubling dimension — at the price of a weaker (31 + O(eps)) approximation
// guarantee. Empirically (paper, Section 4.1) this matches the delta = 4
// configuration of the full algorithm.
#ifndef FKC_CORE_FAIR_CENTER_LITE_H_
#define FKC_CORE_FAIR_CENTER_LITE_H_

#include "core/fair_center_sliding_window.h"

namespace fkc {

/// Thin wrapper fixing the Corollary-2 configuration.
class FairCenterLite {
 public:
  /// `options.variant` and `options.delta` are overridden (delta is
  /// irrelevant without coreset structures; it is pinned to 4, the value for
  /// which the full algorithm degenerates to this one).
  FairCenterLite(SlidingWindowOptions options, ColorConstraint constraint,
                 const Metric* metric, const FairCenterSolver* solver);

  void Update(Coordinates coords, int color) {
    window_.Update(std::move(coords), color);
  }
  void Update(Point p) { window_.Update(std::move(p)); }
  void UpdateBatch(std::vector<Point> batch) {
    window_.UpdateBatch(std::move(batch));
  }

  Result<FairCenterSolution> Query(QueryStats* stats = nullptr) {
    return window_.Query(stats);
  }

  MemoryStats Memory() const { return window_.Memory(); }
  int64_t now() const { return window_.now(); }
  int64_t WindowPopulation() const { return window_.WindowPopulation(); }

  /// Access to the underlying window (diagnostics, tests).
  const FairCenterSlidingWindow& window() const { return window_; }

 private:
  FairCenterSlidingWindow window_;
};

}  // namespace fkc

#endif  // FKC_CORE_FAIR_CENTER_LITE_H_
