#include "core/attractor_set.h"

#include <algorithm>

#include "common/logging.h"

namespace fkc {

int CountColor(const AttractorEntry& entry, int color) {
  int count = 0;
  for (const Point& p : entry.representatives) {
    if (p.color == color) ++count;
  }
  return count;
}

void AddRepresentativeWithCap(AttractorEntry* entry, const Point& p, int cap) {
  FKC_CHECK_GE(cap, 1) << "the paper requires positive per-color caps";
  entry->representatives.push_back(p);
  if (CountColor(*entry, p.color) > cap) {
    // Evict the minimum-TTL (oldest-arrival) representative of this color.
    int victim = -1;
    int64_t oldest = INT64_MAX;
    for (size_t i = 0; i < entry->representatives.size(); ++i) {
      const Point& q = entry->representatives[i];
      if (q.color == p.color && q.arrival < oldest) {
        oldest = q.arrival;
        victim = static_cast<int>(i);
      }
    }
    FKC_CHECK_GE(victim, 0);
    entry->representatives.erase(entry->representatives.begin() + victim);
  }
}

void ExpireEntries(std::vector<AttractorEntry>* entries,
                   std::vector<Point>* orphans, int64_t now,
                   int64_t window_size) {
  auto is_expired = [&](const Point& p) {
    return !IsActive(p, now, window_size);
  };
  size_t write = 0;
  for (size_t read = 0; read < entries->size(); ++read) {
    AttractorEntry& entry = (*entries)[read];
    if (is_expired(entry.attractor)) {
      // The attractor leaves; its live representatives become orphans.
      for (Point& rep : entry.representatives) {
        if (!is_expired(rep)) orphans->push_back(std::move(rep));
      }
      continue;
    }
    if (write != read) (*entries)[write] = std::move(entry);
    ++write;
  }
  entries->resize(write);
}

void ExpirePoints(std::vector<Point>* points, int64_t now,
                  int64_t window_size) {
  points->erase(std::remove_if(points->begin(), points->end(),
                               [&](const Point& p) {
                                 return !IsActive(p, now, window_size);
                               }),
                points->end());
}

void DropEntriesOlderThan(std::vector<AttractorEntry>* entries,
                          std::vector<Point>* orphans, int64_t threshold) {
  size_t write = 0;
  for (size_t read = 0; read < entries->size(); ++read) {
    AttractorEntry& entry = (*entries)[read];
    if (entry.attractor.arrival < threshold) {
      for (Point& rep : entry.representatives) {
        if (rep.arrival >= threshold) orphans->push_back(std::move(rep));
      }
      continue;
    }
    if (write != read) (*entries)[write] = std::move(entry);
    ++write;
  }
  entries->resize(write);
}

void DropPointsOlderThan(std::vector<Point>* points, int64_t threshold) {
  points->erase(std::remove_if(points->begin(), points->end(),
                               [&](const Point& p) {
                                 return p.arrival < threshold;
                               }),
                points->end());
}

int64_t CountRepresentatives(const std::vector<AttractorEntry>& entries) {
  int64_t total = 0;
  for (const AttractorEntry& entry : entries) {
    total += static_cast<int64_t>(entry.representatives.size());
  }
  return total;
}

}  // namespace fkc
