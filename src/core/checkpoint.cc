// Checkpoint serialization for FairCenterSlidingWindow (declared in
// fair_center_sliding_window.h). Format: whitespace-separated tokens,
// self-describing counts, hex-float coordinates for bit-exact round trips.
// Tokenizing and float formatting live in common/checkpoint_io (shared with
// the serving layer's fleet checkpoint).
#include <sstream>

#include "common/checkpoint_io.h"
#include "core/fair_center_sliding_window.h"

namespace fkc {
namespace {

constexpr const char* kMagic = "fkc-checkpoint-v1";

// --- Writer helpers. ---

void WritePoint(std::ostringstream* out, const Point& p) {
  *out << p.coords.size() << ' ';
  for (double x : p.coords) WriteCheckpointDouble(out, x);
  *out << p.color << ' ' << p.arrival << ' ' << p.id << ' ';
}

void WriteEntries(std::ostringstream* out,
                  const std::vector<AttractorEntry>& entries) {
  *out << entries.size() << ' ';
  for (const AttractorEntry& entry : entries) {
    WritePoint(out, entry.attractor);
    *out << entry.representatives.size() << ' ';
    for (const Point& rep : entry.representatives) WritePoint(out, rep);
  }
}

void WritePoints(std::ostringstream* out, const std::vector<Point>& points) {
  *out << points.size() << ' ';
  for (const Point& p : points) WritePoint(out, p);
}

// --- Reader: core-specific composite extraction over CheckpointReader. ---

Status NextPoint(CheckpointReader* reader, Point* out) {
  size_t dim = 0;
  FKC_RETURN_IF_ERROR(reader->NextSize(&dim, 1u << 20));
  out->coords.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    FKC_RETURN_IF_ERROR(reader->NextDouble(&out->coords[d]));
  }
  int64_t color = 0, arrival = 0, id = 0;
  FKC_RETURN_IF_ERROR(reader->NextInt(&color));
  FKC_RETURN_IF_ERROR(reader->NextInt(&arrival));
  FKC_RETURN_IF_ERROR(reader->NextInt(&id));
  out->color = static_cast<int>(color);
  out->arrival = arrival;
  out->id = static_cast<uint64_t>(id);
  return Status::OK();
}

Status NextPoints(CheckpointReader* reader, std::vector<Point>* out) {
  size_t count = 0;
  FKC_RETURN_IF_ERROR(reader->NextSize(&count));
  out->resize(count);
  for (Point& p : *out) FKC_RETURN_IF_ERROR(NextPoint(reader, &p));
  return Status::OK();
}

Status NextEntries(CheckpointReader* reader,
                   std::vector<AttractorEntry>* out) {
  size_t count = 0;
  FKC_RETURN_IF_ERROR(reader->NextSize(&count));
  out->resize(count);
  for (AttractorEntry& entry : *out) {
    FKC_RETURN_IF_ERROR(NextPoint(reader, &entry.attractor));
    FKC_RETURN_IF_ERROR(NextPoints(reader, &entry.representatives));
  }
  return Status::OK();
}

}  // namespace

std::string FairCenterSlidingWindow::SerializeState() const {
  std::ostringstream out;
  out << kMagic << ' ';

  // Options.
  out << options_.window_size << ' ';
  WriteCheckpointDouble(&out, options_.beta);
  WriteCheckpointDouble(&out, options_.delta);
  out << static_cast<int>(options_.variant) << ' '
      << (options_.adaptive_range ? 1 : 0) << ' ';
  WriteCheckpointDouble(&out, options_.d_min);
  WriteCheckpointDouble(&out, options_.d_max);
  out << options_.adaptive_slack_exponents << ' '
      << (options_.warm_start_new_guesses ? 1 : 0) << ' ';

  // Constraint.
  out << constraint_.ell() << ' ';
  for (int cap : constraint_.caps()) out << cap << ' ';

  // Clocks and the latest point.
  out << now_ << ' ' << next_id_ << ' ';
  out << (last_point_.has_value() ? 1 : 0) << ' ';
  if (last_point_.has_value()) WritePoint(&out, *last_point_);

  // Adaptive-range tracker.
  if (options_.adaptive_range) {
    const auto buckets = estimator_->DumpBuckets();
    out << buckets.size() << ' ';
    for (const auto& [exponent, seen] : buckets) {
      out << exponent << ' ' << seen << ' ';
    }
  }

  // Guess structures.
  out << guesses_.size() << ' ';
  for (const auto& [exponent, guess] : guesses_) {
    out << exponent << ' ';
    WriteEntries(&out, guess.v_entries());
    WritePoints(&out, guess.v_orphans());
    WriteEntries(&out, guess.c_entries());
    WritePoints(&out, guess.c_orphans());
  }
  return out.str();
}

Result<FairCenterSlidingWindow> FairCenterSlidingWindow::DeserializeState(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver) {
  CheckpointReader reader(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(reader.NextToken(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not an fkc checkpoint (bad magic '" +
                                   magic + "')");
  }

  SlidingWindowOptions options;
  int64_t variant = 0, adaptive = 0, slack = 0, warm = 0;
  FKC_RETURN_IF_ERROR(reader.NextInt(&options.window_size));
  FKC_RETURN_IF_ERROR(reader.NextDouble(&options.beta));
  FKC_RETURN_IF_ERROR(reader.NextDouble(&options.delta));
  FKC_RETURN_IF_ERROR(reader.NextInt(&variant));
  FKC_RETURN_IF_ERROR(reader.NextInt(&adaptive));
  FKC_RETURN_IF_ERROR(reader.NextDouble(&options.d_min));
  FKC_RETURN_IF_ERROR(reader.NextDouble(&options.d_max));
  FKC_RETURN_IF_ERROR(reader.NextInt(&slack));
  FKC_RETURN_IF_ERROR(reader.NextInt(&warm));
  if (variant < 0 || variant > 1) {
    return Status::InvalidArgument("bad variant in checkpoint");
  }
  options.variant = static_cast<CoreVariant>(variant);
  options.adaptive_range = adaptive != 0;
  options.adaptive_slack_exponents = static_cast<int>(slack);
  options.warm_start_new_guesses = warm != 0;

  size_t ell = 0;
  FKC_RETURN_IF_ERROR(reader.NextSize(&ell, 1u << 20));
  std::vector<int> caps(ell);
  for (size_t c = 0; c < ell; ++c) {
    int64_t cap = 0;
    FKC_RETURN_IF_ERROR(reader.NextInt(&cap));
    if (cap < 0) return Status::InvalidArgument("negative cap in checkpoint");
    caps[c] = static_cast<int>(cap);
  }

  FairCenterSlidingWindow window(options, ColorConstraint(std::move(caps)),
                                 metric, solver);

  int64_t next_id = 0;
  FKC_RETURN_IF_ERROR(reader.NextInt(&window.now_));
  FKC_RETURN_IF_ERROR(reader.NextInt(&next_id));
  window.next_id_ = static_cast<uint64_t>(next_id);

  int64_t has_last = 0;
  FKC_RETURN_IF_ERROR(reader.NextInt(&has_last));
  if (has_last != 0) {
    Point last;
    FKC_RETURN_IF_ERROR(NextPoint(&reader, &last));
    window.last_point_ = std::move(last);
  }

  if (options.adaptive_range) {
    size_t bucket_count = 0;
    FKC_RETURN_IF_ERROR(reader.NextSize(&bucket_count));
    std::vector<std::pair<int, int64_t>> buckets(bucket_count);
    for (auto& [exponent, seen] : buckets) {
      int64_t e = 0;
      FKC_RETURN_IF_ERROR(reader.NextInt(&e));
      FKC_RETURN_IF_ERROR(reader.NextInt(&seen));
      exponent = static_cast<int>(e);
    }
    window.estimator_->RestoreBuckets(buckets, window.now_);
  }

  size_t guess_count = 0;
  FKC_RETURN_IF_ERROR(reader.NextSize(&guess_count));
  window.guesses_.clear();  // fixed-range ctor pre-creates the ladder
  for (size_t g = 0; g < guess_count; ++g) {
    int64_t exponent = 0;
    FKC_RETURN_IF_ERROR(reader.NextInt(&exponent));
    std::vector<AttractorEntry> v_entries, c_entries;
    std::vector<Point> v_orphans, c_orphans;
    FKC_RETURN_IF_ERROR(NextEntries(&reader, &v_entries));
    FKC_RETURN_IF_ERROR(NextPoints(&reader, &v_orphans));
    FKC_RETURN_IF_ERROR(NextEntries(&reader, &c_entries));
    FKC_RETURN_IF_ERROR(NextPoints(&reader, &c_orphans));

    GuessStructure guess(window.ladder_.Value(static_cast<int>(exponent)),
                         options.delta, options.window_size,
                         window.constraint_, options.variant);
    guess.RestoreState(std::move(v_entries), std::move(v_orphans),
                       std::move(c_entries), std::move(c_orphans));
    window.guesses_.emplace(static_cast<int>(exponent), std::move(guess));
  }
  return window;
}

}  // namespace fkc
