// Checkpoint serialization for FairCenterSlidingWindow (declared in
// fair_center_sliding_window.h). Format: whitespace-separated tokens,
// self-describing counts, hex-float coordinates for bit-exact round trips.
// Tokenizing, float formatting, and the options block live in
// common/checkpoint_io and core/options_io (shared with the serving layer's
// fleet checkpoint). Deserialization validates everything it reads before
// constructing: a corrupted or adversarial blob must surface as
// kInvalidArgument, never as a CHECK abort downstream.
#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/checkpoint_io.h"
#include "core/fair_center_sliding_window.h"
#include "core/options_io.h"

namespace fkc {
namespace {

constexpr const char* kMagic = "fkc-checkpoint-v1";

// --- Writer helpers. ---

void WritePoint(std::ostringstream* out, const Point& p) {
  *out << p.coords.size() << ' ';
  for (double x : p.coords) WriteCheckpointDouble(out, x);
  *out << p.color << ' ' << p.arrival << ' ' << p.id << ' ';
}

void WriteEntries(std::ostringstream* out,
                  const std::vector<AttractorEntry>& entries) {
  *out << entries.size() << ' ';
  for (const AttractorEntry& entry : entries) {
    WritePoint(out, entry.attractor);
    *out << entry.representatives.size() << ' ';
    for (const Point& rep : entry.representatives) WritePoint(out, rep);
  }
}

void WritePoints(std::ostringstream* out, const std::vector<Point>& points) {
  *out << points.size() << ' ';
  for (const Point& p : points) WritePoint(out, p);
}

// --- Reader: core-specific composite extraction over CheckpointReader. ---

// Shared per-point validation context: `ell` bounds the color (an
// out-of-range color would index out of the constraint's cap table), and
// `dim` pins the coordinate dimension — the first point fixes it, every
// later point must agree, or the coordinate pools abort on Append.
struct PointBounds {
  int64_t ell = 0;
  int64_t dim = -1;  ///< -1 until the first point is read
  int64_t now = 0;   ///< restored clock; stored arrivals may not exceed it
  int64_t max_id = -1;  ///< largest point id read; next_id_ must exceed it
};

Status NextPoint(CheckpointReader* reader, PointBounds* bounds, Point* out) {
  // Every serialized coordinate occupies at least one byte, so the
  // remaining blob length bounds any honest dimension — a forged count in
  // a tiny blob fails before allocating.
  size_t dim = 0;
  FKC_RETURN_IF_ERROR(
      reader->NextSize(&dim, std::min<size_t>(1u << 20, reader->Remaining())));
  // No honest window holds a zero-dimension point (the coordinate pools
  // abort on empty points long before serialization), and restoring one
  // would hit the same abort while rebuilding the pools.
  if (dim == 0) {
    return Status::InvalidArgument("zero-dimension point in checkpoint");
  }
  if (bounds->dim < 0) bounds->dim = static_cast<int64_t>(dim);
  if (static_cast<int64_t>(dim) != bounds->dim) {
    return Status::InvalidArgument("inconsistent point dimension");
  }
  out->coords.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    FKC_RETURN_IF_ERROR(reader->NextDouble(&out->coords[d]));
    if (!std::isfinite(out->coords[d])) {
      return Status::InvalidArgument("non-finite coordinate in checkpoint");
    }
  }
  int64_t color = 0, arrival = 0, id = 0;
  FKC_RETURN_IF_ERROR(reader->NextInt(&color));
  FKC_RETURN_IF_ERROR(reader->NextInt(&arrival));
  FKC_RETURN_IF_ERROR(reader->NextInt(&id));
  if (color < 0 || color >= bounds->ell) {
    return Status::InvalidArgument("point color outside constraint range");
  }
  // Arrivals are stamped from the window clock, so no stored arrival can
  // exceed the serialized now_ — a forged future arrival would never expire.
  if (arrival < 0 || arrival > bounds->now) {
    return Status::InvalidArgument("arrival outside the restored clock");
  }
  // Ids are issued from next_id_; a negative one would alias to a huge
  // uint64 after the cast and collide with future arrivals.
  if (id < 0) {
    return Status::InvalidArgument("negative point id in checkpoint");
  }
  bounds->max_id = std::max(bounds->max_id, id);
  out->color = static_cast<int>(color);
  out->arrival = arrival;
  out->id = static_cast<uint64_t>(id);
  return Status::OK();
}

Status NextPoints(CheckpointReader* reader, PointBounds* bounds,
                  std::vector<Point>* out) {
  size_t count = 0;
  FKC_RETURN_IF_ERROR(reader->NextSize(&count, reader->Remaining()));
  out->resize(count);
  for (Point& p : *out) FKC_RETURN_IF_ERROR(NextPoint(reader, bounds, &p));
  return Status::OK();
}

Status NextEntries(CheckpointReader* reader, PointBounds* bounds,
                   std::vector<AttractorEntry>* out) {
  size_t count = 0;
  FKC_RETURN_IF_ERROR(reader->NextSize(&count, reader->Remaining()));
  out->resize(count);
  for (AttractorEntry& entry : *out) {
    FKC_RETURN_IF_ERROR(NextPoint(reader, bounds, &entry.attractor));
    FKC_RETURN_IF_ERROR(NextPoints(reader, bounds, &entry.representatives));
  }
  return Status::OK();
}

}  // namespace

std::string FairCenterSlidingWindow::SerializeState() const {
  std::ostringstream out;
  out << kMagic << ' ';

  WriteSlidingWindowOptions(&out, options_);
  WriteColorCaps(&out, constraint_);

  // Clocks and the latest point.
  out << now_ << ' ' << next_id_ << ' ';
  out << (last_point_.has_value() ? 1 : 0) << ' ';
  if (last_point_.has_value()) WritePoint(&out, *last_point_);

  // Adaptive-range tracker.
  if (options_.adaptive_range) {
    const auto buckets = estimator_->DumpBuckets();
    out << buckets.size() << ' ';
    for (const auto& [exponent, seen] : buckets) {
      out << exponent << ' ' << seen << ' ';
    }
  }

  // Guess structures.
  out << guesses_.size() << ' ';
  for (const auto& [exponent, guess] : guesses_) {
    out << exponent << ' ';
    WriteEntries(&out, guess.v_entries());
    WritePoints(&out, guess.v_orphans());
    WriteEntries(&out, guess.c_entries());
    WritePoints(&out, guess.c_orphans());
  }
  return out.str();
}

Result<FairCenterSlidingWindow> FairCenterSlidingWindow::DeserializeState(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver) {
  CheckpointReader reader(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(reader.NextToken(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not an fkc checkpoint (bad magic '" +
                                   magic + "')");
  }

  SlidingWindowOptions options;
  FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(&reader, &options));

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&reader, &caps));
  const size_t ell = caps.size();

  FairCenterSlidingWindow window(options, ColorConstraint(std::move(caps)),
                                 metric, solver);
  PointBounds bounds;
  bounds.ell = static_cast<int64_t>(ell);

  int64_t next_id = 0;
  FKC_RETURN_IF_ERROR(reader.NextInt(&window.now_));
  FKC_RETURN_IF_ERROR(reader.NextInt(&next_id));
  if (window.now_ < 0) {
    return Status::InvalidArgument("negative clock in checkpoint");
  }
  if (next_id < 0) {
    return Status::InvalidArgument("negative id counter in checkpoint");
  }
  window.next_id_ = static_cast<uint64_t>(next_id);
  bounds.now = window.now_;

  int64_t has_last = 0;
  FKC_RETURN_IF_ERROR(reader.NextInt(&has_last));
  if (has_last != 0) {
    Point last;
    FKC_RETURN_IF_ERROR(NextPoint(&reader, &bounds, &last));
    window.last_point_ = std::move(last);
  }

  if (options.adaptive_range) {
    size_t bucket_count = 0;
    FKC_RETURN_IF_ERROR(reader.NextSize(&bucket_count, reader.Remaining()));
    std::vector<std::pair<int, int64_t>> buckets(bucket_count);
    for (auto& [exponent, seen] : buckets) {
      int64_t e = 0;
      FKC_RETURN_IF_ERROR(reader.NextInt(&e));
      FKC_RETURN_IF_ERROR(reader.NextInt(&seen));
      if (e < -kMaxLadderExponent || e > kMaxLadderExponent) {
        return Status::InvalidArgument("bucket exponent out of range");
      }
      // Witness times are stamped from the clock, like arrivals; a forged
      // future witness would keep its bucket alive forever and permanently
      // inflate the adaptive guess-ladder range.
      if (seen < 0 || seen > window.now_) {
        return Status::InvalidArgument(
            "bucket witness time outside the restored clock");
      }
      exponent = static_cast<int>(e);
    }
    window.estimator_->RestoreBuckets(buckets, window.now_);
  }

  size_t guess_count = 0;
  FKC_RETURN_IF_ERROR(reader.NextSize(&guess_count, reader.Remaining()));
  window.guesses_.clear();  // fixed-range ctor pre-creates the ladder
  for (size_t g = 0; g < guess_count; ++g) {
    int64_t exponent = 0;
    FKC_RETURN_IF_ERROR(reader.NextInt(&exponent));
    if (exponent < -kMaxLadderExponent || exponent > kMaxLadderExponent) {
      return Status::InvalidArgument("guess exponent out of range");
    }
    const double gamma = window.ladder_.Value(static_cast<int>(exponent));
    // (1+beta)^exponent under- or overflowing the double range means the
    // exponent is corrupt; a gamma of 0 or inf would abort downstream.
    if (!std::isfinite(gamma) || gamma <= 0.0) {
      return Status::InvalidArgument("guess exponent out of range");
    }
    std::vector<AttractorEntry> v_entries, c_entries;
    std::vector<Point> v_orphans, c_orphans;
    FKC_RETURN_IF_ERROR(NextEntries(&reader, &bounds, &v_entries));
    FKC_RETURN_IF_ERROR(NextPoints(&reader, &bounds, &v_orphans));
    FKC_RETURN_IF_ERROR(NextEntries(&reader, &bounds, &c_entries));
    FKC_RETURN_IF_ERROR(NextPoints(&reader, &bounds, &c_orphans));

    GuessStructure guess(gamma, options.delta, options.window_size,
                         window.constraint_, options.variant);
    guess.RestoreState(std::move(v_entries), std::move(v_orphans),
                       std::move(c_entries), std::move(c_orphans));
    if (!window.guesses_
             .emplace(static_cast<int>(exponent), std::move(guess))
             .second) {
      return Status::InvalidArgument("duplicate guess exponent in checkpoint");
    }
  }
  // Every stored id was issued by a past next_id_++, so the restored
  // counter must be strictly ahead of all of them — otherwise future
  // arrivals would re-issue ids that SamePoint treats as identity.
  if (next_id <= bounds.max_id) {
    return Status::InvalidArgument(
        "id counter behind stored point ids in checkpoint");
  }
  // last_point_ is set on every Update and never cleared, so stored points
  // without it occur only in forged blobs — and would leave dimension()
  // unpinned (-1) while the pools hold points of a fixed dimension.
  if (!window.last_point_.has_value() && bounds.dim >= 0) {
    return Status::InvalidArgument(
        "stored points without a last point in checkpoint");
  }
  return window;
}

}  // namespace fkc
