#include "core/fair_center_sliding_window.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "metric/coordinate_pool.h"

namespace fkc {
namespace {

// Safety bound on how far Query() may extend the adaptive ladder upward in
// one call; 64 exponents cover any double-representable distance range.
constexpr int kMaxUpwardExtensions = 64;

// Buffers the distances one guess structure evaluates during a parallel
// ladder step, for deterministic replay into the estimator after the join.
class RecordingObserver final : public DistanceObserver {
 public:
  void ObserveDistance(double distance) override {
    observed.push_back(distance);
  }
  std::vector<double> observed;
};

}  // namespace

double DeltaForEpsilon(double epsilon, double beta, double alpha) {
  FKC_CHECK_GT(epsilon, 0.0);
  return epsilon / ((1.0 + beta) * (1.0 + 2.0 * alpha));
}

double EpsilonForDelta(double delta, double beta, double alpha) {
  FKC_CHECK_GT(delta, 0.0);
  return delta * (1.0 + beta) * (1.0 + 2.0 * alpha);
}

FairCenterSlidingWindow::FairCenterSlidingWindow(SlidingWindowOptions options,
                                                 ColorConstraint constraint,
                                                 const Metric* metric,
                                                 const FairCenterSolver* solver)
    : options_(std::move(options)),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver),
      ladder_(options_.beta) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  FKC_CHECK_GT(options_.window_size, 0);
  FKC_CHECK_GT(options_.delta, 0.0);
  FKC_CHECK_GT(constraint_.TotalK(), 0);

  if (options_.adaptive_range) {
    estimator_ = std::make_unique<WindowDistanceEstimator>(
        ladder_, options_.window_size);
  } else {
    FKC_CHECK_GT(options_.d_min, 0.0)
        << "fixed-range mode requires the stream's distance bounds";
    FKC_CHECK_GE(options_.d_max, options_.d_min);
    for (int exponent : ladder_.Range(options_.d_min, options_.d_max)) {
      guesses_.emplace(
          exponent,
          GuessStructure(ladder_.Value(exponent), options_.delta,
                         options_.window_size, constraint_,
                         options_.variant));
    }
  }
}

void FairCenterSlidingWindow::Update(Coordinates coords, int color) {
  Update(Point(std::move(coords), color));
}

void FairCenterSlidingWindow::StampArrival(Point* p) {
  ++now_;
  ++state_epoch_;
  p->arrival = now_;
  p->id = next_id_++;
  FKC_CHECK_GE(p->color, 0);
  FKC_CHECK_LT(p->color, constraint_.ell());
}

ThreadPool* FairCenterSlidingWindow::Pool() {
  if (options_.num_threads == 1) return nullptr;
  if (pool_threads_ < 0) {
    // Resolve the effective size before constructing: num_threads = 0 on a
    // single-core host resolves to 1, and building a ThreadPool just to
    // discover that would park an idle worker for the window's lifetime.
    pool_threads_ = ThreadPool::ResolveThreadCount(options_.num_threads);
  }
  if (pool_threads_ <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(pool_threads_);
  }
  return pool_.get();
}

void FairCenterSlidingWindow::UpdateGuesses(const Point& p) {
  // Only the topmost guess feeds the estimator: the range tracker consults
  // just its smallest and largest live buckets, and the top guess's
  // attractors span the window's coarsest scales while d(p, prev) witnesses
  // the finest. Observing every guess would triple the update cost for no
  // extra information.
  const int top_exponent = guesses_.empty() ? 0 : guesses_.rbegin()->first;

  ThreadPool* pool = Pool();
  if (pool == nullptr || guesses_.size() < 2) {
    for (auto& [exponent, guess] : guesses_) {
      DistanceObserver* observer =
          (options_.adaptive_range && exponent == top_exponent)
              ? estimator_.get()
              : nullptr;
      guess.Update(p, now_, *metric_, observer);
    }
    return;
  }

  // Parallel fan-out: the guess structures are mutually independent, so each
  // updates on its own task. Distance observations are buffered per guess
  // and replayed into the estimator in ascending exponent order after the
  // join, making the estimator state independent of thread scheduling.
  std::vector<std::pair<int, GuessStructure*>> items;
  items.reserve(guesses_.size());
  for (auto& [exponent, guess] : guesses_) items.emplace_back(exponent, &guess);
  std::vector<RecordingObserver> recorders(items.size());
  pool->ParallelFor(
      static_cast<int64_t>(items.size()), [&](int64_t i) {
        DistanceObserver* observer =
            (options_.adaptive_range && items[i].first == top_exponent)
                ? &recorders[i]
                : nullptr;
        items[i].second->Update(p, now_, *metric_, observer);
      });
  if (options_.adaptive_range) {
    for (size_t i = 0; i < items.size(); ++i) {  // ascending exponent order
      for (double d : recorders[i].observed) estimator_->ObserveDistance(d);
    }
  }
}

void FairCenterSlidingWindow::Update(Point p) {
  StampArrival(&p);

  if (options_.adaptive_range) {
    estimator_->BeginStep(now_);
    if (last_point_.has_value() &&
        IsActive(*last_point_, now_, options_.window_size)) {
      estimator_->ObserveDistance(metric_->Distance(p, *last_point_));
    }
    // Create structures for any newly witnessed scale before inserting p, so
    // that p itself lands in them.
    ReconcileAdaptiveRange();
  }

  UpdateGuesses(p);

  if (options_.adaptive_range) {
    // Distances observed against stored attractors may have widened the
    // range; newly created guesses are seeded by replay (which includes p,
    // now stored in the neighbors).
    ReconcileAdaptiveRange();
  }

  last_point_ = std::move(p);
}

void FairCenterSlidingWindow::UpdateBatch(std::vector<Point> batch) {
  if (batch.empty()) return;
  ThreadPool* pool = Pool();
  // Adaptive mode must step arrival by arrival (the guess set and estimator
  // evolve between arrivals); Update itself fans the ladder out per step.
  // Sequential configurations take the same per-arrival path.
  if (options_.adaptive_range || pool == nullptr || guesses_.size() < 2) {
    for (Point& p : batch) Update(std::move(p));
    return;
  }

  // Fixed-range parallel path: the ladder is static and observer-free, so
  // each guess structure can consume the entire batch on its own task —
  // one fan-out per batch instead of one per arrival. Equivalent to the
  // sequential interleaving because guesses share no state.
  for (Point& p : batch) StampArrival(&p);
  std::vector<GuessStructure*> items;
  items.reserve(guesses_.size());
  for (auto& [exponent, guess] : guesses_) items.push_back(&guess);
  pool->ParallelFor(static_cast<int64_t>(items.size()), [&](int64_t i) {
    for (const Point& p : batch) {
      items[i]->Update(p, p.arrival, *metric_, nullptr);
    }
  });
  last_point_ = std::move(batch.back());
}

void FairCenterSlidingWindow::ReconcileAdaptiveRange() {
  if (!estimator_->HasRange()) return;
  // Slack only above: Query must find a guess with gamma >= diameter / 2, so
  // headroom over the largest witnessed scale avoids on-demand extension,
  // while guesses below the smallest witnessed distance are all invalid and
  // pure overhead.
  const int lo = estimator_->MinExponent();
  const int hi = estimator_->MaxExponent() + options_.adaptive_slack_exponents;

  // Retire guesses that left the range (the memory savings the paper
  // attributes to OursOblivious).
  for (auto it = guesses_.begin(); it != guesses_.end();) {
    if (it->first < lo || it->first > hi) {
      it = guesses_.erase(it);
    } else {
      ++it;
    }
  }
  for (int exponent = lo; exponent <= hi; ++exponent) {
    if (guesses_.find(exponent) == guesses_.end()) CreateGuess(exponent);
  }
}

void FairCenterSlidingWindow::CreateGuess(int exponent) {
  GuessStructure fresh(ladder_.Value(exponent), options_.delta,
                       options_.window_size, constraint_, options_.variant);
  if (!options_.warm_start_new_guesses) {
    guesses_.emplace(exponent, std::move(fresh));
    return;
  }
  // Warm-up: replay the stored points of the nearest existing guess so the
  // new scale does not start blind to the current window.
  const GuessStructure* donor = nullptr;
  int best_distance = std::numeric_limits<int>::max();
  for (const auto& [e, guess] : guesses_) {
    const int d = std::abs(e - exponent);
    if (d < best_distance) {
      best_distance = d;
      donor = &guess;
    }
  }
  if (donor != nullptr) donor->ReplayInto(&fresh, now_, *metric_);
  guesses_.emplace(exponent, std::move(fresh));
}

bool FairCenterSlidingWindow::GuessPasses(const GuessStructure& guess) const {
  if (!guess.IsValid()) return false;
  const int k = constraint_.TotalK();
  const double threshold = 2.0 * guess.gamma();
  const std::vector<Point> rv = guess.ValidationPoints();
  if (rv.empty()) return true;

  // Greedy 2*gamma cover over RV through the SoA kernels: a transient
  // dim-major pool over the validation points, one vectorized row per
  // selected center, min-accumulated into per-point cover distances. A point
  // joins the cover exactly when the original scalar scan would have
  // (min-over-centers compares the same bit-identical distances), so the
  // accepted guess — and every determinism contract above it — is unchanged.
  CoordinatePool pool(rv[0].dimension());
  for (const Point& q : rv) pool.Append(q);
  std::vector<double> cover_dist(rv.size(),
                                 std::numeric_limits<double>::infinity());
  std::vector<double> row(rv.size());
  int cover_size = 0;
  for (size_t i = 0; i < rv.size(); ++i) {
    if (cover_dist[i] <= threshold) continue;  // already covered
    if (++cover_size > k) return false;
    metric_->DistanceSoA(rv[i], pool, row.data());
    for (size_t j = 0; j < rv.size(); ++j) {
      cover_dist[j] = std::min(cover_dist[j], row[j]);
    }
  }
  return true;
}

void FairCenterSlidingWindow::ExpireAllGuesses() {
  ThreadPool* pool = Pool();
  if (pool == nullptr || guesses_.size() < 2) {
    for (auto& [exponent, guess] : guesses_) guess.ExpireOnly(now_);
    return;
  }
  std::vector<GuessStructure*> items;
  items.reserve(guesses_.size());
  for (auto& [exponent, guess] : guesses_) items.push_back(&guess);
  pool->ParallelFor(static_cast<int64_t>(items.size()),
                    [&](int64_t i) { items[i]->ExpireOnly(now_); });
}

Result<QueryPlan> FairCenterSlidingWindow::PlanQuery() {
  QueryPlan plan;
  if (now_ == 0) return plan;  // empty window: empty coreset

  // Expire lazily in case no Update happened since construction of some
  // guesses (idempotent otherwise).
  ExpireAllGuesses();

  // Degenerate window: no structure exists only when no positive distance
  // was ever witnessed, i.e. all active points share one location — the most
  // recent point is an exact 1-point coreset.
  if (guesses_.empty()) {
    FKC_CHECK(last_point_.has_value());
    plan.coreset.push_back(*last_point_);
    plan.stats.coreset_size = 1;
    return plan;
  }

  ThreadPool* pool = Pool();
  int inspected = 0;
  for (int attempt = 0;; ++attempt) {
    // One validation round over the current ladder. The per-guess acceptance
    // tests are mutually independent and read-only, so they fan out over the
    // pool; the lowest passing guess is then selected by an ascending scan of
    // the results, which makes the choice — and `guesses_inspected`, counted
    // as-if sequential with early exit — identical at any thread count. The
    // parallel round speculatively validates guesses above the selected one;
    // that costs extra distance evaluations but no wall time on idle workers.
    std::vector<GuessStructure*> items;
    items.reserve(guesses_.size());
    for (auto& [exponent, guess] : guesses_) items.push_back(&guess);

    int chosen = -1;
    if (pool != nullptr && items.size() >= 2) {
      std::vector<unsigned char> passes(items.size(), 0);
      pool->ParallelFor(static_cast<int64_t>(items.size()), [&](int64_t i) {
        passes[i] = GuessPasses(*items[i]) ? 1 : 0;
      });
      for (size_t i = 0; i < items.size(); ++i) {
        if (passes[i] != 0) {
          chosen = static_cast<int>(i);
          break;
        }
      }
      inspected += chosen >= 0 ? chosen + 1 : static_cast<int>(items.size());
    } else {
      for (size_t i = 0; i < items.size(); ++i) {
        ++inspected;
        if (GuessPasses(*items[i])) {
          chosen = static_cast<int>(i);
          break;
        }
      }
    }

    if (chosen >= 0) {
      const GuessStructure& guess = *items[chosen];
      plan.coreset = guess.CoresetPoints();
      plan.stats.guess = guess.gamma();
      plan.stats.coreset_size = static_cast<int64_t>(plan.coreset.size());
      plan.stats.guesses_inspected = inspected;
      return plan;
    }
    // No guess passed. In adaptive mode the estimated range may lag an
    // abrupt diameter growth: extend the ladder upward and retry.
    if (!options_.adaptive_range || attempt >= kMaxUpwardExtensions) break;
    const int top = guesses_.rbegin()->first;
    CreateGuess(top + 1);
    // Only the new top guess needs scanning next round, but re-scanning the
    // (few) existing guesses keeps the loop simple.
  }
  return Status::FailedPrecondition(
      "no guess accepted the window; in fixed-range mode this means "
      "[d_min, d_max] does not cover the stream");
}

Result<FairCenterSolution> FairCenterSlidingWindow::Query(QueryStats* stats) {
  if (stats != nullptr) *stats = QueryStats{};
  auto plan = PlanQuery();
  if (!plan.ok()) return plan.status();
  if (stats != nullptr) *stats = plan.value().stats;
  if (plan.value().coreset.empty()) return FairCenterSolution{};

  Stopwatch solver_timer;
  auto solved = solver_->Solve(*metric_, plan.value().coreset, constraint_);
  if (stats != nullptr) stats->solver_millis = solver_timer.ElapsedMillis();
  return solved;
}

Result<RobustFairCenterSolution> FairCenterSlidingWindow::QueryRobust(
    int num_outliers, QueryStats* stats) {
  if (stats != nullptr) *stats = QueryStats{};
  auto plan = PlanQuery();
  if (!plan.ok()) return plan.status();
  if (stats != nullptr) *stats = plan.value().stats;
  if (plan.value().coreset.empty()) return RobustFairCenterSolution{};

  Stopwatch solver_timer;
  auto solved = SolveRobustFairCenter(*metric_, plan.value().coreset,
                                      constraint_, num_outliers);
  if (stats != nullptr) stats->solver_millis = solver_timer.ElapsedMillis();
  return solved;
}

MemoryStats FairCenterSlidingWindow::Memory() const {
  MemoryStats stats;
  for (const auto& [exponent, guess] : guesses_) stats += guess.Memory();
  return stats;
}

int64_t FairCenterSlidingWindow::ExpirySweeps() const {
  int64_t total = 0;
  for (const auto& [exponent, guess] : guesses_) total += guess.expiry_sweeps();
  return total;
}

int64_t FairCenterSlidingWindow::WindowPopulation() const {
  return std::min(now_, options_.window_size);
}

}  // namespace fkc
