// Building blocks for the per-guess structures: attractor entries (an
// attractor point plus its representative set) and the expiry / threshold
// filters shared by validation and coreset bookkeeping.
//
// TTL conventions (Section 3 of the paper): a point q arriving at t(q) is
// active while TTL(q) = n - (now - t(q)) > 0, i.e. while t(q) > now - n. The
// Cleanup threshold rule "drop q with TTL(q) < t_min(AV)" translates to
// "drop q with t(q) < oldest attractor arrival".
#ifndef FKC_CORE_ATTRACTOR_SET_H_
#define FKC_CORE_ATTRACTOR_SET_H_

#include <vector>

#include "matroid/color_constraint.h"
#include "metric/point.h"

namespace fkc {

/// An attractor and the representatives currently charged to it. For
/// v-attractors in the full algorithm the rep set holds exactly one point
/// (the most recent attracted one); for c-attractors — and for v-attractors
/// in the Corollary-2 variant — it holds a maximal independent set (at most
/// k_i points of color i, most recent first to arrive last).
struct AttractorEntry {
  Point attractor;
  std::vector<Point> representatives;
};

/// Number of representatives of `color` in the entry.
int CountColor(const AttractorEntry& entry, int color);

/// Adds `p` to the entry's representative set, evicting the oldest point of
/// the same color when the per-color cap would be exceeded (Algorithm 1,
/// lines 17-20). A zero cap is rejected: the paper requires positive k_i.
void AddRepresentativeWithCap(AttractorEntry* entry, const Point& p, int cap);

/// Removes expired attractors from `entries` (arrival <= now - window_size),
/// moving their still-active representatives into `orphans`. Representatives
/// of surviving attractors never expire first (they arrive later), so they
/// are left untouched.
void ExpireEntries(std::vector<AttractorEntry>* entries,
                   std::vector<Point>* orphans, int64_t now,
                   int64_t window_size);

/// Drops expired points from a flat orphan list.
void ExpirePoints(std::vector<Point>* points, int64_t now,
                  int64_t window_size);

/// Cleanup threshold filter: evicts entries whose attractor arrived before
/// `threshold`, keeping representatives with arrival >= threshold as orphans
/// (Algorithm 2, line 5).
void DropEntriesOlderThan(std::vector<AttractorEntry>* entries,
                          std::vector<Point>* orphans, int64_t threshold);

/// Drops points with arrival < threshold from a flat list.
void DropPointsOlderThan(std::vector<Point>* points, int64_t threshold);

/// Total number of representative slots across entries.
int64_t CountRepresentatives(const std::vector<AttractorEntry>& entries);

}  // namespace fkc

#endif  // FKC_CORE_ATTRACTOR_SET_H_
