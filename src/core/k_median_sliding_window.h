// Sliding-window k-median on the fair-center substrate: the guess ladder,
// coreset assembly, expiry machinery, and SoA pools are reused verbatim
// (owned as a FairCenterSlidingWindow), and only the query-time solver
// changes — the deterministic local search in sequential/k_median.h with
// k = constraint.TotalK(), following the smooth-histogram line of
// Braverman et al. ("A Unified Approach for Clustering Problems on Sliding
// Windows") and Borassi et al. ("Sliding Window Algorithms for k-Clustering
// Problems"): a coreset maintained for one clustering objective is a
// faithful window summary for its siblings.
//
// Honesty caveat, documented rather than hidden (same policy as
// QueryRobust): the reported cost is the k-median cost ON THE CORESET.
// Each coreset point stands for up to cap same-colored window points within
// delta*gamma of it, so the window cost differs by at most
// |W| * delta * gamma-hat from the reported value; the centers themselves
// are genuine window points. Color caps do not constrain the k-median
// centers — only their sum k is used.
#ifndef FKC_CORE_K_MEDIAN_SLIDING_WINDOW_H_
#define FKC_CORE_K_MEDIAN_SLIDING_WINDOW_H_

#include <string>
#include <vector>

#include "core/fair_center_sliding_window.h"
#include "core/objective_engine.h"

namespace fkc {

/// Streaming k-median over a sliding window; the ObjectiveEngine sibling of
/// FairCenterSlidingWindow sharing its substrate and determinism contracts
/// (bit-identical state at any thread count, byte-equal checkpoint
/// round-trips).
class KMedianSlidingWindow final : public ObjectiveEngine {
 public:
  /// Leading token of SerializeState blobs ("fkc-kmedian-v1"): the magic
  /// DeserializeObjectiveEngine dispatches on. The rest of the blob is the
  /// substrate's own fkc-checkpoint-v1 state, length-prefixed.
  static constexpr const char* kMagic = "fkc-kmedian-v1";

  /// `metric` and `solver` must outlive the engine. The fair-center solver
  /// is substrate plumbing only (validation, robust queries); k-median
  /// queries run the local search instead.
  KMedianSlidingWindow(SlidingWindowOptions options, ColorConstraint constraint,
                       const Metric* metric, const FairCenterSolver* solver);

  ObjectiveKind kind() const override { return ObjectiveKind::kKMedian; }

  void Update(Coordinates coords, int color);
  void Update(Point p) override;
  void UpdateBatch(std::vector<Point> batch) override;

  /// Coreset selection via the substrate's PlanQuery (parallel ladder
  /// validation, deterministic guess choice), then the deterministic
  /// k-median local search with k = constraint().TotalK().
  Result<ObjectiveSolution> QueryObjective(QueryStats* stats = nullptr) override;

  std::string SerializeState() const override;
  static Result<KMedianSlidingWindow> DeserializeState(
      const std::string& bytes, const Metric* metric,
      const FairCenterSolver* solver);

  MemoryStats Memory() const override { return substrate_.Memory(); }
  int64_t ExpirySweeps() const override { return substrate_.ExpirySweeps(); }
  int64_t now() const override { return substrate_.now(); }
  int64_t state_epoch() const override { return substrate_.state_epoch(); }
  int64_t WindowPopulation() const override {
    return substrate_.WindowPopulation();
  }
  int64_t dimension() const override { return substrate_.dimension(); }
  const SlidingWindowOptions& options() const override {
    return substrate_.options();
  }
  const ColorConstraint& constraint() const override {
    return substrate_.constraint();
  }

  /// The shared ladder underneath (tests peek at substrate diagnostics).
  const FairCenterSlidingWindow& substrate() const { return substrate_; }

 private:
  KMedianSlidingWindow(FairCenterSlidingWindow substrate, const Metric* metric);

  FairCenterSlidingWindow substrate_;
  const Metric* metric_;
};

}  // namespace fkc

#endif  // FKC_CORE_K_MEDIAN_SLIDING_WINDOW_H_
