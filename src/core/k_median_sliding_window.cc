#include "core/k_median_sliding_window.h"

#include <sstream>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/stopwatch.h"
#include "sequential/k_median.h"

namespace fkc {

KMedianSlidingWindow::KMedianSlidingWindow(SlidingWindowOptions options,
                                           ColorConstraint constraint,
                                           const Metric* metric,
                                           const FairCenterSolver* solver)
    : substrate_(std::move(options), std::move(constraint), metric, solver),
      metric_(metric) {}

KMedianSlidingWindow::KMedianSlidingWindow(FairCenterSlidingWindow substrate,
                                           const Metric* metric)
    : substrate_(std::move(substrate)), metric_(metric) {}

void KMedianSlidingWindow::Update(Coordinates coords, int color) {
  substrate_.Update(std::move(coords), color);
}

void KMedianSlidingWindow::Update(Point p) { substrate_.Update(std::move(p)); }

void KMedianSlidingWindow::UpdateBatch(std::vector<Point> batch) {
  substrate_.UpdateBatch(std::move(batch));
}

Result<ObjectiveSolution> KMedianSlidingWindow::QueryObjective(
    QueryStats* stats) {
  auto plan = substrate_.PlanQuery();
  if (!plan.ok()) return plan.status();
  if (stats != nullptr) *stats = plan.value().stats;
  ObjectiveSolution solution;
  if (plan.value().coreset.empty()) return solution;

  Stopwatch solver_timer;
  KMedianSolution solved = KMedianLocalSearch(*metric_, plan.value().coreset,
                                              constraint().TotalK());
  if (stats != nullptr) stats->solver_millis = solver_timer.ElapsedMillis();
  solution.centers = std::move(solved.centers);
  solution.value = solved.cost;
  return solution;
}

std::string KMedianSlidingWindow::SerializeState() const {
  // The k-median layer holds no state of its own beyond the substrate, so
  // the blob is the objective magic plus the substrate's self-describing
  // state, length-prefixed (fkc-checkpoint-v1 round-trips byte-equal, so
  // this blob does too).
  std::ostringstream out;
  out << kMagic << ' ';
  WriteCheckpointRaw(&out, substrate_.SerializeState());
  return out.str();
}

Result<KMedianSlidingWindow> KMedianSlidingWindow::DeserializeState(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver) {
  CheckpointReader reader(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(reader.NextToken(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a k-median checkpoint (magic '" +
                                   magic + "')");
  }
  std::string inner;
  FKC_RETURN_IF_ERROR(reader.NextRaw(&inner));
  auto substrate =
      FairCenterSlidingWindow::DeserializeState(inner, metric, solver);
  if (!substrate.ok()) return substrate.status();
  return KMedianSlidingWindow(std::move(substrate).value(), metric);
}

}  // namespace fkc
