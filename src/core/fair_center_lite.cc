#include "core/fair_center_lite.h"

namespace fkc {
namespace {

SlidingWindowOptions LiteOptions(SlidingWindowOptions options) {
  options.variant = CoreVariant::kValidationOnly;
  // Without coreset structures delta only appears in the analysis; pin it to
  // 4, the value at which the full algorithm's coreset degenerates to the
  // validation set (paper, Section 4 "delta = 4 is equivalent...").
  options.delta = 4.0;
  return options;
}

}  // namespace

FairCenterLite::FairCenterLite(SlidingWindowOptions options,
                               ColorConstraint constraint,
                               const Metric* metric,
                               const FairCenterSolver* solver)
    : window_(LiteOptions(std::move(options)), std::move(constraint), metric,
              solver) {}

}  // namespace fkc
