// Insertion-only streaming fair center, after the massive-data-model line
// the paper builds on (Chiplunkar, Kale & Ramamoorthy, ICML 2020 [16];
// doubling-style coresets go back to McCutchen-Khuller and [4, 11]). This is
// the substrate the sliding-window algorithm improves upon: one pass, no
// deletions, O(k * |Gamma|) stored points, (3 + eps)-approximate queries —
// but *prefix* semantics: it summarizes everything since the beginning and
// cannot forget, which is exactly what the sliding-window model fixes (see
// examples/concept_drift.cpp for the contrast).
//
// Scheme:
//   * Buffer the first arrivals until k+1 points with a non-zero minimum
//     pairwise distance d_min exist. For unconstrained k-center, two of any
//     k+1 points must share an optimal center, so OPT >= d_min / 2 — and in
//     insertion-only streams OPT only grows. Queries during buffering are
//     answered exactly on the buffer.
//   * Instantiate the guess ladder from d_min/2 upward; seed every guess by
//     replaying the buffer. Per guess gamma: attractors pairwise > 2*gamma,
//     each holding a maximal independent set (per-color caps, first-come)
//     of the points it attracted.
//   * A guess with k+1 attractors certifies OPT > gamma and dies — forever,
//     by monotonicity. When the top guess dies, a doubled guess is spawned,
//     seeded by replaying the dying guess's stored points (the classic
//     re-clustering step).
//   * Query: the smallest alive guess's stored points form the coreset; the
//     sequential solver A runs on it.
#ifndef FKC_CORE_INSERTION_ONLY_FAIR_CENTER_H_
#define FKC_CORE_INSERTION_ONLY_FAIR_CENTER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "core/attractor_set.h"
#include "core/guess_ladder.h"
#include "core/memory_footprint.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"
#include "sequential/fair_center_solver.h"

namespace fkc {

/// Configuration of the insertion-only summary.
struct InsertionOnlyOptions {
  /// Guess ladder progression (consecutive guesses differ by 1 + beta).
  double beta = 2.0;
};

/// One-pass insertion-only fair-center summary.
class InsertionOnlyFairCenter {
 public:
  /// `metric` and `solver` must outlive this object. Colors that occur in
  /// the stream must have caps >= 1.
  InsertionOnlyFairCenter(InsertionOnlyOptions options,
                          ColorConstraint constraint, const Metric* metric,
                          const FairCenterSolver* solver);

  /// Consumes the next stream point.
  void Update(Coordinates coords, int color);
  void Update(Point p);

  /// A fair-center solution for *all points seen so far*.
  Result<FairCenterSolution> Query();

  /// Stored points (buffer or ladder structures).
  MemoryStats Memory() const;

  /// Points consumed so far.
  int64_t count() const { return count_; }

  /// Number of alive guesses (diagnostics; 0 while buffering).
  int64_t AliveGuesses() const { return static_cast<int64_t>(guesses_.size()); }

 private:
  struct GuessState {
    std::vector<AttractorEntry> entries;
  };

  /// Moves from the buffering phase to the ladder phase.
  void ActivateLadder();

  /// Inserts `p` into one guess; returns false if the guess must die
  /// (attractor count exceeded k).
  bool InsertIntoGuess(GuessState* state, double gamma, const Point& p);

  /// All points stored by a guess, attractors first.
  std::vector<Point> StoredPoints(const GuessState& state) const;

  /// Kills dead guesses from below and spawns doubled guesses above until
  /// the top guess is alive.
  void PruneAndExtend();

  InsertionOnlyOptions options_;
  ColorConstraint constraint_;
  const Metric* metric_;
  const FairCenterSolver* solver_;
  GuessLadder ladder_;

  /// Buffering phase: the first arrivals, exact.
  bool buffering_ = true;
  std::vector<Point> buffer_;

  /// Ladder phase: alive guesses by exponent.
  std::map<int, GuessState> guesses_;

  int64_t count_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace fkc

#endif  // FKC_CORE_INSERTION_ONLY_FAIR_CENTER_H_
