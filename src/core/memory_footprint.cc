#include "core/memory_footprint.h"

#include "common/string_util.h"

namespace fkc {

MemoryStats& MemoryStats::operator+=(const MemoryStats& other) {
  v_attractors += other.v_attractors;
  v_representatives += other.v_representatives;
  c_attractors += other.c_attractors;
  c_representatives += other.c_representatives;
  guesses += other.guesses;
  return *this;
}

std::string MemoryStats::ToString() const {
  return StrFormat(
      "guesses=%lld AV=%lld RV=%lld A=%lld R=%lld total=%lld",
      static_cast<long long>(guesses), static_cast<long long>(v_attractors),
      static_cast<long long>(v_representatives),
      static_cast<long long>(c_attractors),
      static_cast<long long>(c_representatives),
      static_cast<long long>(TotalPoints()));
}

}  // namespace fkc
