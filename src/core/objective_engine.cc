#include "core/objective_engine.h"

#include <utility>

#include "common/checkpoint_io.h"
#include "core/fair_center_sliding_window.h"
#include "core/k_median_sliding_window.h"

namespace fkc {
namespace {

// The core fair-center checkpoint magic (owned by core/checkpoint.cc; the
// literal is part of the wire format, stable since v1).
constexpr const char* kFairCenterMagic = "fkc-checkpoint-v1";

}  // namespace

const char* ObjectiveTag(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kFairCenter:
      return "fair-center";
    case ObjectiveKind::kKMedian:
      return "k-median";
  }
  return "unknown";  // unreachable for in-range enum values
}

Result<ObjectiveKind> ParseObjectiveTag(const std::string& tag) {
  if (tag == "fair-center") return ObjectiveKind::kFairCenter;
  if (tag == "k-median") return ObjectiveKind::kKMedian;
  return Status::InvalidArgument("unknown objective tag '" + tag + "'");
}

std::unique_ptr<ObjectiveEngine> CreateObjectiveEngine(
    ObjectiveKind kind, SlidingWindowOptions options,
    ColorConstraint constraint, const Metric* metric,
    const FairCenterSolver* solver) {
  switch (kind) {
    case ObjectiveKind::kFairCenter:
      return std::make_unique<FairCenterSlidingWindow>(
          std::move(options), std::move(constraint), metric, solver);
    case ObjectiveKind::kKMedian:
      return std::make_unique<KMedianSlidingWindow>(
          std::move(options), std::move(constraint), metric, solver);
  }
  return nullptr;  // unreachable for in-range enum values
}

Result<ObjectiveKind> SniffObjectiveBlob(const std::string& bytes) {
  CheckpointReader reader(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(reader.NextToken(&magic));
  if (magic == kFairCenterMagic) return ObjectiveKind::kFairCenter;
  if (magic == KMedianSlidingWindow::kMagic) return ObjectiveKind::kKMedian;
  return Status::InvalidArgument("unknown engine checkpoint magic '" + magic +
                                 "'");
}

Result<std::unique_ptr<ObjectiveEngine>> DeserializeObjectiveEngine(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver) {
  auto kind = SniffObjectiveBlob(bytes);
  if (!kind.ok()) return kind.status();
  switch (kind.value()) {
    case ObjectiveKind::kFairCenter: {
      auto window =
          FairCenterSlidingWindow::DeserializeState(bytes, metric, solver);
      if (!window.ok()) return window.status();
      return std::unique_ptr<ObjectiveEngine>(
          std::make_unique<FairCenterSlidingWindow>(
              std::move(window).value()));
    }
    case ObjectiveKind::kKMedian: {
      auto window =
          KMedianSlidingWindow::DeserializeState(bytes, metric, solver);
      if (!window.ok()) return window.status();
      return std::unique_ptr<ObjectiveEngine>(
          std::make_unique<KMedianSlidingWindow>(std::move(window).value()));
    }
  }
  return Status::InvalidArgument("unknown objective kind");  // unreachable
}

}  // namespace fkc
