#include "core/insertion_only_fair_center.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fkc {

InsertionOnlyFairCenter::InsertionOnlyFairCenter(InsertionOnlyOptions options,
                                                 ColorConstraint constraint,
                                                 const Metric* metric,
                                                 const FairCenterSolver* solver)
    : options_(options),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver),
      ladder_(options.beta) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  FKC_CHECK_GT(constraint_.TotalK(), 0);
}

void InsertionOnlyFairCenter::Update(Coordinates coords, int color) {
  Update(Point(std::move(coords), color));
}

void InsertionOnlyFairCenter::Update(Point p) {
  ++count_;
  p.arrival = count_;
  p.id = next_id_++;
  FKC_CHECK_GE(p.color, 0);
  FKC_CHECK_LT(p.color, constraint_.ell());
  FKC_CHECK_GE(constraint_.cap(p.color), 1)
      << "arriving point has a zero-cap color";

  if (buffering_) {
    // Exact duplicates (same location and color) are redundant for center
    // selection; dropping them keeps the buffer bounded by (k+1) * ell.
    for (const Point& q : buffer_) {
      if (q.color == p.color && q.coords == p.coords) return;
    }
    buffer_.push_back(std::move(p));

    // Count distinct locations; k+2 of them certify OPT >= d_min / 2 for
    // every future prefix, anchoring the ladder.
    std::vector<const Point*> distinct;
    for (const Point& q : buffer_) {
      bool fresh = true;
      for (const Point* d : distinct) {
        if (d->coords == q.coords) {
          fresh = false;
          break;
        }
      }
      if (fresh) distinct.push_back(&q);
    }
    if (static_cast<int>(distinct.size()) >= constraint_.TotalK() + 2) {
      ActivateLadder();
    }
    return;
  }

  for (auto& [exponent, state] : guesses_) {
    InsertIntoGuess(&state, ladder_.Value(exponent), p);
  }
  PruneAndExtend();
}

void InsertionOnlyFairCenter::ActivateLadder() {
  double d_min = std::numeric_limits<double>::infinity();
  double d_max = 0.0;
  for (size_t i = 0; i < buffer_.size(); ++i) {
    for (size_t j = i + 1; j < buffer_.size(); ++j) {
      const double d = metric_->Distance(buffer_[i], buffer_[j]);
      if (d > 0.0) d_min = std::min(d_min, d);
      d_max = std::max(d_max, d);
    }
  }
  FKC_CHECK(std::isfinite(d_min));
  FKC_CHECK_GT(d_max, 0.0);

  // Guesses from the OPT lower bound up to the diameter (coarser guesses are
  // spawned on demand by PruneAndExtend).
  const int lo = ladder_.FloorExponent(d_min / 2.0);
  const int hi = ladder_.CeilExponent(d_max);
  for (int e = lo; e <= hi; ++e) guesses_.emplace(e, GuessState{});

  for (auto& [exponent, state] : guesses_) {
    for (const Point& q : buffer_) {
      InsertIntoGuess(&state, ladder_.Value(exponent), q);
    }
  }
  buffering_ = false;
  buffer_.clear();
  PruneAndExtend();
}

bool InsertionOnlyFairCenter::InsertIntoGuess(GuessState* state, double gamma,
                                              const Point& p) {
  // Attractor within 2*gamma with the fewest same-color representatives.
  int target = -1;
  int target_count = std::numeric_limits<int>::max();
  for (size_t i = 0; i < state->entries.size(); ++i) {
    if (metric_->Distance(p, state->entries[i].attractor) <= 2.0 * gamma) {
      const int count = CountColor(state->entries[i], p.color);
      if (count < target_count) {
        target_count = count;
        target = static_cast<int>(i);
      }
    }
  }
  if (target == -1) {
    state->entries.push_back(AttractorEntry{p, {p}});
    return static_cast<int>(state->entries.size()) <= constraint_.TotalK();
  }
  // Keep-first maximal independent set: insertion-only streams have no
  // recency preference, so the earliest k_i of each color stay.
  if (target_count < constraint_.cap(p.color)) {
    state->entries[target].representatives.push_back(p);
  }
  return true;
}

std::vector<Point> InsertionOnlyFairCenter::StoredPoints(
    const GuessState& state) const {
  std::vector<Point> out;
  for (const AttractorEntry& entry : state.entries) {
    // The attractor is always its own first representative; emitting the
    // representative set alone therefore covers it.
    out.insert(out.end(), entry.representatives.begin(),
               entry.representatives.end());
  }
  return out;
}

void InsertionOnlyFairCenter::PruneAndExtend() {
  const int k = constraint_.TotalK();
  // Kill dead guesses (attractor count > k), spawning a doubled guess above
  // the ladder when the top dies — seeded by replaying the dying guess's
  // stored points (the classic re-clustering step).
  for (;;) {
    std::vector<int> dead;
    for (const auto& [exponent, state] : guesses_) {
      if (static_cast<int>(state.entries.size()) > k) {
        dead.push_back(exponent);
      }
    }
    if (dead.empty()) return;
    const int top = guesses_.rbegin()->first;
    for (int exponent : dead) {
      if (exponent == top) {
        // Re-cluster the dying top guess into a fresh doubled guess.
        GuessState fresh;
        std::vector<Point> stored = StoredPoints(guesses_.at(exponent));
        std::sort(stored.begin(), stored.end(),
                  [](const Point& a, const Point& b) {
                    return a.arrival < b.arrival;
                  });
        const double doubled_gamma = ladder_.Value(top + 1);
        for (const Point& q : stored) {
          InsertIntoGuess(&fresh, doubled_gamma, q);
        }
        guesses_.emplace(top + 1, std::move(fresh));
      }
      guesses_.erase(exponent);
    }
    // The freshly spawned guess may itself be dead; loop until stable.
  }
}

Result<FairCenterSolution> InsertionOnlyFairCenter::Query() {
  if (count_ == 0) return FairCenterSolution{};
  if (buffering_) {
    return solver_->Solve(*metric_, buffer_, constraint_);
  }
  FKC_CHECK(!guesses_.empty());
  const GuessState& lowest = guesses_.begin()->second;
  return solver_->Solve(*metric_, StoredPoints(lowest), constraint_);
}

MemoryStats InsertionOnlyFairCenter::Memory() const {
  MemoryStats stats;
  if (buffering_) {
    stats.v_representatives = static_cast<int64_t>(buffer_.size());
    return stats;
  }
  for (const auto& [exponent, state] : guesses_) {
    ++stats.guesses;
    stats.v_attractors += static_cast<int64_t>(state.entries.size());
    stats.v_representatives += CountRepresentatives(state.entries);
  }
  return stats;
}

}  // namespace fkc
