// Checkpoint I/O and validation for SlidingWindowOptions and the objective
// tag, shared by the core window checkpoint (fkc-checkpoint-v1) and the
// serving layer's fleet formats (fkc-shards-v1/v2/v3 and the incremental
// deltas): one writer, one reader, and one validator, so the field order,
// the hex-float encoding, and the notion of "plausible options" cannot
// drift between layers.
#ifndef FKC_CORE_OPTIONS_IO_H_
#define FKC_CORE_OPTIONS_IO_H_

#include <sstream>
#include <vector>

#include "common/checkpoint_io.h"
#include "common/status.h"
#include "core/fair_center_sliding_window.h"
#include "matroid/color_constraint.h"

namespace fkc {

/// Upper bound on any guess-ladder rung exponent a checkpoint may carry (or
/// a fixed distance range may imply). Any honest exponent is tiny — |e| well
/// under the double exponent range — so values past this are corruption, not
/// configuration; they must be rejected before the int64 -> int narrowing
/// (which would alias modulo 2^32 into plausible rungs) and before the
/// one-GuessStructure-per-rung allocation blow-up. One constant shared by
/// the options validator, the core checkpoint reader, and the serving-layer
/// fleet formats, so the bound cannot drift between layers.
constexpr int64_t kMaxLadderExponent = 1 << 12;

/// Upper bound on a plausible checkpointed color count.
constexpr int64_t kMaxCheckpointColors = 1 << 20;

/// Reads and validates the "<ell> <caps...>" constraint block shared by the
/// core checkpoint and the serving layer's fleet/delta formats: ell in
/// [1, kMaxCheckpointColors], no negative cap, at least one positive cap
/// (an all-zero constraint would abort the window constructor downstream).
Status ReadColorCaps(CheckpointReader* reader, std::vector<int>* caps);

/// Writes the constraint block ReadColorCaps reads.
void WriteColorCaps(std::ostringstream* out, const ColorConstraint& c);

/// Rejects options that a FairCenterSlidingWindow cannot be built from —
/// the exact set the constructor would otherwise abort on via CHECK
/// (window_size >= 1, finite delta > 0, finite beta > 0 for the guess
/// ladder, variant in range, adaptive_slack_exponents in [0, 1024], and in
/// fixed-range mode finite bounds with 0 < d_min <= d_max). Checkpoint
/// readers run this before constructing anything, so a corrupted or
/// adversarial blob surfaces as kInvalidArgument instead of a process
/// abort. num_threads is an execution knob and is not validated.
Status ValidateSlidingWindowOptions(const SlidingWindowOptions& options);

/// Writes the checkpointed option fields in the fixed field order
/// (window_size, beta, delta, variant, adaptive_range, d_min, d_max,
/// adaptive_slack_exponents, warm_start_new_guesses), hex-float doubles.
/// num_threads is deliberately excluded: results are bit-identical at any
/// thread count, so it is not state.
void WriteSlidingWindowOptions(std::ostringstream* out,
                               const SlidingWindowOptions& options);

/// Reads the fields WriteSlidingWindowOptions wrote and validates them.
/// `out->num_threads` is left untouched. Fails with kInvalidArgument on
/// malformed, truncated, or implausible input.
Status ReadSlidingWindowOptions(CheckpointReader* reader,
                                SlidingWindowOptions* out);

/// True when two option sets serialize identically, i.e. agree on every
/// checkpointed field (num_threads, the execution knob, is ignored). The
/// serving layer uses this to decide whether a tenant override actually
/// deviates from the fleet template.
bool SameCheckpointedOptions(const SlidingWindowOptions& a,
                             const SlidingWindowOptions& b);

/// Writes the objective's wire tag ("fair-center" / "k-median") as one
/// token, used by the fkc-shards-v3 fleet format.
void WriteObjectiveTag(std::ostringstream* out, ObjectiveKind kind);

/// Reads the token WriteObjectiveTag wrote. kInvalidArgument on an unknown
/// or forged tag — restore paths reject, never abort.
Status ReadObjectiveTag(CheckpointReader* reader, ObjectiveKind* out);

}  // namespace fkc

#endif  // FKC_CORE_OPTIONS_IO_H_
