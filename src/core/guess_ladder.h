// The geometric guess ladder Gamma = { (1+beta)^i } over which the sliding
// window algorithm maintains one structure per guess. Guesses are addressed
// by their integer exponent so fixed-range (Ours) and adaptive
// (OursOblivious) variants share arithmetic.
#ifndef FKC_CORE_GUESS_LADDER_H_
#define FKC_CORE_GUESS_LADDER_H_

#include <vector>

namespace fkc {

/// Exponent arithmetic for the ladder gamma_i = (1+beta)^i.
class GuessLadder {
 public:
  /// `beta` > 0 controls the progression (the paper's experiments fix
  /// beta = 2, i.e. consecutive guesses differ by 3x).
  explicit GuessLadder(double beta);

  double beta() const { return beta_; }

  /// gamma_i = (1+beta)^i.
  double Value(int exponent) const;

  /// Largest i with (1+beta)^i <= value; value must be positive.
  int FloorExponent(double value) const;

  /// Smallest i with (1+beta)^i >= value; value must be positive.
  int CeilExponent(double value) const;

  /// The paper's Gamma: exponents floor(log_{1+beta} d_min) ..
  /// ceil(log_{1+beta} d_max), inclusive.
  std::vector<int> Range(double d_min, double d_max) const;

 private:
  double beta_;
  double log_base_;  // log(1 + beta)
};

}  // namespace fkc

#endif  // FKC_CORE_GUESS_LADDER_H_
