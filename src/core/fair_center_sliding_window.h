// The paper's primary contribution: fair center clustering in sliding
// windows. At any time t, Query() returns an (alpha + epsilon)-approximate
// fair-center solution for the window of the n most recent stream points,
// using space and time independent of n (Theorems 1-3).
//
// Two operating modes, matching the paper's experiments:
//   * fixed range ("Ours"): the stream's minimum and maximum pairwise
//     distances are known up front and fix the guess ladder;
//   * adaptive range ("OursOblivious"): the ladder follows running estimates
//     of the current window's distance range, instantiating guess structures
//     lazily and retiring ones that fall out of range.
// The variant knob selects the full coreset algorithm (Theorem 1) or the
// dimension-oblivious validation-only algorithm (Corollary 2).
#ifndef FKC_CORE_FAIR_CENTER_SLIDING_WINDOW_H_
#define FKC_CORE_FAIR_CENTER_SLIDING_WINDOW_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/distance_estimator.h"
#include "core/guess_ladder.h"
#include "core/guess_structure.h"
#include "core/memory_footprint.h"
#include "core/objective_engine.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"
#include "sequential/fair_center_solver.h"
#include "sequential/robust_fair_center.h"

namespace fkc {

/// Configuration of the sliding-window algorithm.
struct SlidingWindowOptions {
  /// Window size n: queries answer for the last n stream points.
  int64_t window_size = 10000;

  /// Guess ladder progression: consecutive guesses differ by (1 + beta).
  /// The paper's experiments fix beta = 2.
  double beta = 2.0;

  /// Coreset precision delta in (0, 4]: c-attractors keep pairwise distance
  /// > delta*gamma/2. Smaller delta = larger, more accurate coresets. The
  /// experiments sweep delta in {0.5, ..., 4}. For an epsilon-guarantee use
  /// DeltaForEpsilon().
  double delta = 0.5;

  /// Full coreset algorithm (Theorem 1) or validation-only (Corollary 2).
  CoreVariant variant = CoreVariant::kFull;

  /// false: fixed-range mode; d_min / d_max below are required ("Ours").
  /// true: adaptive mode; the range is estimated online ("OursOblivious").
  bool adaptive_range = false;

  /// Stream-wide distance bounds for fixed-range mode.
  double d_min = 0.0;
  double d_max = 0.0;

  /// Adaptive mode: extra guess exponents kept on both ends of the
  /// estimated range as a safety margin.
  int adaptive_slack_exponents = 1;

  /// Adaptive mode: seed freshly instantiated guess structures by replaying
  /// the stored points of the nearest existing guess, so a newly witnessed
  /// scale does not start blind to the current window. Disable only for
  /// ablation (bench/ablation_warmstart) — cold structures degrade quality
  /// for up to one window length after every range shift.
  bool warm_start_new_guesses = true;

  /// Worker threads for the parallel ladder engine: the per-guess structures
  /// are mutually independent, so Update/UpdateBatch fan them out across
  /// this many threads. 1 = fully sequential (no pool is created);
  /// 0 = hardware concurrency. Results are bit-identical at any value — an
  /// execution knob, not algorithm state, and deliberately excluded from
  /// SerializeState().
  int num_threads = 1;
};

/// Theorem 1 parameter rule: the delta achieving an (alpha+epsilon)
/// approximation is epsilon / ((1+beta)(1+2*alpha)).
double DeltaForEpsilon(double epsilon, double beta, double alpha);

/// Inverse of DeltaForEpsilon: the epsilon guaranteed by a given delta.
double EpsilonForDelta(double delta, double beta, double alpha);

/// Per-query diagnostics. Every field except `solver_millis` (a wall time)
/// is deterministic: identical state produces identical values at any thread
/// count, parallel or sequential query path alike.
struct QueryStats {
  double guess = 0.0;          ///< the selected gamma-hat
  int64_t coreset_size = 0;    ///< points handed to the sequential solver
  int guesses_inspected = 0;   ///< ladder entries examined by Query
  double solver_millis = 0.0;  ///< time spent inside the sequential solver
};

/// The resolved front half of a query (Algorithm 3's guess selection): the
/// coreset to hand to a sequential solver plus the selection diagnostics.
/// Query, QueryRobust, and any future query mode run their solver on one
/// shared plan, so every mode inherits the parallel ladder validation and
/// the deterministic guess choice for free.
struct QueryPlan {
  /// R (full variant) or RV (Corollary-2 variant) of the selected guess;
  /// empty for an empty window.
  std::vector<Point> coreset;
  /// guess / coreset_size / guesses_inspected are populated; solver_millis
  /// stays 0 (no solver has run yet).
  QueryStats stats;
};

/// Streaming fair-center clustering over a sliding window — the paper's
/// objective, and the reference ObjectiveEngine implementation the generic
/// serving layer programs against.
///
/// Typical use:
///   FairCenterSlidingWindow window(options, constraint, &metric, &solver);
///   for each stream point: window.Update(coords, color);
///   auto solution = window.Query();
class FairCenterSlidingWindow : public ObjectiveEngine {
 public:
  /// `metric` and `solver` must outlive the window. Every color that occurs
  /// in the stream must have a cap >= 1 (the paper assumes positive k_i).
  FairCenterSlidingWindow(SlidingWindowOptions options,
                          ColorConstraint constraint, const Metric* metric,
                          const FairCenterSolver* solver);

  ObjectiveKind kind() const override { return ObjectiveKind::kFairCenter; }

  /// Feeds the next stream point; arrival time and id are assigned
  /// internally (one logical time step per call).
  void Update(Coordinates coords, int color);
  void Update(Point p) override;

  /// Feeds a batch of stream points, equivalent to calling Update on each in
  /// order (bit-identical final state), but amortizing the parallel fan-out:
  /// in fixed-range mode every guess structure consumes the whole batch on
  /// its own thread; in adaptive mode arrivals are processed one step at a
  /// time (the guess set may shift between arrivals) with the ladder fanned
  /// out per step.
  void UpdateBatch(std::vector<Point> batch) override;

  /// Computes a fair-center solution for the current window (Algorithm 3).
  /// Fails with kFailedPrecondition in fixed-range mode if the configured
  /// [d_min, d_max] does not cover the data.
  Result<FairCenterSolution> Query(QueryStats* stats = nullptr);

  /// The typed Query through the objective-generic surface: the solution's
  /// `value` is the fair-center radius.
  Result<ObjectiveSolution> QueryObjective(QueryStats* stats = nullptr) override {
    auto solution = Query(stats);
    if (!solution.ok()) return solution.status();
    FairCenterSolution typed = std::move(solution).value();
    ObjectiveSolution out;
    out.centers = std::move(typed.centers);
    out.value = typed.radius;
    return out;
  }

  /// The guess-selection front half of Algorithm 3, exposed so callers (and
  /// the serving layer) can split selection from solving: expires stale
  /// points, validates every ladder entry — fanned out over the thread pool
  /// when one is configured, since the per-guess acceptance tests are
  /// mutually independent — and deterministically selects the lowest passing
  /// guess. Returns an empty-coreset plan for an empty window and the latest
  /// point alone for an all-duplicates window. The result is bit-identical
  /// to the sequential scan at any thread count.
  Result<QueryPlan> PlanQuery();

  /// Extension (paper's future-work direction): outlier-tolerant query.
  /// Selects the coreset exactly as Query does, then runs the robust
  /// bicriteria solver on it with budget `num_outliers`.
  ///
  /// Heuristic caveat, documented rather than hidden: coreset points carry
  /// implicit multiplicity (each stands for up to k_i same-color window
  /// points within delta*gamma), so discarding one coreset point can
  /// correspond to discarding several window points. The returned center set
  /// is always cap-feasible; the outlier accounting is exact only on the
  /// coreset.
  Result<RobustFairCenterSolution> QueryRobust(int num_outliers,
                                               QueryStats* stats = nullptr);

  /// Checkpointing (stream-processor state save/restore): serializes the
  /// complete algorithm state — options, constraint, clocks, every guess
  /// structure, and the adaptive-range tracker — into a self-describing
  /// text format with exact (hex-float) coordinates. The metric and solver
  /// are code, not state, and are re-supplied on restore.
  std::string SerializeState() const override;

  /// Reconstructs a window from SerializeState output. The restored window
  /// behaves identically to the original under any future Update/Query
  /// sequence. Returns kInvalidArgument on malformed or version-mismatched
  /// input.
  static Result<FairCenterSlidingWindow> DeserializeState(
      const std::string& bytes, const Metric* metric,
      const FairCenterSolver* solver);

  /// Stored-point counts (the paper's memory metric).
  MemoryStats Memory() const override;

  /// Total expiry sweeps actually executed across the ladder since
  /// construction (diagnostic; see GuessStructure::expiry_sweeps). The
  /// batch-level dedup makes this grow far slower than arrivals * guesses.
  int64_t ExpirySweeps() const override;

  /// Logical time = number of points consumed so far.
  int64_t now() const override { return now_; }

  /// Monotone counter of state-changing arrivals in this process: bumped
  /// once per consumed point, never serialized (a restored window restarts
  /// at 0). Checkpointing layers compare it against the epoch they last
  /// serialized to decide whether this window is dirty — query-time
  /// housekeeping (expiry sweeps, adaptive-ladder reconciliation) does not
  /// bump it because it is behaviorally neutral: a blob taken before such
  /// housekeeping restores to a window that answers identically.
  int64_t state_epoch() const override { return state_epoch_; }

  /// Number of points currently in the window: min(now, window_size).
  int64_t WindowPopulation() const override;

  /// Coordinate dimension this window is pinned to — the dimension of its
  /// most recent arrival, or -1 before the first one. The SoA pools (and
  /// the checkpoint reader's uniformity check) require every stored point
  /// to share one dimension, so front-ends use this to reject mismatched
  /// arrivals before they reach CHECK-guarded code.
  int64_t dimension() const override {
    return last_point_.has_value()
               ? static_cast<int64_t>(last_point_->dimension())
               : -1;
  }

  const SlidingWindowOptions& options() const override { return options_; }
  const ColorConstraint& constraint() const override { return constraint_; }

 private:
  /// Expires stale points in every guess structure, fanned out over the pool
  /// when one is configured (idempotent; the per-structure expiry watermark
  /// makes repeat sweeps O(1)).
  void ExpireAllGuesses();

  /// Creates missing guess structures for the adaptive range and retires the
  /// ones that left it. New structures are warmed by replaying the stored
  /// points of the nearest existing guess.
  void ReconcileAdaptiveRange();

  /// Instantiates a guess structure for `exponent`, seeded from the nearest
  /// existing structure (if any).
  void CreateGuess(int exponent);

  /// Algorithm 3's per-guess acceptance test: RV admits a greedy 2*gamma
  /// cover with at most k centers.
  bool GuessPasses(const GuessStructure& guess) const;

  /// Stamps arrival/id on `p` and advances the clock (the shared prologue of
  /// Update and UpdateBatch).
  void StampArrival(Point* p);

  /// Runs one arrival through every guess structure — sequentially, or
  /// fanned out over the pool with adaptive-mode distance observations
  /// recorded per guess and replayed into the estimator in ascending
  /// exponent order, so the estimator state is bit-identical to the
  /// sequential path at any thread count.
  void UpdateGuesses(const Point& p);

  /// The lazily created pool behind the parallel engine; nullptr while the
  /// configuration is sequential.
  ThreadPool* Pool();

  SlidingWindowOptions options_;
  ColorConstraint constraint_;
  const Metric* metric_;
  const FairCenterSolver* solver_;

  GuessLadder ladder_;
  /// Guess structures keyed by ladder exponent (ascending iteration order).
  std::map<int, GuessStructure> guesses_;

  /// Adaptive mode machinery.
  std::unique_ptr<WindowDistanceEstimator> estimator_;

  /// Parallel engine (created on first use when num_threads != 1).
  std::unique_ptr<ThreadPool> pool_;

  int64_t now_ = 0;
  uint64_t next_id_ = 1;
  int64_t state_epoch_ = 0;
  /// Effective pool size resolved on first Pool() call (-1 = not yet);
  /// resolving before construction avoids building a pool just to learn a
  /// single-core host needs none.
  int pool_threads_ = -1;
  /// Most recent arrival: bootstraps the estimator and serves as the
  /// fallback solution when the window holds a single distinct location.
  std::optional<Point> last_point_;
};

}  // namespace fkc

#endif  // FKC_CORE_FAIR_CENTER_SLIDING_WINDOW_H_
