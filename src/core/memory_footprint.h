// Memory accounting in the paper's unit: number of stored points. Every
// experiment plots "memory (points)", so the structures report exact slot
// counts rather than bytes.
#ifndef FKC_CORE_MEMORY_FOOTPRINT_H_
#define FKC_CORE_MEMORY_FOOTPRINT_H_

#include <cstdint>
#include <string>

namespace fkc {

/// Stored-point counts, broken down by structure kind.
struct MemoryStats {
  int64_t v_attractors = 0;       ///< |AV| summed over guesses
  int64_t v_representatives = 0;  ///< |RV| (live reps + orphans)
  int64_t c_attractors = 0;       ///< |A|
  int64_t c_representatives = 0;  ///< |R| (live rep sets + orphans)
  int64_t guesses = 0;            ///< number of instantiated guess structures

  /// Total stored point slots — the paper's "number of points in memory".
  int64_t TotalPoints() const {
    return v_attractors + v_representatives + c_attractors +
           c_representatives;
  }

  MemoryStats& operator+=(const MemoryStats& other);

  std::string ToString() const;
};

}  // namespace fkc

#endif  // FKC_CORE_MEMORY_FOOTPRINT_H_
