// The objective seam of the sliding-window engine. The guess ladder, the
// coreset assembly, the SoA distance pools, and the whole serving stack
// (ShardManager -> SpillStore -> DeltaLog -> replication) are agnostic to
// WHICH clustering objective a window optimizes; only the query-time solver
// and the reported cost differ. ObjectiveEngine names that seam: the
// update / expire / query / serialize / epoch / memory hooks every
// objective must provide. FairCenterSlidingWindow (the paper's objective)
// implements it by delegating to the existing ladder; KMedianSlidingWindow
// implements sliding-window k-median on the same substrate.
//
// Wire identity: each objective has a stable tag ("fair-center",
// "k-median") used by the fkc-shards-v3 fleet format, and each engine's
// SerializeState blob opens with a self-describing magic token, so a blob
// can be restored without out-of-band knowledge (DeserializeObjectiveEngine)
// and a forged tag/blob mismatch is detected as a Status, never an abort.
#ifndef FKC_CORE_OBJECTIVE_ENGINE_H_
#define FKC_CORE_OBJECTIVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/memory_footprint.h"
#include "matroid/color_constraint.h"
#include "metric/point.h"

namespace fkc {

class Metric;
class FairCenterSolver;
struct SlidingWindowOptions;
struct QueryStats;

/// The clustering objectives the engine can optimize over a sliding window.
enum class ObjectiveKind {
  kFairCenter = 0,  ///< the paper's fair k-center (minimize max distance)
  kKMedian = 1,     ///< sliding-window k-median (minimize sum of distances)
};

/// Stable wire tag of an objective ("fair-center" / "k-median"), used by the
/// fkc-shards-v3 fleet format and the --objective flags.
const char* ObjectiveTag(ObjectiveKind kind);

/// Inverse of ObjectiveTag. kInvalidArgument on an unknown tag — restore
/// paths must reject forged tags gracefully, never abort.
Result<ObjectiveKind> ParseObjectiveTag(const std::string& tag);

/// An objective-generic clustering answer: the chosen centers plus the
/// objective value — the covering radius for fair-center, the sum of
/// point-to-nearest-center distances for k-median. Lower is better for both.
struct ObjectiveSolution {
  std::vector<Point> centers;
  double value = 0.0;
};

/// A sliding-window clustering engine over one objective. Implementations
/// share the determinism contracts of the substrate: bit-identical state at
/// any thread count, a state_epoch dirty cursor for checkpointing layers,
/// and a self-describing SerializeState blob whose restore round-trips
/// byte-equal.
class ObjectiveEngine {
 public:
  virtual ~ObjectiveEngine() = default;

  /// Which objective this engine optimizes (fixed at construction).
  virtual ObjectiveKind kind() const = 0;

  /// Feeds the next stream point (arrival time assigned internally).
  virtual void Update(Point p) = 0;

  /// Feeds a batch, bit-identical to updating each point in order.
  virtual void UpdateBatch(std::vector<Point> batch) = 0;

  /// Computes this objective's solution for the current window. The stats
  /// fields other than solver_millis are deterministic per state.
  virtual Result<ObjectiveSolution> QueryObjective(
      QueryStats* stats = nullptr) = 0;

  /// Serializes complete algorithm state into a self-describing blob whose
  /// leading magic token identifies the objective (see
  /// DeserializeObjectiveEngine). Metric and solver are code, not state.
  virtual std::string SerializeState() const = 0;

  /// Stored-point counts (the paper's memory metric).
  virtual MemoryStats Memory() const = 0;

  /// Total expiry sweeps executed across the ladder since construction.
  virtual int64_t ExpirySweeps() const = 0;

  /// Logical time = number of points consumed so far.
  virtual int64_t now() const = 0;

  /// Monotone per-process counter of state-changing arrivals (never
  /// serialized); checkpointing layers use it as a dirty cursor.
  virtual int64_t state_epoch() const = 0;

  /// Number of points currently in the window: min(now, window_size).
  virtual int64_t WindowPopulation() const = 0;

  /// Coordinate dimension this engine is pinned to, or -1 before the first
  /// arrival (front-ends reject mismatched arrivals against this).
  virtual int64_t dimension() const = 0;

  virtual const SlidingWindowOptions& options() const = 0;
  virtual const ColorConstraint& constraint() const = 0;

 protected:
  // The base is an empty interface: derived engines stay copyable/movable
  // value types (Result<T> needs that), so the special members are defaulted
  // here rather than suppressed by the virtual destructor.
  ObjectiveEngine() = default;
  ObjectiveEngine(const ObjectiveEngine&) = default;
  ObjectiveEngine& operator=(const ObjectiveEngine&) = default;
};

/// Constructs a fresh engine of the given objective on the shared substrate.
/// `metric` and `solver` must outlive the engine (the k-median engine keeps
/// the solver only for substrate plumbing; its query-time solver is its
/// own deterministic local search).
std::unique_ptr<ObjectiveEngine> CreateObjectiveEngine(
    ObjectiveKind kind, SlidingWindowOptions options,
    ColorConstraint constraint, const Metric* metric,
    const FairCenterSolver* solver);

/// Identifies which objective serialized `bytes` from its leading magic
/// token ("fkc-checkpoint-v1" -> fair-center, "fkc-kmedian-v1" -> k-median)
/// without deserializing the state. kInvalidArgument on unknown magic.
Result<ObjectiveKind> SniffObjectiveBlob(const std::string& bytes);

/// Restores any engine from its SerializeState blob, dispatching on the
/// blob's own magic. Malformed input fails with a Status, never aborts.
Result<std::unique_ptr<ObjectiveEngine>> DeserializeObjectiveEngine(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver);

}  // namespace fkc

#endif  // FKC_CORE_OBJECTIVE_ENGINE_H_
