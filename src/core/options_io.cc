#include "core/options_io.h"

#include <cmath>

namespace fkc {
namespace {

// Safety bound on the adaptive slack: the core's own upward-extension guard
// is 64 exponents, so anything past ~1024 in a checkpoint is corruption,
// not configuration.
constexpr int64_t kMaxSlackExponents = 1024;

}  // namespace

Status ReadColorCaps(CheckpointReader* reader, std::vector<int>* caps) {
  int64_t ell = 0;
  FKC_RETURN_IF_ERROR(reader->NextInt(&ell));
  if (ell < 1 || ell > kMaxCheckpointColors) {
    return Status::InvalidArgument("implausible color count in checkpoint");
  }
  caps->assign(static_cast<size_t>(ell), 0);
  int64_t total_k = 0;
  for (int& cap : *caps) {
    int64_t value = 0;
    FKC_RETURN_IF_ERROR(reader->NextInt(&value));
    if (value < 0) {
      return Status::InvalidArgument("negative cap in checkpoint");
    }
    cap = static_cast<int>(value);
    total_k += value;
  }
  if (total_k < 1) {
    return Status::InvalidArgument("all-zero caps in checkpoint");
  }
  return Status::OK();
}

void WriteColorCaps(std::ostringstream* out, const ColorConstraint& c) {
  *out << c.ell() << ' ';
  for (int cap : c.caps()) *out << cap << ' ';
}

Status ValidateSlidingWindowOptions(const SlidingWindowOptions& options) {
  if (options.window_size < 1) {
    return Status::InvalidArgument("window_size must be >= 1");
  }
  if (!std::isfinite(options.delta) || options.delta <= 0.0) {
    return Status::InvalidArgument("delta must be finite and > 0");
  }
  if (!std::isfinite(options.beta) || options.beta <= 0.0) {
    return Status::InvalidArgument(
        "beta must be finite and > 0 (guess ladder ratio is 1 + beta)");
  }
  const int variant = static_cast<int>(options.variant);
  if (variant < 0 || variant > 1) {
    return Status::InvalidArgument("unknown core variant");
  }
  if (options.adaptive_slack_exponents < 0 ||
      options.adaptive_slack_exponents > kMaxSlackExponents) {
    return Status::InvalidArgument("implausible adaptive_slack_exponents");
  }
  if (!options.adaptive_range) {
    if (!std::isfinite(options.d_min) || !std::isfinite(options.d_max) ||
        options.d_min <= 0.0 || options.d_max < options.d_min) {
      return Status::InvalidArgument(
          "fixed-range mode requires finite 0 < d_min <= d_max");
    }
    // Bound the ladder the constructor will materialize from this range:
    // log_{1+beta}(d) is the rung index, one GuessStructure per rung.
    constexpr double kMaxExponent = static_cast<double>(kMaxLadderExponent);
    const double log_base = std::log1p(options.beta);
    if (std::fabs(std::log(options.d_min)) / log_base > kMaxExponent ||
        std::fabs(std::log(options.d_max)) / log_base > kMaxExponent) {
      return Status::InvalidArgument(
          "fixed-range guess ladder exceeds the exponent bound");
    }
  }
  return Status::OK();
}

void WriteSlidingWindowOptions(std::ostringstream* out,
                               const SlidingWindowOptions& options) {
  *out << options.window_size << ' ';
  WriteCheckpointDouble(out, options.beta);
  WriteCheckpointDouble(out, options.delta);
  *out << static_cast<int>(options.variant) << ' '
       << (options.adaptive_range ? 1 : 0) << ' ';
  WriteCheckpointDouble(out, options.d_min);
  WriteCheckpointDouble(out, options.d_max);
  *out << options.adaptive_slack_exponents << ' '
       << (options.warm_start_new_guesses ? 1 : 0) << ' ';
}

Status ReadSlidingWindowOptions(CheckpointReader* reader,
                                SlidingWindowOptions* out) {
  int64_t variant = 0, adaptive = 0, slack = 0, warm = 0;
  FKC_RETURN_IF_ERROR(reader->NextInt(&out->window_size));
  FKC_RETURN_IF_ERROR(reader->NextDouble(&out->beta));
  FKC_RETURN_IF_ERROR(reader->NextDouble(&out->delta));
  FKC_RETURN_IF_ERROR(reader->NextInt(&variant));
  FKC_RETURN_IF_ERROR(reader->NextInt(&adaptive));
  FKC_RETURN_IF_ERROR(reader->NextDouble(&out->d_min));
  FKC_RETURN_IF_ERROR(reader->NextDouble(&out->d_max));
  FKC_RETURN_IF_ERROR(reader->NextInt(&slack));
  FKC_RETURN_IF_ERROR(reader->NextInt(&warm));
  if (variant < 0 || variant > 1) {
    return Status::InvalidArgument("bad variant in checkpoint");
  }
  out->variant = static_cast<CoreVariant>(variant);
  out->adaptive_range = adaptive != 0;
  if (slack < 0 || slack > kMaxSlackExponents) {
    return Status::InvalidArgument(
        "implausible adaptive_slack_exponents in checkpoint");
  }
  out->adaptive_slack_exponents = static_cast<int>(slack);
  out->warm_start_new_guesses = warm != 0;
  return ValidateSlidingWindowOptions(*out);
}

bool SameCheckpointedOptions(const SlidingWindowOptions& a,
                             const SlidingWindowOptions& b) {
  // Doubles compare by value representation (what the hex-float round trip
  // preserves); NaN never validates, so bitwise concerns do not arise.
  return a.window_size == b.window_size && a.beta == b.beta &&
         a.delta == b.delta && a.variant == b.variant &&
         a.adaptive_range == b.adaptive_range && a.d_min == b.d_min &&
         a.d_max == b.d_max &&
         a.adaptive_slack_exponents == b.adaptive_slack_exponents &&
         a.warm_start_new_guesses == b.warm_start_new_guesses;
}

void WriteObjectiveTag(std::ostringstream* out, ObjectiveKind kind) {
  *out << ObjectiveTag(kind) << ' ';
}

Status ReadObjectiveTag(CheckpointReader* reader, ObjectiveKind* out) {
  std::string tag;
  FKC_RETURN_IF_ERROR(reader->NextToken(&tag));
  auto kind = ParseObjectiveTag(tag);
  if (!kind.ok()) return kind.status();
  *out = kind.value();
  return Status::OK();
}

}  // namespace fkc
