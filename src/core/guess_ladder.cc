#include "core/guess_ladder.h"

#include <cmath>

#include "common/logging.h"

namespace fkc {

GuessLadder::GuessLadder(double beta) : beta_(beta) {
  FKC_CHECK_GT(beta, 0.0);
  log_base_ = std::log1p(beta);
}

double GuessLadder::Value(int exponent) const {
  return std::exp(log_base_ * exponent);
}

int GuessLadder::FloorExponent(double value) const {
  FKC_CHECK_GT(value, 0.0);
  // Relative tolerance absorbs floating-point drift at bucket boundaries
  // (e.g. Value(1) = 2.9999999999999996 for beta = 2): a value within one
  // part in 1e12 of a guess is treated as equal to it.
  constexpr double kRelTol = 1e-12;
  int e = static_cast<int>(std::floor(std::log(value) / log_base_ + 1e-9));
  while (Value(e) > value * (1.0 + kRelTol)) --e;
  while (Value(e + 1) <= value * (1.0 + kRelTol)) ++e;
  return e;
}

int GuessLadder::CeilExponent(double value) const {
  FKC_CHECK_GT(value, 0.0);
  constexpr double kRelTol = 1e-12;
  const int e = FloorExponent(value);
  return Value(e) >= value * (1.0 - kRelTol) ? e : e + 1;
}

std::vector<int> GuessLadder::Range(double d_min, double d_max) const {
  FKC_CHECK_GT(d_min, 0.0);
  FKC_CHECK_GE(d_max, d_min);
  std::vector<int> exponents;
  for (int e = FloorExponent(d_min); e <= CeilExponent(d_max); ++e) {
    exponents.push_back(e);
  }
  return exponents;
}

}  // namespace fkc
