// Minimal logging and assertion macros.
//
// CHECK-style macros abort on violation and are kept in release builds: the
// sliding-window structures carry non-obvious invariants (TTL ordering,
// attractor separation) whose violation indicates a bug, never a user error.
#ifndef FKC_COMMON_LOGGING_H_
#define FKC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fkc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that actually reaches stderr. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::string prefix_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fkc

#define FKC_LOG(level)                                                  \
  ::fkc::internal::LogMessage(::fkc::LogLevel::k##level, __FILE__, __LINE__)

#define FKC_CHECK(cond)                                             \
  if (cond) {                                                       \
  } else /* NOLINT */                                               \
    ::fkc::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define FKC_CHECK_OP(lhs, rhs, op)                                      \
  FKC_CHECK((lhs)op(rhs)) << " (" << (lhs) << " vs " << (rhs) << ") "

#define FKC_CHECK_EQ(lhs, rhs) FKC_CHECK_OP(lhs, rhs, ==)
#define FKC_CHECK_NE(lhs, rhs) FKC_CHECK_OP(lhs, rhs, !=)
#define FKC_CHECK_LE(lhs, rhs) FKC_CHECK_OP(lhs, rhs, <=)
#define FKC_CHECK_LT(lhs, rhs) FKC_CHECK_OP(lhs, rhs, <)
#define FKC_CHECK_GE(lhs, rhs) FKC_CHECK_OP(lhs, rhs, >=)
#define FKC_CHECK_GT(lhs, rhs) FKC_CHECK_OP(lhs, rhs, >)

/// Checks that a Status-returning expression is OK.
#define FKC_CHECK_OK(expr)                            \
  do {                                                \
    ::fkc::Status _fkc_st = (expr);                   \
    FKC_CHECK(_fkc_st.ok()) << _fkc_st.ToString();    \
  } while (false)

#endif  // FKC_COMMON_LOGGING_H_
