#include "common/checkpoint_io.h"

#include "common/string_util.h"

namespace fkc {

void CheckpointReader::SkipSpace() {
  while (pos_ < bytes_.size() && IsSpace(bytes_[pos_])) ++pos_;
}

Status CheckpointReader::NextToken(std::string* out) {
  SkipSpace();
  const size_t start = pos_;
  while (pos_ < bytes_.size() && !IsSpace(bytes_[pos_])) ++pos_;
  if (pos_ == start) return Status::InvalidArgument("truncated checkpoint");
  out->assign(bytes_, start, pos_ - start);
  return Status::OK();
}

Status CheckpointReader::NextInt(int64_t* out) {
  std::string token;
  FKC_RETURN_IF_ERROR(NextToken(&token));
  auto parsed = ParseInt(token);
  if (!parsed.ok()) return parsed.status();
  *out = parsed.value();
  return Status::OK();
}

Status CheckpointReader::NextDouble(double* out) {
  std::string token;
  FKC_RETURN_IF_ERROR(NextToken(&token));
  auto parsed = ParseDouble(token);
  if (!parsed.ok()) return parsed.status();
  *out = parsed.value();
  return Status::OK();
}

Status CheckpointReader::NextSize(size_t* out, size_t limit) {
  int64_t value = 0;
  FKC_RETURN_IF_ERROR(NextInt(&value));
  if (value < 0 || static_cast<size_t>(value) > limit) {
    return Status::InvalidArgument("implausible count in checkpoint");
  }
  *out = static_cast<size_t>(value);
  return Status::OK();
}

Status CheckpointReader::NextRaw(std::string* out, size_t limit) {
  size_t len = 0;
  FKC_RETURN_IF_ERROR(NextSize(&len, limit));
  if (pos_ >= bytes_.size() || !IsSpace(bytes_[pos_])) {
    return Status::InvalidArgument("malformed raw segment");
  }
  ++pos_;  // the single separator after the length
  if (pos_ + len > bytes_.size()) {
    return Status::InvalidArgument("truncated raw segment");
  }
  out->assign(bytes_, pos_, len);
  pos_ += len;
  return Status::OK();
}

void WriteCheckpointDouble(std::ostringstream* out, double value) {
  *out << StrFormat("%a", value) << ' ';
}

void WriteCheckpointRaw(std::ostringstream* out, const std::string& bytes) {
  *out << bytes.size() << ' ' << bytes << ' ';
}

}  // namespace fkc
