// Deterministic pseudo-random generation used across datasets, tests, and
// benchmarks. Every consumer takes an explicit seed so whole experiments are
// reproducible bit-for-bit.
#ifndef FKC_COMMON_RANDOM_H_
#define FKC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fkc {

/// A small, fast, seedable PRNG (xoshiro256** core) with convenience
/// distributions. Not cryptographically secure; deterministic per seed.
class Rng {
 public:
  /// Seeds the generator; the same seed always produces the same sequence.
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. `lo <= hi` required.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index according to non-negative `weights` (need not sum to 1).
  /// Returns weights.size() - 1 if all weights are zero.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// Zipf(s) sampler over ranks [0, n): P(k) proportional to 1/(k+1)^s — the
/// standard heavy-tailed popularity model (tenant/key skew in serving
/// workloads). s = 0 degenerates to uniform; s around 1 is the classic
/// web-ish skew where a handful of ranks absorb most of the mass. The
/// cumulative table is precomputed once (O(n) memory, O(log n) per sample
/// via binary search), so one sampler can be shared by many draws; sampling
/// itself is const and deterministic per (rng seed, s, n).
class ZipfDistribution {
 public:
  /// `n` must be positive; `s` must be finite and non-negative.
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n()). Rank 0 is the most popular.
  size_t Next(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  std::vector<double> cdf_;  ///< normalized cumulative mass, cdf_.back() == 1
  double s_ = 0.0;
};

}  // namespace fkc

#endif  // FKC_COMMON_RANDOM_H_
