// Shared reader/writer for the text checkpoint formats (the core's
// fkc-checkpoint-v1 and the serving layer's fkc-shards-v1): whitespace-
// separated tokens, hex-float doubles for bit-exact round trips, and
// length-prefixed raw byte segments. One parser for both formats so limit
// and float-parsing semantics cannot drift apart.
#ifndef FKC_COMMON_CHECKPOINT_IO_H_
#define FKC_COMMON_CHECKPOINT_IO_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "common/status.h"

namespace fkc {

/// Sequential position-based reader over a checkpoint string. Typed token
/// extraction plus raw segments; every method fails with kInvalidArgument on
/// malformed or truncated input.
class CheckpointReader {
 public:
  /// `bytes` must outlive the reader.
  explicit CheckpointReader(const std::string& bytes) : bytes_(bytes) {}

  Status NextToken(std::string* out);
  Status NextInt(int64_t* out);
  Status NextDouble(double* out);  ///< strtod semantics: %a hex floats exact

  /// A non-negative count bounded by `limit` (rejects implausible sizes
  /// before any allocation).
  Status NextSize(size_t* out, size_t limit = 1u << 28);

  /// Bytes left to read. Every serialized element occupies at least one
  /// byte, so readers use this to bound element counts before resizing —
  /// a forged count in a tiny blob must fail, not allocate gigabytes.
  size_t Remaining() const { return bytes_.size() - pos_; }

  /// A length-prefixed raw byte segment: "<len> <len bytes>". The bytes may
  /// contain anything, including whitespace.
  Status NextRaw(std::string* out, size_t limit = 1u << 30);

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\n' || c == '\t' || c == '\r';
  }
  void SkipSpace();

  const std::string& bytes_;
  size_t pos_ = 0;
};

/// Writes `value` as a hex float ("%a"), the exact inverse of NextDouble,
/// followed by the token separator.
void WriteCheckpointDouble(std::ostringstream* out, double value);

/// Writes a raw byte segment in the length-prefixed form NextRaw reads.
void WriteCheckpointRaw(std::ostringstream* out, const std::string& bytes);

}  // namespace fkc

#endif  // FKC_COMMON_CHECKPOINT_IO_H_
