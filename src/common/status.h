// Status / Result error handling in the RocksDB / Arrow style: recoverable
// failures travel as values, programming errors abort via CHECK (logging.h).
#ifndef FKC_COMMON_STATUS_H_
#define FKC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fkc {

/// Error taxonomy for recoverable failures surfaced through Status/Result.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInfeasible,  ///< no solution satisfies the fairness / matroid constraint
  kIoError,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error. Accessing the value of an errored Result aborts, so
/// callers must test ok() (or use ValueOr) first.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : payload_(std::move(value)) {}
  /* implicit */ Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace fkc

/// Propagates a non-OK Status from the current function.
#define FKC_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::fkc::Status _fkc_status = (expr);      \
    if (!_fkc_status.ok()) return _fkc_status; \
  } while (false)

#endif  // FKC_COMMON_STATUS_H_
