#include "common/fs_util.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fkc {

namespace fs = std::filesystem;

namespace {

// Flushes a file (or directory) to stable storage. No-op on platforms
// without fsync; there the write is atomic against crashes of this
// process, not against power loss.
Status SyncPath(const std::string& path, bool directory) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(),
                        directory ? (O_RDONLY | O_DIRECTORY) : O_WRONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync failed on '" + path + "'");
  }
#else
  (void)path;
  (void)directory;
#endif
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

// Open failures split by cause: an absent file is kNotFound (a fact),
// anything else kIoError (possibly transient — fd exhaustion, EACCES). The
// spill store's probe scans depend on the distinction: a hole is writable,
// an unreadable file must never be treated as one.
static Status ClassifyOpenFailure(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec) && !ec) {
    return Status::NotFound("no such file: '" + path + "'");
  }
  return Status::IoError("cannot open '" + path + "' for reading");
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ClassifyOpenFailure(path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed on '" + path + "'");
  }
  *out = std::move(buffer).str();
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::IoError("write failed on '" + tmp + "'");
    }
  }
  // Data before name: publishing an unsynced file would let a power loss
  // replace the previous good version with a truncated one.
  Status synced = SyncPath(tmp, /*directory=*/false);
  if (!synced.ok()) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return synced;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return Status::IoError("cannot publish '" + path + "': " + ec.message());
  }
  const std::string parent = fs::path(path).parent_path().string();
  return SyncPath(parent.empty() ? "." : parent, /*directory=*/true);
}

Status ReadFilePrefix(const std::string& path, size_t max_bytes,
                      std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ClassifyOpenFailure(path);
  }
  out->resize(max_bytes);
  in.read(out->data(), static_cast<std::streamsize>(max_bytes));
  out->resize(static_cast<size_t>(in.gcount()));
  if (in.bad()) {
    return Status::IoError("read failed on '" + path + "'");
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // removing a missing file is not an error
  if (ec) {
    return Status::IoError("cannot remove '" + path + "': " + ec.message());
  }
  return Status::OK();
}

Status RemoveFileDurable(const std::string& path) {
  std::error_code ec;
  const bool removed = fs::remove(path, ec);
  if (ec) {
    return Status::IoError("cannot remove '" + path + "': " + ec.message());
  }
  if (!removed) {
    return Status::OK();  // nothing unlinked, nothing to sync
  }
  const std::string parent = fs::path(path).parent_path().string();
  return SyncPath(parent.empty() ? "." : parent, /*directory=*/true);
}

Status SyncDirectory(const std::string& dir) {
  return SyncPath(dir.empty() ? "." : dir, /*directory=*/true);
}

Status ListDirectoryFiles(const std::string& dir,
                          std::vector<std::string>* out) {
  out->clear();
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  if (ec) {
    return Status::IoError("cannot list '" + dir + "': " + ec.message());
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      return Status::IoError("cannot list '" + dir + "': " + ec.message());
    }
    std::error_code type_ec;
    if (it->is_regular_file(type_ec) && !type_ec) {
      out->push_back(it->path().filename().string());
    }
  }
  return Status::OK();
}

}  // namespace fkc
