// Small string helpers shared by the CSV loader, flag parser and benches.
#ifndef FKC_COMMON_STRING_UTIL_H_
#define FKC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fkc {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Parses a double / integer, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view input);
Result<int64_t> ParseInt(std::string_view input);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fkc

#endif  // FKC_COMMON_STRING_UTIL_H_
