// A small fixed-size worker pool for the parallel update engine. The guess
// structures of the ladder are mutually independent, so the hot path only
// needs one primitive: a blocking ParallelFor whose iterations may run on
// any thread. Determinism is the caller's contract — iterations must not
// share mutable state — and is what makes results bit-identical at any
// thread count.
//
// Work sharing across concurrent callers. ParallelFor may be called from
// any number of threads at once on the same pool. Overlapping calls do NOT
// convoy: every in-flight call registers its job in one shared active set,
// and each worker picks its next iteration round-robin across ALL active
// jobs, so two concurrent batch ingests interleave on the same workers
// instead of the second caller's work queueing behind the first's. The
// calling thread always participates in its own job (so a call makes
// progress even when every worker is busy elsewhere) and returns only when
// every one of its iterations has finished.
//
// Determinism contract, unchanged from the barrier design: within one job,
// iteration indices are claimed in strictly ascending order, each runs
// exactly once, and which THREAD runs an iteration is never observable —
// iterations must be independent, so results are bit-identical at any
// thread count and under any cross-caller interleaving.
#ifndef FKC_COMMON_THREAD_POOL_H_
#define FKC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fkc {

/// Fixed pool of worker threads plus the calling thread. A pool of size 1
/// spawns no workers at all and runs everything inline, so sequential
/// configurations pay nothing.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: size 4 spawns 3 workers.
  /// 0 resolves to the hardware concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that can execute work (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count), distributing iterations over the
  /// workers and the calling thread, and returns only after every iteration
  /// has finished. Iterations must be independent of each other. Safe to
  /// call from many threads concurrently: overlapping calls share the
  /// workers (see the file comment) instead of serializing behind each
  /// other.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  /// Iterations executed by pool workers (as opposed to the calling
  /// threads) over the pool's lifetime. A load indicator, not state:
  /// wall-clock dependent under concurrency, so benches must treat it as
  /// volatile.
  int64_t worker_iterations() const {
    return worker_iterations_.load(std::memory_order_relaxed);
  }

  /// Iterations claimed (by a worker or a caller) while at least one OTHER
  /// job was concurrently in flight — the "steal"/work-sharing counter:
  /// nonzero exactly when overlapping ParallelFor calls actually
  /// interleaved on the shared workers. Volatile like worker_iterations().
  int64_t shared_claims() const {
    return shared_claims_.load(std::memory_order_relaxed);
  }

  /// std::thread::hardware_concurrency clamped to >= 1.
  static int HardwareThreads();

  /// The one thread-count convention of the codebase: 0 means "all hardware
  /// threads", anything else is clamped to >= 1. Shared by the core window's
  /// pool, the serving layer's pool, and the --threads flag so the mapping
  /// cannot drift between layers.
  static int ResolveThreadCount(int64_t requested);

 private:
  /// Shared state of one ParallelFor call. Lives on the caller's stack;
  /// workers may touch it only between claiming an iteration (the job is
  /// still registered, or was a moment ago) and releasing `mu` after their
  /// completion countdown — the caller returns (and the frame dies) only
  /// once `pending` hits zero, which cannot happen before every claimant
  /// has finished its iteration and released `mu`.
  struct ForJob {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t count = 0;
    int64_t next = 0;     ///< next unclaimed iteration (under pool mu_)
    int64_t pending = 0;  ///< iterations not yet finished (under job mu)
    std::mutex mu;
    std::condition_variable done;
  };

  void WorkerLoop();
  /// Claims the next iteration of `job` under mu_ (already held), removing
  /// the job from the active set when it hands out the last one. Returns
  /// false when the job has nothing left to claim.
  bool ClaimLocked(ForJob* job, int64_t* index);
  /// Runs one claimed iteration and counts it done, notifying the owner
  /// when it was the last.
  static void RunIteration(ForJob* job, int64_t index);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  /// Every ParallelFor call currently holding unclaimed iterations, in
  /// registration order; workers rotate over it via rr_ so concurrent
  /// callers share the workers instead of queueing.
  std::vector<ForJob*> active_;
  size_t rr_ = 0;  ///< round-robin cursor into active_
  bool shutdown_ = false;

  std::atomic<int64_t> worker_iterations_{0};
  std::atomic<int64_t> shared_claims_{0};
};

}  // namespace fkc

#endif  // FKC_COMMON_THREAD_POOL_H_
