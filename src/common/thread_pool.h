// A small fixed-size worker pool for the parallel update engine. The guess
// structures of the ladder are mutually independent, so the hot path only
// needs one primitive: a blocking ParallelFor whose iterations may run on
// any thread. Determinism is the caller's contract — iterations must not
// share mutable state — and is what makes results bit-identical at any
// thread count.
#ifndef FKC_COMMON_THREAD_POOL_H_
#define FKC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fkc {

/// Fixed pool of worker threads plus the calling thread. A pool of size 1
/// spawns no workers at all and runs everything inline, so sequential
/// configurations pay nothing.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: size 4 spawns 3 workers.
  /// 0 resolves to the hardware concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that can execute work (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count), distributing iterations over the
  /// workers and the calling thread, and returns only after every iteration
  /// has finished. Iterations must be independent of each other.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  /// std::thread::hardware_concurrency clamped to >= 1.
  static int HardwareThreads();

  /// The one thread-count convention of the codebase: 0 means "all hardware
  /// threads", anything else is clamped to >= 1. Shared by the core window's
  /// pool, the serving layer's pool, and the --threads flag so the mapping
  /// cannot drift between layers.
  static int ResolveThreadCount(int64_t requested);

 private:
  /// Shared state of one ParallelFor call.
  struct ForJob {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t count = 0;
    int64_t next = 0;            ///< next unclaimed iteration (under mutex)
    int helpers_active = 0;      ///< workers still inside this job
    std::mutex mu;
    std::condition_variable done;
  };

  void WorkerLoop();
  static void DrainJob(ForJob* job);

  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<ForJob*> queue_;  ///< helper tickets, one per enlisted worker
  bool shutdown_ = false;
};

}  // namespace fkc

#endif  // FKC_COMMON_THREAD_POOL_H_
