#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace fkc {

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::ResolveThreadCount(int64_t requested) {
  if (requested == 0) return HardwareThreads();
  return requested < 1 ? 1 : static_cast<int>(requested);
}

ThreadPool::ThreadPool(int num_threads) {
  int total = num_threads == 0 ? HardwareThreads() : num_threads;
  FKC_CHECK_GE(total, 1);
  workers_.reserve(total - 1);
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::ClaimLocked(ForJob* job, int64_t* index) {
  if (job->next >= job->count) return false;
  *index = job->next++;
  if (job->next >= job->count) {
    // Last iteration handed out: the job has nothing left to share, so drop
    // it from the active set (claimants still inside iterations finish via
    // the per-job pending countdown, not via this list).
    auto it = std::find(active_.begin(), active_.end(), job);
    if (it != active_.end()) active_.erase(it);
  }
  return true;
}

void ThreadPool::RunIteration(ForJob* job, int64_t index) {
  (*job->fn)(index);
  // Notify while still holding the lock: the ParallelFor caller owns the
  // job on its stack and destroys it the moment it observes pending == 0 —
  // notifying after unlocking would race that destruction.
  std::lock_guard<std::mutex> lock(job->mu);
  if (--job->pending == 0) job->done.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    ForJob* job = nullptr;
    int64_t index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !active_.empty(); });
      if (shutdown_) return;
      // Round-robin over the active jobs: with several callers in flight,
      // consecutive claims rotate across their jobs, so no caller's work
      // queues wholesale behind another's.
      if (rr_ >= active_.size()) rr_ = 0;
      job = active_[rr_++];
      const bool shared = active_.size() > 1;
      if (!ClaimLocked(job, &index)) continue;
      worker_iterations_.fetch_add(1, std::memory_order_relaxed);
      if (shared) shared_claims_.fetch_add(1, std::memory_order_relaxed);
    }
    RunIteration(job, index);
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  // With no workers, or work too small to amortize a wake-up, run inline.
  if (workers_.empty() || count == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  ForJob job;
  job.fn = &fn;
  job.count = count;
  job.pending = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(&job);
  }
  work_cv_.notify_all();

  // The caller drains its own job alongside the workers: even if every
  // worker is busy inside another caller's iterations, this call keeps
  // making progress on its own.
  for (;;) {
    int64_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const bool shared = active_.size() > 1;
      if (!ClaimLocked(&job, &index)) break;
      if (shared) shared_claims_.fetch_add(1, std::memory_order_relaxed);
    }
    RunIteration(&job, index);
  }

  // The job lives on this stack frame: wait until every claimed iteration
  // has finished before returning.
  std::unique_lock<std::mutex> lock(job.mu);
  job.done.wait(lock, [&] { return job.pending == 0; });
}

}  // namespace fkc
