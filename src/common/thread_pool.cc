#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace fkc {

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::ResolveThreadCount(int64_t requested) {
  if (requested == 0) return HardwareThreads();
  return requested < 1 ? 1 : static_cast<int>(requested);
}

ThreadPool::ThreadPool(int num_threads) {
  int total = num_threads == 0 ? HardwareThreads() : num_threads;
  FKC_CHECK_GE(total, 1);
  workers_.reserve(total - 1);
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainJob(ForJob* job) {
  for (;;) {
    int64_t i;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      if (job->next >= job->count) return;
      i = job->next++;
    }
    (*job->fn)(i);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    ForJob* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      job = queue_.front();
      queue_.pop_front();
    }
    DrainJob(job);
    {
      // Notify while still holding the lock: the ParallelFor caller owns
      // the job on its stack and destroys it the moment it observes
      // helpers_active == 0 — notifying after unlocking would race that
      // destruction.
      std::lock_guard<std::mutex> lock(job->mu);
      --job->helpers_active;
      job->done.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  // With no workers, or work too small to amortize a wake-up, run inline.
  if (workers_.empty() || count == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  ForJob job;
  job.fn = &fn;
  job.count = count;
  const int helpers =
      static_cast<int>(std::min<int64_t>(workers_.size(), count - 1));
  job.helpers_active = helpers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int h = 0; h < helpers; ++h) queue_.push_back(&job);
  }
  queue_cv_.notify_all();

  DrainJob(&job);

  // The job lives on this stack frame: wait until every enlisted worker has
  // left it before returning.
  std::unique_lock<std::mutex> lock(job.mu);
  job.done.wait(lock, [&] { return job.helpers_active == 0; });
}

}  // namespace fkc
