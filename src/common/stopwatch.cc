#include "common/stopwatch.h"

#include <algorithm>

namespace fkc {

void TimingAccumulator::AddNanos(int64_t nanos) {
  ++count_;
  total_nanos_ += nanos;
  max_nanos_ = std::max(max_nanos_, nanos);
}

double TimingAccumulator::MeanMillis() const {
  if (count_ == 0) return 0.0;
  return (total_nanos_ * 1e-6) / static_cast<double>(count_);
}

void TimingAccumulator::Reset() {
  count_ = 0;
  total_nanos_ = 0;
  max_nanos_ = 0;
}

}  // namespace fkc
