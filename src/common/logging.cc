#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fkc {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  std::ostringstream prefix;
  prefix << "[FATAL " << file << ":" << line << "] Check failed: " << condition;
  prefix_ = prefix.str();
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s%s\n", prefix_.c_str(), stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace fkc
