#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fkc {

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view input) {
  std::string buf(StripWhitespace(input));
  if (buf.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view input) {
  std::string buf(StripWhitespace(input));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace fkc
