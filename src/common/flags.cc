#include "common/flags.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace fkc {

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          const std::string& help) {
  flags_[name] = {Type::kInt64, target, help};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_[name] = {Type::kDouble, target, help};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_[name] = {Type::kBool, target, help};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_[name] = {Type::kString, target, help};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  FlagInfo& info = it->second;
  switch (info.type) {
    case Type::kInt64: {
      auto parsed = ParseInt(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<int64_t*>(info.target) = parsed.value();
      return Status::OK();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<double*>(info.target) = parsed.value();
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(info.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(info.target) = false;
      } else {
        return Status::InvalidArgument("bad boolean for --" + name + ": '" +
                                       value + "'");
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(info.target) = value;
      return Status::OK();
  }
  return Status::InvalidArgument("corrupt flag registry");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_args_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      const bool is_bool = it != flags_.end() && it->second.type == Type::kBool;
      if (!is_bool && i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      }
    }
    FKC_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::OK();
}

void AddThreadsFlag(FlagParser* flags, int64_t* target) {
  flags->AddInt64("threads", target,
                  "worker threads for the parallel update engine "
                  "(0 = all hardware threads)");
}

int ResolveThreadCount(int64_t requested) {
  return ThreadPool::ResolveThreadCount(requested);
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, info] : flags_) {
    out += "  --" + name + "  " + info.help + "\n";
  }
  return out;
}

}  // namespace fkc
