// A tiny command-line flag parser for bench and example binaries.
//
// Usage:
//   FlagParser flags;
//   int64_t window = 10000;
//   flags.AddInt64("window", &window, "window size in points");
//   FKC_CHECK_OK(flags.Parse(argc, argv));
//
// Accepted syntaxes: --name=value, --name value, and --flag for booleans.
#ifndef FKC_COMMON_FLAGS_H_
#define FKC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fkc {

/// Registers typed flags backed by caller-owned variables and parses argv.
class FlagParser {
 public:
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv, writing values into the registered targets. Unknown flags
  /// are errors; positional (non-flag) arguments are collected and available
  /// via positional_args(). Recognizes --help and returns OK with
  /// help_requested() set.
  Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }
  const std::vector<std::string>& positional_args() const {
    return positional_args_;
  }

  /// A formatted usage string listing every registered flag.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct FlagInfo {
    Type type;
    void* target;
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_args_;
  bool help_requested_ = false;
};

/// Registers the conventional `--threads` flag for binaries that drive the
/// parallel update engine. 0 means "use every hardware thread". The caller's
/// initialized *target is kept as the default (pass 0 for "all cores", 1 for
/// sequential paper-comparable runs).
void AddThreadsFlag(FlagParser* flags, int64_t* target);

/// Maps a --threads value to an engine thread count: 0 -> hardware
/// concurrency, anything else clamped to >= 1. Forwards to
/// ThreadPool::ResolveThreadCount — the same mapping the core window and
/// the serving layer resolve their pools with.
int ResolveThreadCount(int64_t requested);

}  // namespace fkc

#endif  // FKC_COMMON_FLAGS_H_
