// Small filesystem and checksum helpers for the durable (on-disk) backends:
// whole-file read, atomic write-rename publication, and the FNV-1a content
// checksum the spill files embed. All failures travel as Status (kIoError
// for the filesystem, kInvalidArgument for corrupt content) — disk trouble
// must never abort a serving process.
#ifndef FKC_COMMON_FS_UTIL_H_
#define FKC_COMMON_FS_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fkc {

/// FNV-1a 64-bit over `bytes` — the integrity checksum of the on-disk spill
/// format. Not cryptographic: it detects truncation and bit rot, not
/// adversaries (a forged spill file still has to survive DeserializeState's
/// full validation).
uint64_t Fnv1a64(const std::string& bytes);

/// Creates `path` (and parents) as a directory if it does not exist yet.
Status EnsureDirectory(const std::string& path);

/// Reads the entire file into `out`. kNotFound when the file is absent,
/// kIoError when it exists but cannot be read (possibly transient).
Status ReadFileToString(const std::string& path, std::string* out);

/// Reads at most the first `max_bytes` of the file into `out` (shorter
/// when the file is). Lets header-only consumers (the spill store's slot
/// scan) avoid paying for multi-megabyte payloads they will discard.
Status ReadFilePrefix(const std::string& path, size_t max_bytes,
                      std::string* out);

/// Publishes `bytes` at `path` atomically and durably: writes `path` +
/// ".tmp", fsyncs it (POSIX — the data must be on stable storage BEFORE
/// the name is, or a power loss could publish a truncated file over the
/// previous good version), renames over the target, and fsyncs the
/// directory so the rename itself survives. A reader never observes a
/// half-written file — a process killed mid-write leaves only a `.tmp`
/// orphan (swept by the spill store's GC), and the previous version of
/// `path`, if any, survives intact.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Deletes `path` if it exists; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

/// Deletes `path` (missing files are not an error) and fsyncs the parent
/// directory, so the unlink itself survives power loss. The durable
/// counterpart of WriteFileAtomic for the REMOVAL side of a publish: an
/// unsynced unlink can resurrect a deleted spill file or log segment after
/// a crash, which readers would then trust (stale shard state, or a log
/// tail the leader already re-based away).
Status RemoveFileDurable(const std::string& path);

/// Flushes a directory's entries to stable storage (no-op on platforms
/// without directory fsync). Exposed for batch deleters that unlink many
/// files and want one sync instead of one per file.
Status SyncDirectory(const std::string& dir);

/// Names of the regular files directly inside `dir` (no recursion), in
/// unspecified order. kIoError when the directory cannot be listed.
Status ListDirectoryFiles(const std::string& dir,
                          std::vector<std::string>* out);

}  // namespace fkc

#endif  // FKC_COMMON_FS_UTIL_H_
