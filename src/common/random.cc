#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace fkc {
namespace {

// splitmix64: expands one 64-bit seed into well-mixed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FKC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  FKC_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  FKC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FKC_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size() - 1;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  FKC_CHECK_GE(n, 1u);
  FKC_CHECK(std::isfinite(s));
  FKC_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // exact, whatever rounding did above
}

size_t ZipfDistribution::Next(Rng* rng) const {
  const double u = rng->NextDouble();  // in [0, 1)
  // First rank whose cumulative mass exceeds u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace fkc
