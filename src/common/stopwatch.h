// Wall-clock timing used by the bench harness and the metrics recorder.
#ifndef FKC_COMMON_STOPWATCH_H_
#define FKC_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fkc {

/// Measures elapsed wall time with nanosecond resolution.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() * 1e-3; }
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Incrementally accumulates timing samples and exposes summary statistics.
class TimingAccumulator {
 public:
  void AddNanos(int64_t nanos);

  int64_t count() const { return count_; }
  double TotalMillis() const { return total_nanos_ * 1e-6; }
  /// Mean per-sample time in milliseconds; 0 when empty.
  double MeanMillis() const;
  double MaxMillis() const { return max_nanos_ * 1e-6; }

  void Reset();

 private:
  int64_t count_ = 0;
  int64_t total_nanos_ = 0;
  int64_t max_nanos_ = 0;
};

}  // namespace fkc

#endif  // FKC_COMMON_STOPWATCH_H_
