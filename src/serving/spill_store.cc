#include "serving/spill_store.h"

#include <cstdlib>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/fs_util.h"
#include "common/string_util.h"

namespace fkc {
namespace serving {
namespace {

// On-disk spill file layout:
//   fkc-spill-v1 <checksum> <payload>
// where <checksum> is the hex FNV-1a 64 of <payload> and <payload> is the
// length-prefixed key followed by the length-prefixed shard blob (the same
// raw-segment encoding as the fleet checkpoint). The checksum covers the
// payload bytes exactly, so any truncation or bit flip past the header is
// caught before the blob reaches DeserializeState.
constexpr const char* kSpillMagic = "fkc-spill-v1";
constexpr const char* kSpillSuffix = ".spill";
constexpr const char* kTempSuffix = ".tmp";

// Mirrors the fleet checkpoint's key bound (serving/shard_manager.cc): the
// manager rejects larger keys at ingest, so no spilled shard can carry one.
constexpr size_t kMaxSpillKeyBytes = 1u << 20;

// Length of a key's probe chain. Every operation scans the WHOLE chain —
// never stopping early at a missing or corrupt slot — so holes left by
// Erase/GC and slots ruined by bit rot can shadow nothing. With a 64-bit
// hash even a second occupied slot is vanishingly rare; eight bounds the
// scan without ever being the binding constraint in practice.
constexpr int kMaxProbes = 8;

std::string EncodeSpillFile(const std::string& key, const std::string& blob) {
  std::ostringstream payload;
  WriteCheckpointRaw(&payload, key);
  WriteCheckpointRaw(&payload, blob);
  std::string payload_bytes = std::move(payload).str();
  return StrFormat("%s %016llx ", kSpillMagic,
                   static_cast<unsigned long long>(Fnv1a64(payload_bytes))) +
         payload_bytes;
}

// Parses the "fkc-spill-v1 <checksum> " header: on success `payload_pos`
// is the first payload byte and `checksum` the embedded FNV-1a.
Status ParseSpillHeader(const std::string& file, size_t* payload_pos,
                        uint64_t* checksum) {
  const std::string prefix = std::string(kSpillMagic) + ' ';
  if (file.compare(0, prefix.size(), prefix) != 0) {
    return Status::InvalidArgument("not an fkc spill file (bad magic)");
  }
  const size_t checksum_end = file.find(' ', prefix.size());
  if (checksum_end == std::string::npos) {
    return Status::InvalidArgument("truncated spill file header");
  }
  const std::string checksum_hex =
      file.substr(prefix.size(), checksum_end - prefix.size());
  char* end = nullptr;
  *checksum = std::strtoull(checksum_hex.c_str(), &end, 16);
  if (checksum_hex.empty() ||
      end != checksum_hex.c_str() + checksum_hex.size()) {
    return Status::InvalidArgument("unparsable spill file checksum");
  }
  *payload_pos = checksum_end + 1;
  return Status::OK();
}

// Splits a spill file into its validated payload: checks the magic, parses
// the checksum token, and verifies it over the remaining bytes.
Status DecodeSpillFile(const std::string& file, std::string* key,
                       std::string* blob) {
  size_t payload_pos = 0;
  uint64_t checksum = 0;
  FKC_RETURN_IF_ERROR(ParseSpillHeader(file, &payload_pos, &checksum));
  const std::string payload = file.substr(payload_pos);
  if (Fnv1a64(payload) != checksum) {
    return Status::InvalidArgument(
        "spill file checksum mismatch (torn write or bit rot)");
  }
  CheckpointReader reader(payload);
  FKC_RETURN_IF_ERROR(reader.NextRaw(key, kMaxSpillKeyBytes));
  FKC_RETURN_IF_ERROR(reader.NextRaw(blob));
  return Status::OK();
}

// First read of a key-only scan: ample for the header plus the length
// token of any key, and covers most keys outright.
constexpr size_t kKeyScanBudget = 4096;

// Extracts just the stored key from the head of a spill file, reading only
// as many bytes as the key needs — Put's slot scan must not read (or
// checksum) the multi-megabyte payload it is about to replace. The key is
// identified WITHOUT checksum validation: good enough to pick a write/erase
// slot, while Get keeps full validation before any payload is trusted.
Status ReadStoredKey(const std::string& path, std::string* key) {
  std::string head;
  FKC_RETURN_IF_ERROR(ReadFilePrefix(path, kKeyScanBudget, &head));
  size_t payload_pos = 0;
  uint64_t checksum = 0;
  FKC_RETURN_IF_ERROR(ParseSpillHeader(head, &payload_pos, &checksum));
  // The payload opens with the key's "<len> <bytes>" raw segment.
  size_t digits_end = payload_pos;
  while (digits_end < head.size() && head[digits_end] >= '0' &&
         head[digits_end] <= '9') {
    ++digits_end;
  }
  if (digits_end == payload_pos || digits_end >= head.size()) {
    return Status::InvalidArgument("truncated spill file key header");
  }
  const std::string len_digits =
      head.substr(payload_pos, digits_end - payload_pos);
  char* end = nullptr;
  const uint64_t len = std::strtoull(len_digits.c_str(), &end, 10);
  if (end != len_digits.c_str() + len_digits.size() ||
      len > kMaxSpillKeyBytes) {
    return Status::InvalidArgument("implausible key length in spill file");
  }
  const size_t key_start = digits_end + 1;  // the single separator
  const size_t needed = key_start + static_cast<size_t>(len);
  if (head.size() < needed) {  // key outgrew the first read: fetch exactly it
    FKC_RETURN_IF_ERROR(ReadFilePrefix(path, needed, &head));
    if (head.size() < needed) {
      return Status::InvalidArgument("truncated spill file key");
    }
  }
  key->assign(head, key_start, static_cast<size_t>(len));
  return Status::OK();
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

// --- InMemorySpillStore. ---

Status InMemorySpillStore::Put(const std::string& key, std::string blob) {
  std::lock_guard<std::mutex> lock(mu_);
  blobs_[key] = std::move(blob);
  return Status::OK();
}

Result<std::string> InMemorySpillStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound("no spilled state for key '" + key + "'");
  }
  return it->second;
}

Status InMemorySpillStore::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  blobs_.erase(key);
  return Status::OK();
}

Result<int64_t> InMemorySpillStore::GarbageCollect(
    const std::set<std::string>& keep) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t removed = 0;
  for (auto it = blobs_.begin(); it != blobs_.end();) {
    if (keep.count(it->first) == 0) {
      it = blobs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

Result<int64_t> InMemorySpillStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(blobs_.size());
}

// --- FileSpillStore. ---

FileSpillStore::FileSpillStore(std::string directory)
    : directory_(std::move(directory)), init_(EnsureDirectory(directory_)) {}

std::string FileSpillStore::CandidatePath(const std::string& key,
                                          int probe) const {
  return directory_ + '/' +
         StrFormat("%016llx-%d%s",
                   static_cast<unsigned long long>(Fnv1a64(key)), probe,
                   kSpillSuffix);
}

FileSpillStore::ChainScan FileSpillStore::ScanChain(const std::string& key,
                                                    bool verify_payload) const {
  ChainScan scan;
  for (int probe = 0; probe < kMaxProbes; ++probe) {
    const std::string path = CandidatePath(key, probe);
    std::string stored_key, blob;
    Status decoded;
    if (verify_payload) {
      // Full read + checksum: the payload is about to be trusted (Get).
      std::string file;
      const Status read = ReadFileToString(path, &file);
      if (read.code() == StatusCode::kNotFound) {  // hole / never written
        if (scan.first_free < 0) scan.first_free = probe;
        continue;
      }
      if (!read.ok()) {
        // Exists but unreadable (possibly transient — fd exhaustion,
        // EACCES). NOT a hole: its key is unknowable right now, and
        // treating it as free or absent turns a retryable hiccup into
        // reported data loss (or, for a write, a stale duplicate).
        if (scan.first_unreadable < 0) {
          scan.first_unreadable = probe;
          scan.unreadable_status = read;
        }
        continue;
      }
      decoded = DecodeSpillFile(file, &stored_key, &blob);
    } else {
      // Key-only read: slot selection (Put/Erase) must not pay for — or
      // checksum — a payload it is about to replace or delete.
      const Status read = ReadStoredKey(path, &stored_key);
      if (read.code() == StatusCode::kNotFound) {  // hole / never written
        if (scan.first_free < 0) scan.first_free = probe;
        continue;
      }
      if (read.code() == StatusCode::kIoError) {  // unreadable, see above
        if (scan.first_unreadable < 0) {
          scan.first_unreadable = probe;
          scan.unreadable_status = read;
        }
        continue;
      }
      decoded = read;
    }
    if (!decoded.ok()) {
      // The slot is ruined; whether it held `key` is unknowable. Remember
      // the error — it is the honest answer when no valid copy turns up.
      if (scan.first_corrupt < 0) {
        scan.first_corrupt = probe;
        scan.corrupt_status = decoded;
      }
      continue;
    }
    if (stored_key == key && scan.match < 0) {
      scan.match = probe;
      scan.match_blob = std::move(blob);
    }
  }
  return scan;
}

Status FileSpillStore::Put(const std::string& key, std::string blob) {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(init_);
  // Overwrite the key's own slot when it has one; otherwise the first hole;
  // otherwise reclaim a corrupt slot (its content is unreadable for anyone
  // — GC would sweep it too). Only a chain full of OTHER keys' valid files
  // (an eight-fold 64-bit hash collision) has nowhere to write.
  const ChainScan scan = ScanChain(key, /*verify_payload=*/false);
  // A transiently unreadable slot might hold this very key: writing a
  // second copy elsewhere would let a later Get prefer the stale one once
  // the slot heals. Fail instead — the caller keeps the live shard and
  // retries. (With a readable match the unreadable slot is provably some
  // other key's, because this invariant keeps keys single-slotted.)
  if (scan.match < 0 && scan.first_unreadable >= 0) {
    return scan.unreadable_status;
  }
  const int slot = scan.match >= 0       ? scan.match
                   : scan.first_free >= 0 ? scan.first_free
                                          : scan.first_corrupt;
  if (slot < 0) {
    return Status::IoError("spill probe chain exhausted for key '" + key +
                           "'");
  }
  return WriteFileAtomic(CandidatePath(key, slot), EncodeSpillFile(key, blob));
}

Result<std::string> FileSpillStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(init_);
  ChainScan scan = ScanChain(key, /*verify_payload=*/true);
  // A valid copy wins even when an earlier slot is corrupt or unreadable:
  // keys are single-slotted (see Put), so those slots are stale debris or
  // other keys' — either way the valid bytes are the state. With no valid
  // copy, an unreadable slot makes the honest answer "retry" (kIoError),
  // not "lost"; only then does a corrupt slot's error surface.
  if (scan.match >= 0) return std::move(scan.match_blob);
  if (scan.first_unreadable >= 0) return scan.unreadable_status;
  if (scan.first_corrupt >= 0) return scan.corrupt_status;
  return Status::NotFound("no spill file for key '" + key + "'");
}

Status FileSpillStore::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(init_);
  // Remove every slot whose stored key is `key`; corrupt and foreign slots
  // stay (GC owns debris). Holes are harmless — readers scan the whole
  // chain.
  const ChainScan scan = ScanChain(key, /*verify_payload=*/false);
  if (scan.match >= 0) {
    // Durable unlink: without the parent-dir fsync a crash could resurrect
    // the file, and a later rehydration would trust the stale shard state.
    return RemoveFileDurable(CandidatePath(key, scan.match));
  }
  // No verifiable slot. An unreadable one might be this key's, and
  // pretending it was erased would leave it to resurface later.
  if (scan.first_unreadable >= 0) return scan.unreadable_status;
  return Status::OK();
}

Result<int64_t> FileSpillStore::GarbageCollect(
    const std::set<std::string>& keep) {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(init_);
  std::vector<std::string> files;
  FKC_RETURN_IF_ERROR(ListDirectoryFiles(directory_, &files));
  int64_t removed = 0;
  for (const std::string& name : files) {
    const std::string path = directory_ + '/' + name;
    bool orphan = false;
    if (EndsWith(name, kTempSuffix)) {
      // A temp file is a write that never published — the writer was killed
      // between write and rename. The published version (if any) is intact.
      orphan = true;
    } else if (EndsWith(name, kSpillSuffix)) {
      // The keep-set decision needs only the stored key (a prefix read),
      // never the payload: GC runs on a maintenance cadence and must not
      // re-read and re-hash every spilled gigabyte each sweep.
      std::string key;
      const Status read = ReadStoredKey(path, &key);
      if (read.code() == StatusCode::kIoError ||
          read.code() == StatusCode::kNotFound) {
        // Could not READ the file (fd exhaustion, transient EACCES…) or
        // it vanished after the listing. Neither is evidence of debris —
        // deleting on a read failure would destroy a live shard's only
        // copy. Skip; a later sweep decides.
        continue;
      }
      // Unparsable header/key = debris; parsable = orphan iff not kept.
      orphan = !read.ok() || keep.count(key) == 0;
    }
    // Files matching neither suffix are not ours; leave them alone.
    if (orphan) {
      FKC_RETURN_IF_ERROR(RemoveFileIfExists(path));
      ++removed;
    }
  }
  if (removed > 0) {
    // One directory fsync for the whole sweep makes the unlinks durable —
    // a resurrected orphan would be re-adopted as a live slot by the next
    // probe-chain scan.
    FKC_RETURN_IF_ERROR(SyncDirectory(directory_));
  }
  return removed;
}

Result<int64_t> FileSpillStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(init_);
  std::vector<std::string> files;
  FKC_RETURN_IF_ERROR(ListDirectoryFiles(directory_, &files));
  int64_t count = 0;
  for (const std::string& name : files) {
    std::string key;
    if (EndsWith(name, kSpillSuffix) &&
        ReadStoredKey(directory_ + '/' + name, &key).ok()) {
      ++count;
    }
  }
  return count;
}

}  // namespace serving
}  // namespace fkc
