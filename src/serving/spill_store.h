// Pluggable backend for evicted-shard state. When the ShardManager spills an
// idle shard it hands the shard's serialized core checkpoint to a SpillStore
// keyed by the tenant key; rehydration, ephemeral QueryAll reads, and fleet
// checkpoints read it back. The store sees opaque bytes only — validation of
// the content stays with FairCenterSlidingWindow::DeserializeState.
//
// Two implementations:
//   * InMemorySpillStore — the PR-4 behaviour, a std::map. Spilled shards
//     stop costing live window structures but still cost RAM.
//   * FileSpillStore — one file per spilled shard under a spill directory,
//     so resident memory is bounded by the live-shard cap no matter how
//     large the fleet grows. Writes are atomic (write-to-temp + rename), a
//     FNV-1a checksum is verified on every load (a torn or bit-rotted file
//     surfaces as kInvalidArgument, never as a crash or a silently wrong
//     window), and GarbageCollect sweeps orphans: temp files left by a
//     kill mid-write and spill files whose tenant is no longer spilled.
//
// Both implementations are internally thread-safe: every operation holds
// the store's own mutex, so concurrent per-shard spills, rehydrations,
// ephemeral QueryAll reads, and the maintenance thread's GC may hit the
// store at once (the ShardManager's per-shard locks already serialize
// same-key traffic; this mutex makes cross-key concurrency safe too).
// Custom SpillStore implementations must uphold the same contract.
#ifndef FKC_SERVING_SPILL_STORE_H_
#define FKC_SERVING_SPILL_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace fkc {
namespace serving {

/// Keyed blob storage for spilled shards. Implementations must be safe to
/// call from multiple threads concurrently (see file comment).
class SpillStore {
 public:
  virtual ~SpillStore() = default;

  /// Stores `blob` under `key`, replacing any previous value. By value so
  /// callers can move multi-megabyte shard states straight into the store.
  virtual Status Put(const std::string& key, std::string blob) = 0;

  /// Retrieves the blob stored under `key`. kNotFound when absent,
  /// kInvalidArgument when present but failing integrity validation.
  virtual Result<std::string> Get(const std::string& key) const = 0;

  /// Drops `key`'s blob; absent keys are not an error.
  virtual Status Erase(const std::string& key) = 0;

  /// Removes every stored blob whose key is not in `keep`, plus any backend
  /// debris (temp files from interrupted writes, unparsable files). Returns
  /// the number of entries removed.
  virtual Result<int64_t> GarbageCollect(const std::set<std::string>& keep) = 0;

  /// Entries currently stored (unparsable backend files excluded).
  virtual Result<int64_t> Count() const = 0;

  /// Human-readable backend name for logs and bench output.
  virtual const char* Name() const = 0;
};

/// The default backend: blobs live in process memory.
class InMemorySpillStore final : public SpillStore {
 public:
  Status Put(const std::string& key, std::string blob) override;
  Result<std::string> Get(const std::string& key) const override;
  Status Erase(const std::string& key) override;
  Result<int64_t> GarbageCollect(const std::set<std::string>& keep) override;
  Result<int64_t> Count() const override;
  const char* Name() const override { return "memory"; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> blobs_;
};

/// Durable backend: one "<fnv1a(key)>-<probe>.spill" file per key under
/// `directory` (created on construction if missing). Keys are raw bytes and
/// may exceed filename limits, so files are named by the key's 64-bit hash —
/// the key itself travels inside the file, and the rare hash collision is
/// resolved by a short, fully-scanned probe chain on the `-<probe>` suffix:
/// every operation inspects the whole chain, so holes left by Erase/GC and
/// slots ruined by bit rot can never shadow a valid file behind them.
class FileSpillStore final : public SpillStore {
 public:
  /// `directory` is created if absent. A failure to create it is deferred
  /// to the first Put/Get (constructors cannot return Status).
  explicit FileSpillStore(std::string directory);

  Status Put(const std::string& key, std::string blob) override;
  Result<std::string> Get(const std::string& key) const override;
  Status Erase(const std::string& key) override;
  Result<int64_t> GarbageCollect(const std::set<std::string>& keep) override;
  Result<int64_t> Count() const override;
  const char* Name() const override { return "file"; }

  const std::string& directory() const { return directory_; }

 private:
  /// What a full scan of `key`'s probe chain found.
  struct ChainScan {
    int match = -1;         ///< slot verifiably holding `key` (-1: none)
    std::string match_blob; ///< its payload when match >= 0
    int first_free = -1;    ///< first missing slot
    int first_corrupt = -1; ///< first undecodable slot
    Status corrupt_status;  ///< why, when first_corrupt >= 0
    int first_unreadable = -1;  ///< first existing-but-unreadable slot
    Status unreadable_status;   ///< why, when first_unreadable >= 0
  };

  /// Path of the probe-th candidate file for `key`.
  std::string CandidatePath(const std::string& key, int probe) const;
  /// `verify_payload` = full read + checksum (Get, which trusts the
  /// payload); false = key-only header reads (Put/Erase slot selection).
  ChainScan ScanChain(const std::string& key, bool verify_payload) const;

  /// One lock over the whole store: chain scans and the atomic
  /// write-temp-then-rename publish must not interleave across threads
  /// (two writers could pick the same free slot, a reader could observe a
  /// half-swept GC as a hole and double-write a key).
  mutable std::mutex mu_;
  std::string directory_;
  Status init_;  ///< directory creation outcome, reported on first use
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_SPILL_STORE_H_
