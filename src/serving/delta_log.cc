#include "serving/delta_log.h"

#include <utility>

namespace fkc {
namespace serving {

DeltaLog::DeltaLog() : DeltaLog(Options()) {}

DeltaLog::DeltaLog(Options options) : options_(options) {}

Result<DeltaLog::CaptureStats> DeltaLog::Capture(ShardManager* manager) {
  // The log's own mutex guards only log state; the manager calls below are
  // epoch snapshots with their own locking, so holding mu_ across them
  // never blocks the manager's ingest or query paths (they take no lock of
  // ours) and cannot invert against the manager's fleet/shard order.
  std::lock_guard<std::mutex> lock(mu_);
  CaptureStats stats;

  // Over-budget chains re-base instead of appending: replay cost and log
  // size stay bounded no matter how long the fleet runs.
  const bool rebase =
      !has_base_ ||
      static_cast<int64_t>(chain_.size()) >= options_.max_chain_length ||
      chain_bytes_ >= options_.max_chain_bytes;
  if (rebase) {
    auto full = manager->CheckpointAll();
    if (!full.ok()) return full.status();
    if (has_base_) ++rebases_;
    base_ = std::move(full).value();
    has_base_ = true;
    chain_.clear();
    chain_bytes_ = 0;
    stats.rebased = true;
    stats.bytes = base_.size();
  } else {
    auto delta = manager->CheckpointDelta();
    if (!delta.ok()) return delta.status();
    stats.bytes = delta.value().size();
    chain_bytes_ += static_cast<int64_t>(delta.value().size());
    chain_.push_back(std::move(delta).value());
  }
  stats.chain_length = chain_.size();
  return stats;
}

Result<ShardManager> DeltaLog::Replay(
    const Metric* metric, const FairCenterSolver* solver, int num_threads,
    int64_t max_live_shards, std::shared_ptr<SpillStore> spill_store) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_base_) {
    return Status::FailedPrecondition("delta log has no base checkpoint yet");
  }
  auto manager =
      ShardManager::Restore(base_, metric, solver, num_threads,
                            max_live_shards, std::move(spill_store));
  if (!manager.ok()) return manager.status();
  for (const std::string& delta : chain_) {
    FKC_RETURN_IF_ERROR(manager.value().ApplyDelta(delta));
  }
  return manager;
}

bool DeltaLog::has_base() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_base_;
}

size_t DeltaLog::base_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_.size();
}

size_t DeltaLog::chain_length() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_.size();
}

int64_t DeltaLog::chain_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_bytes_;
}

int64_t DeltaLog::rebases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebases_;
}

}  // namespace serving
}  // namespace fkc
