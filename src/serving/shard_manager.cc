#include "serving/shard_manager.h"

#include <cmath>
#include <condition_variable>
#include <sstream>
#include <thread>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/options_io.h"
#include "serving/delta_log.h"

namespace fkc {
namespace serving {
namespace {

// Full-fleet formats: v1 (PR 2, template + constraint + shards) is still
// accepted by Restore; v2 adds the per-tenant override table. Deltas are
// v2-only.
constexpr const char* kMagicV1 = "fkc-shards-v1";
constexpr const char* kMagicV2 = "fkc-shards-v2";
constexpr const char* kDeltaMagic = "fkc-shards-delta-v2";

// Shard keys travel as length-prefixed raw segments in the fleet checkpoint
// (CheckpointReader::NextRaw); this cap keeps write and read sides agreeing
// on what a plausible key is, so CheckpointAll can never emit a blob that
// Restore rejects. Oversized keys are rejected at ingest with a Status —
// one tenant's garbage must never abort the fleet.
constexpr size_t kMaxKeyBytes = 1u << 20;

// Upper bounds on checkpointed table sizes, rejected before any allocation.
constexpr int64_t kMaxShards = 1 << 24;

// Reads the v2 "<count> { <raw key> <options> }*" override table.
Status ReadOverrides(CheckpointReader* cursor,
                     std::map<std::string, SlidingWindowOptions>* out) {
  int64_t count = 0;
  FKC_RETURN_IF_ERROR(cursor->NextInt(&count));
  // Every entry occupies well over one byte, so the remaining blob length
  // bounds any honest count.
  if (count < 0 || count > kMaxShards ||
      static_cast<size_t>(count) > cursor->Remaining()) {
    return Status::InvalidArgument("implausible override count in checkpoint");
  }
  out->clear();
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    SlidingWindowOptions options;
    FKC_RETURN_IF_ERROR(cursor->NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(cursor, &options));
    options.num_threads = 1;
    if (!out->emplace(std::move(key), options).second) {
      return Status::InvalidArgument("duplicate override key in checkpoint");
    }
  }
  return Status::OK();
}

void WriteOverrides(std::ostringstream* out,
                    const std::map<std::string, SlidingWindowOptions>& map) {
  *out << map.size() << ' ';
  for (const auto& [key, options] : map) {
    WriteCheckpointRaw(out, key);
    WriteSlidingWindowOptions(out, options);
  }
}

}  // namespace

/// Timer-thread state. The condition variable makes StopMaintenance prompt:
/// the loop sleeps on it, not on a bare sleep_for.
struct ShardManager::MaintenanceState {
  MaintenanceOptions options;
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
};

ShardManager::ShardManager(ShardManagerOptions options,
                           ColorConstraint constraint, const Metric* metric,
                           const FairCenterSolver* solver)
    : options_(std::move(options)),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver),
      mu_(std::make_unique<std::mutex>()),
      maintenance_admin_mu_(std::make_unique<std::mutex>()) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  // Shards run sequentially inside their manager-pool task; nesting pools
  // would oversubscribe and buys nothing (shard fan-out already covers the
  // cores).
  options_.window.num_threads = 1;
  if (options_.spill_store == nullptr) {
    options_.spill_store = std::make_shared<InMemorySpillStore>();
  }
}

ShardManager::~ShardManager() { StopMaintenance(); }

ShardManager::ShardManager(ShardManager&& other) noexcept
    : options_(std::move(other.options_)),
      constraint_(std::move(other.constraint_)),
      metric_(other.metric_),
      solver_(other.solver_),
      mu_(std::move(other.mu_)),
      overrides_(std::move(other.overrides_)),
      shards_(std::move(other.shards_)),
      live_count_(other.live_count_),
      live_lru_(std::move(other.live_lru_)),
      pool_(std::move(other.pool_)),
      pool_threads_(other.pool_threads_),
      maintenance_admin_mu_(std::move(other.maintenance_admin_mu_)),
      maintenance_(std::move(other.maintenance_)),
      maintenance_ticks_(other.maintenance_ticks_.load()),
      clock_(other.clock_),
      evictions_(other.evictions_),
      rehydrations_(other.rehydrations_) {
  // Moving a manager whose maintenance thread is running is unsupported
  // (the thread would keep the old `this`); Restore/Replay outputs — the
  // only places managers are moved — never have one.
  FKC_CHECK(maintenance_ == nullptr || !maintenance_->thread.joinable());
}

ShardManager& ShardManager::operator=(ShardManager&& other) noexcept {
  if (this == &other) return *this;
  StopMaintenance();  // join our thread before its state is replaced
  options_ = std::move(other.options_);
  constraint_ = std::move(other.constraint_);
  metric_ = other.metric_;
  solver_ = other.solver_;
  mu_ = std::move(other.mu_);
  overrides_ = std::move(other.overrides_);
  shards_ = std::move(other.shards_);
  live_count_ = other.live_count_;
  live_lru_ = std::move(other.live_lru_);
  pool_ = std::move(other.pool_);
  pool_threads_ = other.pool_threads_;
  maintenance_admin_mu_ = std::move(other.maintenance_admin_mu_);
  maintenance_ = std::move(other.maintenance_);
  maintenance_ticks_.store(other.maintenance_ticks_.load());
  clock_ = other.clock_;
  evictions_ = other.evictions_;
  rehydrations_ = other.rehydrations_;
  FKC_CHECK(maintenance_ == nullptr || !maintenance_->thread.joinable());
  return *this;
}

ThreadPool* ShardManager::Pool() {
  if (options_.num_threads == 1) return nullptr;
  if (pool_threads_ < 0) {
    // Resolve the effective size before constructing: num_threads = 0 on a
    // single-core host resolves to 1, and building a ThreadPool just to
    // discover that would park an idle pool for the manager's lifetime.
    pool_threads_ = ThreadPool::ResolveThreadCount(options_.num_threads);
  }
  if (pool_threads_ <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(pool_threads_);
  }
  return pool_.get();
}

bool ShardManager::IsDirty(const Shard& shard) const {
  return shard.live ? shard.live->state_epoch() != shard.clean_epoch
                    : shard.spill_dirty;
}

Status ShardManager::ValidateArrival(const std::string& key, const Point& p,
                                     int64_t pinned_dim) const {
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument(
        StrFormat("shard key of %zu bytes exceeds the checkpointable limit",
                  key.size()));
  }
  // The coordinate pools CHECK-abort on empty points and on dimension
  // changes while points are stored, and the checkpoint reader rejects
  // non-finite coordinates — so any of these, once ingested, would either
  // kill the process or make CheckpointAll emit a blob Restore refuses
  // (and a spilled shard permanently fail rehydration).
  if (p.coords.empty()) {
    return Status::InvalidArgument("arrival carries no coordinates");
  }
  for (double x : p.coords) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("non-finite coordinate in arrival");
    }
  }
  if (pinned_dim >= 0 && static_cast<int64_t>(p.dimension()) != pinned_dim) {
    return Status::InvalidArgument(StrFormat(
        "%zu-dimensional arrival for a shard pinned to %lld dimensions",
        p.dimension(), static_cast<long long>(pinned_dim)));
  }
  if (p.color < 0 || p.color >= constraint_.ell()) {
    return Status::InvalidArgument(
        StrFormat("color %d outside the constraint's [0, %d) range", p.color,
                  constraint_.ell()));
  }
  // In-range colors with a zero cap are representable in checkpoints but
  // can never host a center; GuessStructure::Update CHECK-aborts on them.
  if (constraint_.cap(p.color) < 1) {
    return Status::InvalidArgument(
        StrFormat("color %d has a zero cap and cannot be served", p.color));
  }
  return Status::OK();
}

int64_t ShardManager::PinnedDimension(const std::string& key) const {
  auto it = shards_.find(key);
  return it == shards_.end() ? -1 : it->second.dim;
}

SlidingWindowOptions ShardManager::OptionsForKey(const std::string& key) const {
  auto it = overrides_.find(key);
  SlidingWindowOptions options =
      it == overrides_.end() ? options_.window : it->second;
  options.num_threads = 1;
  return options;
}

Status ShardManager::RehydrateShard(const std::string& key, Shard* shard) {
  auto blob = options_.spill_store->Get(key);
  if (!blob.ok()) return blob.status();
  auto window =
      FairCenterSlidingWindow::DeserializeState(blob.value(), metric_,
                                                solver_);
  if (!window.ok()) return window.status();
  // Same forged-blob guards as Restore/ApplyDelta: with a durable backend
  // the bytes come from a directory two fleets could share (or anyone
  // could write — the FNV checksum is integrity, not authentication). A
  // shard under a different constraint would pass ValidateArrival yet
  // CHECK-abort in StampArrival on its next ingest; a different dimension
  // would feed mismatched points into the coordinate pools.
  if (window.value().constraint().caps() != constraint_.caps()) {
    return Status::InvalidArgument(
        "spilled shard's constraint does not match the fleet constraint");
  }
  if (shard->dim >= 0 && window.value().dimension() >= 0 &&
      window.value().dimension() != shard->dim) {
    return Status::InvalidArgument(
        "spilled shard's dimension does not match its pinned dimension");
  }
  shard->live = std::make_unique<FairCenterSlidingWindow>(
      std::move(window).value());
  if (shard->live->dimension() >= 0) shard->dim = shard->live->dimension();
  // A fresh deserialization restarts the epoch counter at 0; a clean spill
  // therefore rehydrates clean, a dirty one stays dirty via the sentinel.
  shard->clean_epoch = shard->spill_dirty ? kNeverCheckpointed : 0;
  shard->spill_dirty = false;
  // Best-effort: a failed erase only leaves a stale store entry behind —
  // never read again (the shard is live now) and swept by the next GC.
  options_.spill_store->Erase(key);
  ++live_count_;
  ++rehydrations_;
  return Status::OK();
}

void ShardManager::TouchLive(const std::string& key, Shard* shard,
                             int64_t touch) {
  // The erase is a no-op for a shard that just became live (its old
  // last_touch was removed from the index when it spilled, or never
  // inserted for a brand-new shard).
  live_lru_.erase({shard->last_touch, key});
  shard->last_touch = touch;
  live_lru_.insert({touch, key});
}

Status ShardManager::SpillShard(const std::string& key, Shard* shard) {
  const bool dirty = IsDirty(*shard);
  // Put before dropping the window: a failing backend must leave the shard
  // live and the fleet lossless.
  FKC_RETURN_IF_ERROR(
      options_.spill_store->Put(key, shard->live->SerializeState()));
  shard->spill_dirty = dirty;
  shard->live.reset();
  shard->clean_epoch = kNeverCheckpointed;
  live_lru_.erase({shard->last_touch, key});
  --live_count_;
  ++evictions_;
  return Status::OK();
}

void ShardManager::EnforceLiveCap(const std::string* exclude) {
  if (options_.max_live_shards <= 0) return;
  while (live_count_ > static_cast<size_t>(options_.max_live_shards)) {
    // The index orders by (last_touch, key), so begin() is exactly the
    // old linear scan's deterministic victim: least recently touched,
    // ties broken by smaller key.
    auto victim = live_lru_.begin();
    if (victim == live_lru_.end()) return;
    if (exclude != nullptr && victim->second == *exclude) {
      if (++victim == live_lru_.end()) return;  // only the excluded is live
    }
    if (!SpillShard(victim->second, &shards_.find(victim->second)->second)
             .ok()) {
      // Spill backend down: the victim stays live and the cap is enforced
      // best-effort until the backend recovers. Nothing is lost.
      return;
    }
  }
}

Result<ShardManager::Shard*> ShardManager::TouchShard(const std::string& key,
                                                      bool create_missing,
                                                      bool enforce_cap) {
  auto it = shards_.find(key);
  if (it == shards_.end()) {
    if (!create_missing) {
      return Status::NotFound("no shard for key '" + key + "'");
    }
    Shard shard;
    shard.live = std::make_unique<FairCenterSlidingWindow>(
        OptionsForKey(key), constraint_, metric_, solver_);
    ++live_count_;
    it = shards_.emplace(key, std::move(shard)).first;
  } else if (!it->second.live) {
    FKC_RETURN_IF_ERROR(RehydrateShard(it->first, &it->second));
  }
  TouchLive(it->first, &it->second, clock_);
  if (enforce_cap) EnforceLiveCap(&key);
  return &it->second;
}

Status ShardManager::Ingest(const std::string& key, Point p) {
  std::lock_guard<std::mutex> lock(*mu_);
  FKC_RETURN_IF_ERROR(ValidateArrival(key, p, PinnedDimension(key)));
  ++clock_;
  auto shard = TouchShard(key, /*create_missing=*/true, /*enforce_cap=*/true);
  if (!shard.ok()) return shard.status();
  shard.value()->dim = static_cast<int64_t>(p.dimension());
  shard.value()->live->Update(std::move(p));
  return Status::OK();
}

Status ShardManager::IngestBatch(std::vector<KeyedPoint> batch) {
  if (batch.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(*mu_);

  // Group by key, preserving per-key arrival order (the only order that
  // matters: shards share no state, so cross-key interleaving is
  // unobservable). Invalid arrivals are dropped here, one by one — the
  // valid rest of the batch is consumed regardless.
  struct Group {
    std::vector<Point> points;
    int64_t last_clock = 0;  ///< manager clock at the group's last arrival
    int64_t dim = -1;        ///< dimension pinned by the first accepted point
    FairCenterSlidingWindow* window = nullptr;
  };
  std::map<std::string, Group> groups;
  int64_t dropped = 0;
  Status first_error = Status::OK();
  for (KeyedPoint& kp : batch) {
    // For a key already accepted earlier in this batch the group carries
    // the pinned dimension (a brand-new shard has none on record yet).
    auto git = groups.find(kp.key);
    const int64_t pinned =
        git != groups.end() ? git->second.dim : PinnedDimension(kp.key);
    Status status = ValidateArrival(kp.key, kp.point, pinned);
    if (!status.ok()) {
      ++dropped;
      if (first_error.ok()) first_error = std::move(status);
      continue;
    }
    if (git == groups.end()) git = groups.try_emplace(kp.key).first;
    Group& group = git->second;
    group.dim = static_cast<int64_t>(kp.point.dimension());
    group.points.push_back(std::move(kp.point));
    group.last_clock = ++clock_;
  }

  // Create or rehydrate every touched shard up front: the map must not
  // mutate under the fan-out, and LRU spills must not run while group
  // pointers are outstanding — the cap is enforced once, after the batch.
  for (auto& [key, group] : groups) {
    auto shard = TouchShard(key, /*create_missing=*/true,
                            /*enforce_cap=*/false);
    if (!shard.ok()) {
      dropped += static_cast<int64_t>(group.points.size());
      if (first_error.ok()) first_error = shard.status();
      continue;
    }
    shard.value()->dim = group.dim;
    group.window = shard.value()->live.get();
  }

  std::vector<std::pair<FairCenterSlidingWindow*, std::vector<Point>*>> work;
  work.reserve(groups.size());
  for (auto& [key, group] : groups) {
    if (group.window != nullptr) work.emplace_back(group.window, &group.points);
  }

  ThreadPool* pool = Pool();
  if (pool == nullptr || work.size() < 2) {
    for (auto& [shard, points] : work) {
      shard->UpdateBatch(std::move(*points));
    }
  } else {
    pool->ParallelFor(static_cast<int64_t>(work.size()), [&](int64_t i) {
      work[i].first->UpdateBatch(std::move(*work[i].second));
    });
  }
  // Refresh last_touch to each group's final arrival (matches the per-point
  // Ingest path bit for bit), then apply the cap.
  for (auto& [key, group] : groups) {
    if (group.window == nullptr) continue;
    TouchLive(key, &shards_.find(key)->second, group.last_clock);
  }
  EnforceLiveCap(nullptr);

  if (dropped > 0) {
    return Status::InvalidArgument(
        StrFormat("dropped %lld of %lld arrivals; first error: %s",
                  static_cast<long long>(dropped),
                  static_cast<long long>(batch.size()),
                  first_error.message().c_str()));
  }
  return Status::OK();
}

Status ShardManager::SetTenantOptions(const std::string& key,
                                      SlidingWindowOptions options) {
  std::lock_guard<std::mutex> lock(*mu_);
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument("tenant key exceeds the size limit");
  }
  FKC_RETURN_IF_ERROR(ValidateSlidingWindowOptions(options));
  if (shards_.count(key) != 0) {
    return Status::FailedPrecondition(
        "shard '" + key + "' already exists; options are fixed at creation");
  }
  options.num_threads = 1;
  if (SameCheckpointedOptions(options, options_.window)) {
    overrides_.erase(key);  // identical to the template: nothing to store
  } else {
    overrides_[key] = options;
  }
  return Status::OK();
}

const SlidingWindowOptions* ShardManager::TenantOptions(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = overrides_.find(key);
  return it == overrides_.end() ? nullptr : &it->second;
}

Result<FairCenterSolution> ShardManager::Query(const std::string& key,
                                               QueryStats* stats) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto shard = TouchShard(key, /*create_missing=*/false, /*enforce_cap=*/true);
  if (!shard.ok()) return shard.status();
  return shard.value()->live->Query(stats);
}

std::vector<ShardAnswer> ShardManager::QueryAll() {
  std::lock_guard<std::mutex> lock(*mu_);
  // Live shards answer in place; spilled shards answer from an ephemeral
  // deserialization so a fleet-wide query round does not defeat eviction.
  // Each spilled task fetches its own blob inside the fan-out (behind a
  // mutex — the store is not thread-safe) and drops it with the task:
  // fetching the whole fleet's blobs up front would transiently hold
  // every spilled shard in memory, the exact condition a durable store
  // plus live-shard cap exists to prevent. Tasks are independent, so the
  // fan-out is deterministic either way.
  struct Task {
    FairCenterSlidingWindow* live = nullptr;  ///< null: spilled, use key
    const std::string* key = nullptr;
  };
  std::vector<ShardAnswer> answers;
  std::vector<Task> tasks;
  answers.reserve(shards_.size());
  tasks.reserve(shards_.size());
  for (auto& [key, shard] : shards_) {  // ascending key order
    ShardAnswer answer;
    answer.key = key;
    answers.push_back(std::move(answer));
    tasks.push_back(shard.live ? Task{shard.live.get(), nullptr}
                               : Task{nullptr, &key});
  }

  std::mutex store_mu;
  auto run_one = [&](int64_t i) {
    if (tasks[i].live != nullptr) {
      answers[i].solution = tasks[i].live->Query(&answers[i].stats);
      return;
    }
    Result<std::string> blob = [&]() -> Result<std::string> {
      std::lock_guard<std::mutex> store_lock(store_mu);
      return options_.spill_store->Get(*tasks[i].key);
    }();
    if (!blob.ok()) {
      answers[i].solution = blob.status();
      return;
    }
    auto window = FairCenterSlidingWindow::DeserializeState(blob.value(),
                                                            metric_, solver_);
    blob = std::string();  // the deserialized window supersedes the bytes
    if (!window.ok()) {
      answers[i].solution = window.status();
      return;
    }
    answers[i].solution = window.value().Query(&answers[i].stats);
  };
  ThreadPool* pool = Pool();
  if (pool == nullptr || tasks.size() < 2) {
    for (size_t i = 0; i < tasks.size(); ++i) run_one(static_cast<int64_t>(i));
  } else {
    pool->ParallelFor(static_cast<int64_t>(tasks.size()), run_one);
  }
  return answers;
}

int64_t ShardManager::EvictIdleLocked(int64_t idle_ttl, Status* spill_status) {
  if (spill_status != nullptr) *spill_status = Status::OK();
  if (idle_ttl < 0) return 0;
  int64_t evicted = 0;
  // The LRU index orders live shards by last_touch, so the idle ones are
  // exactly its prefix — O(victims * log n), not a walk over the whole
  // (mostly spilled) fleet.
  while (!live_lru_.empty()) {
    const auto victim = live_lru_.begin();
    if (clock_ - victim->first <= idle_ttl) break;
    const Status spilled =
        SpillShard(victim->second, &shards_.find(victim->second)->second);
    if (!spilled.ok()) {
      // Backend down: stop the sweep, leave the remaining shards live.
      if (spill_status != nullptr) *spill_status = spilled;
      break;
    }
    ++evicted;
  }
  return evicted;
}

int64_t ShardManager::EvictIdle(int64_t idle_ttl, Status* spill_status) {
  std::lock_guard<std::mutex> lock(*mu_);
  return EvictIdleLocked(idle_ttl, spill_status);
}

Result<std::string> ShardManager::CheckpointAll() {
  std::lock_guard<std::mutex> lock(*mu_);
  std::ostringstream out;
  out << kMagicV2 << ' ';

  // The window template (needed to spawn shards for keys first seen after a
  // restore), the constraint, and the override table. num_threads,
  // max_live_shards, and the spill store are execution/resource knobs and
  // are deliberately excluded, like in the core checkpoint.
  WriteSlidingWindowOptions(&out, options_.window);
  WriteColorCaps(&out, constraint_);
  WriteOverrides(&out, overrides_);

  // Every shard: length-prefixed key, length-prefixed core checkpoint. A
  // spilled shard's state is its spill blob, verbatim. Clean marks are
  // staged and committed only after every blob is in hand — a failing
  // spill read must not leave half the fleet marked clean for a
  // checkpoint that never existed.
  std::vector<std::pair<Shard*, int64_t>> clean_marks;
  clean_marks.reserve(shards_.size());
  out << shards_.size() << ' ';
  for (auto& [key, shard] : shards_) {
    WriteCheckpointRaw(&out, key);
    if (shard.live) {
      WriteCheckpointRaw(&out, shard.live->SerializeState());
      clean_marks.emplace_back(&shard, shard.live->state_epoch());
    } else {
      auto blob = options_.spill_store->Get(key);
      if (!blob.ok()) return blob.status();
      WriteCheckpointRaw(&out, blob.value());
      clean_marks.emplace_back(&shard, kNeverCheckpointed);
    }
  }
  for (auto& [shard, epoch] : clean_marks) {
    if (shard->live) {
      shard->clean_epoch = epoch;
    } else {
      shard->spill_dirty = false;
    }
  }
  return out.str();
}

size_t ShardManager::DirtyCountLocked() const {
  size_t dirty = 0;
  for (const auto& [key, shard] : shards_) {
    if (IsDirty(shard)) ++dirty;
  }
  return dirty;
}

size_t ShardManager::dirty_shard_count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return DirtyCountLocked();
}

Result<std::string> ShardManager::CheckpointDelta() {
  std::lock_guard<std::mutex> lock(*mu_);
  std::ostringstream out;
  out << kDeltaMagic << ' ';
  // Constraint (so the receiver can verify compatibility) and the override
  // table (tiny, and replacing it wholesale keeps deltas self-contained).
  WriteColorCaps(&out, constraint_);
  WriteOverrides(&out, overrides_);

  // Same staged clean-marking as CheckpointAll: all blobs first, marks
  // after.
  std::vector<std::pair<Shard*, int64_t>> clean_marks;
  out << DirtyCountLocked() << ' ';
  for (auto& [key, shard] : shards_) {
    if (!IsDirty(shard)) continue;
    WriteCheckpointRaw(&out, key);
    if (shard.live) {
      WriteCheckpointRaw(&out, shard.live->SerializeState());
      clean_marks.emplace_back(&shard, shard.live->state_epoch());
    } else {
      auto blob = options_.spill_store->Get(key);
      if (!blob.ok()) return blob.status();
      WriteCheckpointRaw(&out, blob.value());
      clean_marks.emplace_back(&shard, kNeverCheckpointed);
    }
  }
  for (auto& [shard, epoch] : clean_marks) {
    if (shard->live) {
      shard->clean_epoch = epoch;
    } else {
      shard->spill_dirty = false;
    }
  }
  return out.str();
}

Status ShardManager::ApplyDelta(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(*mu_);
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  if (magic != kDeltaMagic) {
    return Status::InvalidArgument("not an fkc shard delta (bad magic '" +
                                   magic + "')");
  }

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&cursor, &caps));
  if (caps != constraint_.caps()) {
    return Status::InvalidArgument(
        "delta constraint does not match this manager's");
  }
  std::map<std::string, SlidingWindowOptions> overrides;
  FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &overrides));

  // Stage every shard before touching the manager: a truncated or corrupt
  // delta must leave the fleet exactly as it was.
  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in delta");
  }
  // No reserve from the blob-supplied count: growth is paid only for
  // entries that actually parse.
  std::vector<std::pair<std::string, FairCenterSlidingWindow>> staged;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric_, solver_);
    if (!window.ok()) return window.status();
    // An interior-corrupt or forged shard blob under a different constraint
    // would restore fine and then CHECK-abort on its next in-range ingest
    // (StampArrival checks color against the shard's own ell).
    if (window.value().constraint().caps() != constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint in delta");
    }
    staged.emplace_back(std::move(key), std::move(window).value());
  }

  overrides_ = std::move(overrides);
  for (auto& [key, window] : staged) {
    Shard& shard = shards_[key];
    const bool was_live = shard.live != nullptr;
    if (!was_live) {
      ++live_count_;
      // A previously spilled shard's store entry is superseded; drop it
      // (best-effort — a stale entry is never read and GC sweeps it).
      options_.spill_store->Erase(key);
    }
    shard.live =
        std::make_unique<FairCenterSlidingWindow>(std::move(window));
    shard.spill_dirty = false;
    shard.dim = shard.live->dimension();
    // The shard now matches the leader's checkpointed state exactly.
    shard.clean_epoch = shard.live->state_epoch();
    TouchLive(key, &shard, clock_);
  }
  EnforceLiveCap(nullptr);
  return Status::OK();
}

Result<ShardManager> ShardManager::Restore(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver, int num_threads, int64_t max_live_shards,
    std::shared_ptr<SpillStore> spill_store) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagicV1) {
    return Status::InvalidArgument("not an fkc shard checkpoint (bad magic '" +
                                   magic + "')");
  }

  ShardManagerOptions options;
  options.num_threads = num_threads;
  options.max_live_shards = max_live_shards;
  options.spill_store = std::move(spill_store);
  // ReadSlidingWindowOptions validates what it parses (window size, delta,
  // beta, variant, slack exponents, range bounds): a corrupted or
  // adversarial blob must fail here, not abort in a constructor CHECK.
  FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(&cursor, &options.window));

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&cursor, &caps));

  ShardManager manager(options, ColorConstraint(std::move(caps)), metric,
                       solver);
  if (v2) {
    FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &manager.overrides_));
  }

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in checkpoint");
  }
  // Verbatim blob segments of the currently-live shards, so enforcing the
  // cap mid-restore hands the exact bytes just read to the spill store
  // instead of re-serializing a window that was deserialized moments ago.
  // Holds at most max_live_shards entries at any time.
  std::map<std::string, std::string> verbatim;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric, solver);
    if (!window.ok()) return window.status();
    // Same forged-blob guard as ApplyDelta: a shard under a different
    // constraint would pass the manager's ValidateArrival yet CHECK-abort
    // inside the window on the next ingest.
    if (window.value().constraint().caps() != manager.constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint");
    }
    Shard shard;
    shard.live = std::make_unique<FairCenterSlidingWindow>(
        std::move(window).value());
    shard.dim = shard.live->dimension();
    shard.clean_epoch = shard.live->state_epoch();  // restored = checkpointed
    auto [pos, inserted] =
        manager.shards_.emplace(std::move(key), std::move(shard));
    if (!inserted) {
      return Status::InvalidArgument("duplicate shard key in checkpoint");
    }
    manager.live_lru_.insert({pos->second.last_touch, pos->first});
    ++manager.live_count_;
    if (max_live_shards <= 0) continue;
    verbatim.emplace(pos->first, std::move(blob));
    // Enforce the cap as shards stream in, not after: a fleet far larger
    // than max_live_shards must never be fully resident at once — that is
    // the exact condition the cap exists to prevent. All last_touch values
    // are equal here, so the surviving set (the largest keys) matches what
    // one sweep at the end would keep.
    while (manager.live_count_ > static_cast<size_t>(max_live_shards)) {
      const auto victim = manager.live_lru_.begin();
      Shard& victim_shard = manager.shards_.find(victim->second)->second;
      auto segment = verbatim.find(victim->second);
      // A spill backend that cannot even absorb the restore is fatal to
      // the restore, not the process.
      FKC_RETURN_IF_ERROR(manager.options_.spill_store->Put(
          victim->second, std::move(segment->second)));
      verbatim.erase(segment);
      victim_shard.live.reset();
      victim_shard.spill_dirty = false;  // restored = checkpointed = clean
      victim_shard.clean_epoch = kNeverCheckpointed;
      manager.live_lru_.erase(victim);
      --manager.live_count_;
      ++manager.evictions_;
    }
  }
  return manager;
}

Status ShardManager::StartMaintenance(MaintenanceOptions options) {
  if (options.cadence <= std::chrono::milliseconds::zero()) {
    return Status::InvalidArgument("maintenance cadence must be positive");
  }
  std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
  if (maintenance_ != nullptr) {
    return Status::FailedPrecondition("maintenance thread already running");
  }
  maintenance_ = std::make_unique<MaintenanceState>();
  maintenance_->options = std::move(options);
  maintenance_->thread = std::thread(
      [this, state = maintenance_.get()] { MaintenanceLoop(state); });
  return Status::OK();
}

void ShardManager::StopMaintenance() {
  if (maintenance_admin_mu_ == nullptr) return;  // moved-from shell
  // Detach the state from the manager under the admin lock, then signal
  // and join WITHOUT it: the maintenance thread may itself be inside a
  // re-entrant StopMaintenance (an on_tick hook) waiting on the admin
  // mutex, and joining while holding it would deadlock both sides.
  std::unique_ptr<MaintenanceState> state;
  {
    std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
    if (maintenance_ == nullptr) return;
    if (maintenance_->thread.get_id() == std::this_thread::get_id()) {
      // Called from the maintenance thread (an on_tick hook): joining
      // oneself is impossible. Signal the loop to exit after this tick;
      // the thread stays attached until another thread's Stop (or the
      // destructor) reaps it.
      std::lock_guard<std::mutex> lock(maintenance_->mu);
      maintenance_->stop = true;
      return;
    }
    state = std::move(maintenance_);
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->stop = true;
  }
  state->cv.notify_all();
  if (state->thread.joinable()) state->thread.join();
}

bool ShardManager::maintenance_running() const {
  std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
  return maintenance_ != nullptr;
}

void ShardManager::MaintenanceLoop(MaintenanceState* state) {
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    // wait_for returns true only when stop was signalled — a prompt,
    // race-free shutdown even when StopMaintenance lands mid-sleep.
    if (state->cv.wait_for(lock, state->options.cadence,
                           [state] { return state->stop; })) {
      return;
    }
    lock.unlock();
    RunMaintenanceTick(state->options);
    lock.lock();
  }
}

MaintenanceTickReport ShardManager::RunMaintenanceTick(
    const MaintenanceOptions& options) {
  MaintenanceTickReport report;
  report.tick = maintenance_ticks_.fetch_add(1) + 1;

  if (options.idle_ttl >= 0) {
    Status spill_status;
    report.evicted = EvictIdle(options.idle_ttl, &spill_status);
    if (report.status.ok()) report.status = spill_status;
  }

  if (options.delta_log != nullptr && dirty_shard_count() > 0) {
    auto captured = options.delta_log->Capture(this);
    if (captured.ok()) {
      report.capture_bytes = captured.value().bytes;
      report.rebased = captured.value().rebased;
    } else if (report.status.ok()) {
      report.status = captured.status();
    }
  }

  if (options.gc_every > 0 && report.tick % options.gc_every == 0) {
    auto removed = GarbageCollectSpill();
    if (removed.ok()) {
      report.gc_removed = removed.value();
    } else if (report.status.ok()) {
      report.status = removed.status();
    }
  }

  if (options.on_tick) options.on_tick(report);
  return report;
}

Result<int64_t> ShardManager::GarbageCollectSpill() {
  std::lock_guard<std::mutex> lock(*mu_);
  std::set<std::string> spilled;
  for (const auto& [key, shard] : shards_) {
    if (!shard.live) spilled.insert(key);
  }
  return options_.spill_store->GarbageCollect(spilled);
}

std::vector<std::string> ShardManager::Keys() const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::vector<std::string> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) keys.push_back(key);
  return keys;
}

FairCenterSlidingWindow* ShardManager::shard(const std::string& key) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto result = TouchShard(key, /*create_missing=*/false,
                           /*enforce_cap=*/true);
  return result.ok() ? result.value()->live.get() : nullptr;
}

const FairCenterSlidingWindow* ShardManager::shard(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : it->second.live.get();
}

size_t ShardManager::shard_count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return shards_.size();
}

size_t ShardManager::live_shard_count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return live_count_;
}

size_t ShardManager::spilled_shard_count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return shards_.size() - live_count_;
}

int64_t ShardManager::clock() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return clock_;
}

int64_t ShardManager::evictions() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return evictions_;
}

int64_t ShardManager::rehydrations() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return rehydrations_;
}

MemoryStats ShardManager::TotalMemory() const {
  std::lock_guard<std::mutex> lock(*mu_);
  MemoryStats stats;
  for (const auto& [key, shard] : shards_) {
    if (shard.live) stats += shard.live->Memory();
  }
  return stats;
}

}  // namespace serving
}  // namespace fkc
