#include "serving/shard_manager.h"

#include <cmath>
#include <condition_variable>
#include <sstream>
#include <thread>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/options_io.h"
#include "serving/delta_log.h"

namespace fkc {
namespace serving {
namespace {

// Full-fleet formats: v1 (PR 2, template + constraint + shards) is still
// accepted by Restore; v2 adds the per-tenant override table. Deltas are
// v2-only.
constexpr const char* kMagicV1 = "fkc-shards-v1";
constexpr const char* kMagicV2 = "fkc-shards-v2";
constexpr const char* kDeltaMagic = "fkc-shards-delta-v2";

// Shard keys travel as length-prefixed raw segments in the fleet checkpoint
// (CheckpointReader::NextRaw); this cap keeps write and read sides agreeing
// on what a plausible key is, so CheckpointAll can never emit a blob that
// Restore rejects. Oversized keys are rejected at ingest with a Status —
// one tenant's garbage must never abort the fleet.
constexpr size_t kMaxKeyBytes = 1u << 20;

// Upper bounds on checkpointed table sizes, rejected before any allocation.
constexpr int64_t kMaxShards = 1 << 24;

// Reads the v2 "<count> { <raw key> <options> }*" override table.
Status ReadOverrides(CheckpointReader* cursor,
                     std::map<std::string, SlidingWindowOptions>* out) {
  int64_t count = 0;
  FKC_RETURN_IF_ERROR(cursor->NextInt(&count));
  // Every entry occupies well over one byte, so the remaining blob length
  // bounds any honest count.
  if (count < 0 || count > kMaxShards ||
      static_cast<size_t>(count) > cursor->Remaining()) {
    return Status::InvalidArgument("implausible override count in checkpoint");
  }
  out->clear();
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    SlidingWindowOptions options;
    FKC_RETURN_IF_ERROR(cursor->NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(cursor, &options));
    options.num_threads = 1;
    if (!out->emplace(std::move(key), options).second) {
      return Status::InvalidArgument("duplicate override key in checkpoint");
    }
  }
  return Status::OK();
}

void WriteOverrides(std::ostringstream* out,
                    const std::map<std::string, SlidingWindowOptions>& map) {
  *out << map.size() << ' ';
  for (const auto& [key, options] : map) {
    WriteCheckpointRaw(out, key);
    WriteSlidingWindowOptions(out, options);
  }
}

}  // namespace

/// Timer-thread state. The condition variable makes StopMaintenance prompt:
/// the loop sleeps on it, not on a bare sleep_for.
struct ShardManager::MaintenanceState {
  MaintenanceOptions options;
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  /// Set (under mu) by the loop as its last act. Distinguishes a finished
  /// thread awaiting its join (safe to reap, even from StartMaintenance)
  /// from a loop still executing ticks.
  bool exited = false;
};

/// Unpins an epoch snapshot on scope exit, whatever the exit path (normal
/// return, early error return) — a leaked pin would block that shard's
/// eviction forever.
class ShardManager::FleetPin {
 public:
  FleetPin(ShardManager* manager, const std::vector<PinnedShard>* pinned)
      : manager_(manager), pinned_(pinned) {}
  ~FleetPin() { manager_->UnpinFleet(*pinned_); }
  FleetPin(const FleetPin&) = delete;
  FleetPin& operator=(const FleetPin&) = delete;

 private:
  ShardManager* manager_;
  const std::vector<PinnedShard>* pinned_;
};

ShardManager::ShardManager(ShardManagerOptions options,
                           ColorConstraint constraint, const Metric* metric,
                           const FairCenterSolver* solver)
    : options_(std::move(options)),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver),
      fleet_mu_(std::make_unique<std::mutex>()),
      gc_mu_(std::make_unique<std::mutex>()),
      maintenance_admin_mu_(std::make_unique<std::mutex>()) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  // Shards run sequentially inside their manager-pool task; nesting pools
  // would oversubscribe and buys nothing (shard fan-out already covers the
  // cores).
  options_.window.num_threads = 1;
  if (options_.spill_store == nullptr) {
    options_.spill_store = std::make_shared<InMemorySpillStore>();
  }
  // Resolve and build the pool eagerly: concurrent fan-outs must never race
  // a lazy construction. num_threads = 0 on a single-core host resolves to
  // 1, in which case no pool is parked at all.
  const int resolved = options_.num_threads == 1
                           ? 1
                           : ThreadPool::ResolveThreadCount(options_.num_threads);
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);
}

ShardManager::~ShardManager() { StopMaintenance(); }

ShardManager::ShardManager(ShardManager&& other) noexcept
    : options_(std::move(other.options_)),
      constraint_(std::move(other.constraint_)),
      metric_(other.metric_),
      solver_(other.solver_),
      fleet_mu_(std::move(other.fleet_mu_)),
      gc_mu_(std::move(other.gc_mu_)),
      overrides_(std::move(other.overrides_)),
      shards_(std::move(other.shards_)),
      live_count_(other.live_count_),
      live_lru_(std::move(other.live_lru_)),
      pool_(std::move(other.pool_)),
      maintenance_admin_mu_(std::move(other.maintenance_admin_mu_)),
      maintenance_(std::move(other.maintenance_)),
      maintenance_ticks_(other.maintenance_ticks_.load()),
      clock_(other.clock_),
      evictions_(other.evictions_),
      rehydrations_(other.rehydrations_) {
  // Moving a manager whose maintenance thread is running is unsupported
  // (the thread would keep the old `this`); Restore/Replay outputs — the
  // only places managers are moved — never have one. A finished
  // (self-stopped) thread is fine: it no longer touches the manager.
  FKC_CHECK(maintenance_ == nullptr || !maintenance_->thread.joinable() ||
            [&] {
              std::lock_guard<std::mutex> lock(maintenance_->mu);
              return maintenance_->exited;
            }());
}

ShardManager& ShardManager::operator=(ShardManager&& other) noexcept {
  if (this == &other) return *this;
  StopMaintenance();  // join our thread before its state is replaced
  options_ = std::move(other.options_);
  constraint_ = std::move(other.constraint_);
  metric_ = other.metric_;
  solver_ = other.solver_;
  fleet_mu_ = std::move(other.fleet_mu_);
  gc_mu_ = std::move(other.gc_mu_);
  overrides_ = std::move(other.overrides_);
  shards_ = std::move(other.shards_);
  live_count_ = other.live_count_;
  live_lru_ = std::move(other.live_lru_);
  pool_ = std::move(other.pool_);
  maintenance_admin_mu_ = std::move(other.maintenance_admin_mu_);
  maintenance_ = std::move(other.maintenance_);
  maintenance_ticks_.store(other.maintenance_ticks_.load());
  clock_ = other.clock_;
  evictions_ = other.evictions_;
  rehydrations_ = other.rehydrations_;
  FKC_CHECK(maintenance_ == nullptr || !maintenance_->thread.joinable() ||
            [&] {
              std::lock_guard<std::mutex> lock(maintenance_->mu);
              return maintenance_->exited;
            }());
  return *this;
}

bool ShardManager::IsDirty(const Shard& shard) const {
  return shard.live ? shard.live->state_epoch() != shard.clean_epoch
                    : shard.spill_dirty;
}

Status ShardManager::ValidateArrival(const std::string& key, const Point& p,
                                     int64_t pinned_dim) const {
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument(
        StrFormat("shard key of %zu bytes exceeds the checkpointable limit",
                  key.size()));
  }
  // The coordinate pools CHECK-abort on empty points and on dimension
  // changes while points are stored, and the checkpoint reader rejects
  // non-finite coordinates — so any of these, once ingested, would either
  // kill the process or make CheckpointAll emit a blob Restore refuses
  // (and a spilled shard permanently fail rehydration).
  if (p.coords.empty()) {
    return Status::InvalidArgument("arrival carries no coordinates");
  }
  for (double x : p.coords) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("non-finite coordinate in arrival");
    }
  }
  if (pinned_dim >= 0 && static_cast<int64_t>(p.dimension()) != pinned_dim) {
    return Status::InvalidArgument(StrFormat(
        "%zu-dimensional arrival for a shard pinned to %lld dimensions",
        p.dimension(), static_cast<long long>(pinned_dim)));
  }
  if (p.color < 0 || p.color >= constraint_.ell()) {
    return Status::InvalidArgument(
        StrFormat("color %d outside the constraint's [0, %d) range", p.color,
                  constraint_.ell()));
  }
  // In-range colors with a zero cap are representable in checkpoints but
  // can never host a center; GuessStructure::Update CHECK-aborts on them.
  if (constraint_.cap(p.color) < 1) {
    return Status::InvalidArgument(
        StrFormat("color %d has a zero cap and cannot be served", p.color));
  }
  return Status::OK();
}

int64_t ShardManager::PinnedDimensionLocked(const std::string& key) const {
  auto it = shards_.find(key);
  return it == shards_.end() ? -1 : it->second.dim;
}

SlidingWindowOptions ShardManager::OptionsForKey(const std::string& key) const {
  auto it = overrides_.find(key);
  SlidingWindowOptions options =
      it == overrides_.end() ? options_.window : it->second;
  options.num_threads = 1;
  return options;
}

ShardManager::Shard* ShardManager::RouteLocked(const std::string& key,
                                               bool create_missing,
                                               int64_t touch) {
  auto it = shards_.find(key);
  if (it == shards_.end()) {
    if (!create_missing) return nullptr;
    it = shards_.try_emplace(key).first;
    it->second.live = std::make_unique<FairCenterSlidingWindow>(
        OptionsForKey(key), constraint_, metric_, solver_);
    ++live_count_;
  }
  Shard* shard = &it->second;
  if (shard->live != nullptr) {
    TouchLive(it->first, shard, touch);
  } else {
    // Spilled: refresh last_touch only — the LRU index tracks live shards.
    // If a later rehydration commits, it inserts this value.
    shard->last_touch = touch;
  }
  return shard;
}

Status ShardManager::EnsureLiveHeld(const std::string& key, Shard* shard) {
  if (shard->live != nullptr) return Status::OK();
  auto blob = options_.spill_store->Get(key);
  if (!blob.ok()) return blob.status();
  auto window = FairCenterSlidingWindow::DeserializeState(blob.value(),
                                                          metric_, solver_);
  if (!window.ok()) return window.status();
  // Same forged-blob guards as Restore/ApplyDelta: with a durable backend
  // the bytes come from a directory two fleets could share (or anyone
  // could write — the FNV checksum is integrity, not authentication). A
  // shard under a different constraint would pass ValidateArrival yet
  // CHECK-abort in StampArrival on its next ingest; a different dimension
  // would feed mismatched points into the coordinate pools.
  if (window.value().constraint().caps() != constraint_.caps()) {
    return Status::InvalidArgument(
        "spilled shard's constraint does not match the fleet constraint");
  }
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    if (shard->dim >= 0 && window.value().dimension() >= 0 &&
        window.value().dimension() != shard->dim) {
      return Status::InvalidArgument(
          "spilled shard's dimension does not match its pinned dimension");
    }
    shard->live = std::make_unique<FairCenterSlidingWindow>(
        std::move(window).value());
    if (shard->live->dimension() >= 0) shard->dim = shard->live->dimension();
    // A fresh deserialization restarts the epoch counter at 0; a clean
    // spill therefore rehydrates clean, a dirty one stays dirty via the
    // sentinel.
    shard->clean_epoch = shard->spill_dirty ? kNeverCheckpointed : 0;
    shard->spill_dirty = false;
    ++live_count_;
    ++rehydrations_;
    live_lru_.insert({shard->last_touch, key});
  }
  // Best-effort, still under the shard lock (so a concurrent QueryAll
  // cannot read a half-erased entry): a failed erase only leaves a stale
  // store entry behind — never read again (the shard is live now) and
  // swept by the next GC.
  options_.spill_store->Erase(key);
  return Status::OK();
}

void ShardManager::TouchLive(const std::string& key, Shard* shard,
                             int64_t touch) {
  // The erase is a no-op for a shard that just became live (its old
  // last_touch was removed from the index when it spilled, or never
  // inserted for a brand-new shard).
  live_lru_.erase({shard->last_touch, key});
  shard->last_touch = touch;
  live_lru_.insert({touch, key});
}

Result<ShardManager::SpillAttempt> ShardManager::TrySpillShard(
    const std::string& key, int64_t idle_ttl) {
  std::unique_lock<std::mutex> fleet(*fleet_mu_);
  auto it = shards_.find(key);
  if (it == shards_.end()) return SpillAttempt::kSkipped;
  Shard* shard = &it->second;
  if (shard->live == nullptr || shard->pins > 0) return SpillAttempt::kSkipped;
  // Re-check idleness under the fleet lock: the shard may have been
  // touched between the caller's candidate snapshot and now.
  if (idle_ttl >= 0 && clock_ - shard->last_touch <= idle_ttl) {
    return SpillAttempt::kSkipped;
  }
  // Only ever try_lock a shard mutex under the fleet lock (lock-order
  // protocol): a busy shard is mid-ingest or mid-query — skip it, the
  // next sweep catches it.
  std::unique_lock<std::mutex> shard_lock(shard->mu, std::try_to_lock);
  if (!shard_lock.owns_lock()) return SpillAttempt::kSkipped;
  const bool dirty = IsDirty(*shard);
  FairCenterSlidingWindow* window = shard->live.get();
  fleet.unlock();

  // Serialize and write outside the fleet lock (the shard lock keeps the
  // window stable). The GC mutex spans the write and the commit so a
  // concurrent GarbageCollectSpill, whose keep-set predates this spill,
  // can never reap the blob just written.
  std::string blob = window->SerializeState();
  std::lock_guard<std::mutex> gc(*gc_mu_);
  // Put before dropping the window: a failing backend must leave the shard
  // live and the fleet lossless.
  Status put = options_.spill_store->Put(key, std::move(blob));
  if (!put.ok()) return put;

  fleet.lock();
  if (shard->pins > 0) {
    // A fleet read pinned the shard while the blob was being written; the
    // reader expects live shards to stay live, so abort the spill and drop
    // the just-written entry (best-effort — GC would sweep it anyway).
    fleet.unlock();
    options_.spill_store->Erase(key);
    return SpillAttempt::kSkipped;
  }
  shard->spill_dirty = dirty;
  shard->live.reset();
  shard->clean_epoch = kNeverCheckpointed;
  live_lru_.erase({shard->last_touch, key});
  --live_count_;
  ++evictions_;
  return SpillAttempt::kSpilled;
}

void ShardManager::EnforceLiveCap(const std::string* exclude) {
  if (options_.max_live_shards <= 0) return;
  // Best-effort loop: each round picks the current LRU victim under the
  // fleet lock — least recently touched, ties broken by smaller key, the
  // same deterministic order as the single-threaded path — and attempts
  // the spill without it. Victims whose attempt failed are not retried,
  // so the loop always terminates; pinned shards are skipped but stay
  // eligible for later rounds (their pin is transient).
  std::set<std::string> attempted;
  for (;;) {
    std::string victim;
    {
      std::lock_guard<std::mutex> fleet(*fleet_mu_);
      if (live_count_ <= static_cast<size_t>(options_.max_live_shards)) return;
      bool found = false;
      for (const auto& [touch, key] : live_lru_) {
        if (exclude != nullptr && key == *exclude) continue;
        if (attempted.count(key) != 0) continue;
        if (shards_.find(key)->second.pins > 0) continue;
        victim = key;
        found = true;
        break;
      }
      if (!found) return;  // everything left is excluded, pinned, or failed
    }
    attempted.insert(victim);
    auto spilled = TrySpillShard(victim, /*idle_ttl=*/-1);
    if (!spilled.ok()) {
      // Spill backend down: the cap is enforced best-effort until the
      // backend recovers. Nothing is lost.
      return;
    }
  }
}

std::vector<ShardManager::PinnedShard> ShardManager::PinFleet() {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  std::vector<PinnedShard> pinned;
  pinned.reserve(shards_.size());
  for (auto& [key, shard] : shards_) {  // ascending key order
    ++shard.pins;
    pinned.push_back(PinnedShard{&key, &shard});
  }
  return pinned;
}

void ShardManager::UnpinFleet(const std::vector<PinnedShard>& pinned) {
  if (pinned.empty()) return;
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  for (const PinnedShard& entry : pinned) --entry.shard->pins;
}

Status ShardManager::Ingest(const std::string& key, Point p) {
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    // Validate and route in ONE fleet critical section, and pin the
    // dimension at routing time: two first arrivals racing on a fresh key
    // with different dimensions must resolve to first-writer-wins, the
    // loser rejected here instead of CHECK-aborting in the window.
    FKC_RETURN_IF_ERROR(ValidateArrival(key, p, PinnedDimensionLocked(key)));
    ++clock_;
    shard = RouteLocked(key, /*create_missing=*/true, clock_);
    shard->dim = static_cast<int64_t>(p.dimension());
    ++shard->pins;
  }
  Status status;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    status = EnsureLiveHeld(key, shard);
    if (status.ok()) shard->live->Update(std::move(p));
  }
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    --shard->pins;
  }
  EnforceLiveCap(&key);
  return status;
}

Status ShardManager::IngestBatch(std::vector<KeyedPoint> batch) {
  if (batch.empty()) return Status::OK();

  // Group by key, preserving per-key arrival order (the only order that
  // matters: shards share no state, so cross-key interleaving is
  // unobservable). Invalid arrivals are dropped here, one by one — the
  // valid rest of the batch is consumed regardless.
  struct Group {
    const std::string* key = nullptr;
    std::vector<Point> points;
    int64_t last_clock = 0;  ///< manager clock at the group's last arrival
    int64_t dim = -1;        ///< dimension pinned by the first accepted point
    Shard* shard = nullptr;
    Status status;           ///< the group's ingest outcome
  };
  std::map<std::string, Group> groups;
  int64_t dropped = 0;
  Status first_error = Status::OK();
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    for (KeyedPoint& kp : batch) {
      // For a key already accepted earlier in this batch the group carries
      // the pinned dimension (a brand-new shard has none on record yet).
      auto git = groups.find(kp.key);
      const int64_t pinned =
          git != groups.end() ? git->second.dim : PinnedDimensionLocked(kp.key);
      Status status = ValidateArrival(kp.key, kp.point, pinned);
      if (!status.ok()) {
        ++dropped;
        if (first_error.ok()) first_error = std::move(status);
        continue;
      }
      if (git == groups.end()) git = groups.try_emplace(kp.key).first;
      Group& group = git->second;
      group.dim = static_cast<int64_t>(kp.point.dimension());
      group.points.push_back(std::move(kp.point));
      group.last_clock = ++clock_;
    }
    // Route (create) and pin every touched shard in the same critical
    // section that validated against its dimension, so a racing batch on
    // the same fresh key validates against the dimension pinned here.
    for (auto& [key, group] : groups) {
      group.key = &key;
      group.shard = RouteLocked(key, /*create_missing=*/true,
                                group.last_clock);
      group.shard->dim = group.dim;
      ++group.shard->pins;
    }
  }

  std::vector<Group*> work;
  work.reserve(groups.size());
  for (auto& [key, group] : groups) work.push_back(&group);

  // Fan the per-shard groups out over the pool. Each task blocks only on
  // its own shard's lock (held by nobody else routing a disjoint key set).
  auto run_one = [&](int64_t i) {
    Group* group = work[i];
    std::lock_guard<std::mutex> shard_lock(group->shard->mu);
    group->status = EnsureLiveHeld(*group->key, group->shard);
    if (group->status.ok()) {
      group->shard->live->UpdateBatch(std::move(group->points));
    }
  };
  ThreadPool* pool = Pool();
  if (pool == nullptr || work.size() < 2) {
    for (size_t i = 0; i < work.size(); ++i) run_one(static_cast<int64_t>(i));
  } else {
    pool->ParallelFor(static_cast<int64_t>(work.size()), run_one);
  }

  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    for (auto& [key, group] : groups) {
      --group.shard->pins;
      if (!group.status.ok()) {
        // Rehydration failed: the whole group was dropped (points were
        // only consumed on success).
        dropped += static_cast<int64_t>(group.points.size());
        if (first_error.ok()) first_error = group.status;
      }
    }
  }
  EnforceLiveCap(nullptr);

  if (dropped > 0) {
    return Status::InvalidArgument(
        StrFormat("dropped %lld of %lld arrivals; first error: %s",
                  static_cast<long long>(dropped),
                  static_cast<long long>(batch.size()),
                  first_error.message().c_str()));
  }
  return Status::OK();
}

Status ShardManager::SetTenantOptions(const std::string& key,
                                      SlidingWindowOptions options) {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument("tenant key exceeds the size limit");
  }
  FKC_RETURN_IF_ERROR(ValidateSlidingWindowOptions(options));
  if (shards_.count(key) != 0) {
    return Status::FailedPrecondition(
        "shard '" + key + "' already exists; options are fixed at creation");
  }
  options.num_threads = 1;
  if (SameCheckpointedOptions(options, options_.window)) {
    overrides_.erase(key);  // identical to the template: nothing to store
  } else {
    overrides_[key] = options;
  }
  return Status::OK();
}

const SlidingWindowOptions* ShardManager::TenantOptions(
    const std::string& key) const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  auto it = overrides_.find(key);
  return it == overrides_.end() ? nullptr : &it->second;
}

Result<FairCenterSolution> ShardManager::Query(const std::string& key,
                                               QueryStats* stats) {
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    shard = RouteLocked(key, /*create_missing=*/false, clock_);
    if (shard == nullptr) {
      return Status::NotFound("no shard for key '" + key + "'");
    }
    ++shard->pins;
  }
  Result<FairCenterSolution> result = [&]() -> Result<FairCenterSolution> {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    FKC_RETURN_IF_ERROR(EnsureLiveHeld(key, shard));
    return shard->live->Query(stats);
  }();
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    --shard->pins;
  }
  EnforceLiveCap(&key);
  return result;
}

std::vector<ShardAnswer> ShardManager::QueryAll() {
  // Epoch snapshot: pin the current shard set under one fleet-lock
  // acquisition, then answer shard by shard under per-shard locks only —
  // ingest to unrelated shards proceeds throughout the round.
  std::vector<PinnedShard> pinned = PinFleet();
  FleetPin unpin(this, &pinned);

  // Live shards answer in place; spilled shards answer from an ephemeral
  // deserialization so a fleet-wide query round does not defeat eviction.
  // Each spilled task fetches its own blob inside the fan-out and drops it
  // with the task: fetching the whole fleet's blobs up front would
  // transiently hold every spilled shard in memory, the exact condition a
  // durable store plus live-shard cap exists to prevent.
  std::vector<ShardAnswer> answers(pinned.size());
  auto run_one = [&](int64_t i) {
    answers[i].key = *pinned[i].key;
    Shard* shard = pinned[i].shard;
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    if (shard->live != nullptr) {
      answers[i].solution = shard->live->Query(&answers[i].stats);
      return;
    }
    // The blob read happens under the shard lock (a concurrent rehydration
    // commits and erases the entry under the same lock); deserialization
    // and the query run outside every manager lock.
    Result<std::string> blob = options_.spill_store->Get(answers[i].key);
    shard_lock.unlock();
    if (!blob.ok()) {
      answers[i].solution = blob.status();
      return;
    }
    auto window = FairCenterSlidingWindow::DeserializeState(blob.value(),
                                                            metric_, solver_);
    blob = std::string();  // the deserialized window supersedes the bytes
    if (!window.ok()) {
      answers[i].solution = window.status();
      return;
    }
    answers[i].solution = window.value().Query(&answers[i].stats);
  };
  ThreadPool* pool = Pool();
  if (pool == nullptr || pinned.size() < 2) {
    for (size_t i = 0; i < pinned.size(); ++i) {
      run_one(static_cast<int64_t>(i));
    }
  } else {
    pool->ParallelFor(static_cast<int64_t>(pinned.size()), run_one);
  }
  return answers;
}

int64_t ShardManager::EvictIdle(int64_t idle_ttl, Status* spill_status) {
  if (spill_status != nullptr) *spill_status = Status::OK();
  if (idle_ttl < 0) return 0;
  // The LRU index orders live shards by last_touch, so the idle ones are
  // exactly its prefix — snapshot those keys under the fleet lock, then
  // spill without it, one victim at a time. TrySpillShard re-checks
  // idleness (and pins, and the lock) per victim, so a candidate touched
  // after the snapshot is simply skipped.
  std::vector<std::string> candidates;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    for (const auto& [touch, key] : live_lru_) {
      if (clock_ - touch <= idle_ttl) break;
      candidates.push_back(key);
    }
  }
  int64_t evicted = 0;
  for (const std::string& key : candidates) {
    auto attempt = TrySpillShard(key, idle_ttl);
    if (!attempt.ok()) {
      // Backend down: stop the sweep, leave the remaining shards live.
      if (spill_status != nullptr) *spill_status = attempt.status();
      break;
    }
    if (attempt.value() == SpillAttempt::kSpilled) ++evicted;
  }
  return evicted;
}

Result<std::string> ShardManager::CheckpointSnapshot(bool dirty_only) {
  std::ostringstream out;
  std::vector<PinnedShard> pinned;
  {
    // Header and pin set under ONE fleet-lock acquisition, so the override
    // table travels with the shard set it was snapshotted beside.
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    out << (dirty_only ? kDeltaMagic : kMagicV2) << ' ';
    if (!dirty_only) {
      // The window template (needed to spawn shards for keys first seen
      // after a restore). num_threads, max_live_shards, and the spill
      // store are execution/resource knobs and are deliberately excluded,
      // like in the core checkpoint.
      WriteSlidingWindowOptions(&out, options_.window);
    }
    WriteColorCaps(&out, constraint_);
    WriteOverrides(&out, overrides_);
    pinned.reserve(shards_.size());
    for (auto& [key, shard] : shards_) {
      ++shard.pins;
      pinned.push_back(PinnedShard{&key, &shard});
    }
  }
  FleetPin unpin(this, &pinned);

  // Every captured shard: length-prefixed key, length-prefixed core
  // checkpoint, taken one shard lock at a time. A spilled shard's state is
  // its spill blob, verbatim. Clean marks are staged and committed only
  // after every blob is in hand — a failing spill read must not leave half
  // the fleet marked clean for a checkpoint that never existed. The epoch
  // recorded per live shard is the one at capture time, so arrivals
  // landing after a shard's segment was taken leave it dirty.
  struct CleanMark {
    Shard* shard;
    int64_t epoch;
    bool was_live;
  };
  std::vector<CleanMark> clean_marks;
  clean_marks.reserve(pinned.size());
  std::ostringstream body;
  int64_t written = 0;
  for (const PinnedShard& entry : pinned) {
    std::lock_guard<std::mutex> shard_lock(entry.shard->mu);
    if (dirty_only && !IsDirty(*entry.shard)) continue;
    WriteCheckpointRaw(&body, *entry.key);
    if (entry.shard->live) {
      WriteCheckpointRaw(&body, entry.shard->live->SerializeState());
      clean_marks.push_back(
          CleanMark{entry.shard, entry.shard->live->state_epoch(), true});
    } else {
      auto blob = options_.spill_store->Get(*entry.key);
      if (!blob.ok()) return blob.status();
      WriteCheckpointRaw(&body, blob.value());
      clean_marks.push_back(CleanMark{entry.shard, kNeverCheckpointed, false});
    }
    ++written;
  }
  out << written << ' ' << body.str();

  // Commit the staged marks while still holding the pins: a was_live shard
  // is therefore still live (pinned shards are never spilled). A shard
  // captured spilled but rehydrated since keeps its dirty state —
  // conservative, the next delta simply re-ships it.
  for (const CleanMark& mark : clean_marks) {
    std::lock_guard<std::mutex> shard_lock(mark.shard->mu);
    if (mark.was_live) {
      mark.shard->clean_epoch = mark.epoch;
    } else if (mark.shard->live == nullptr) {
      mark.shard->spill_dirty = false;
    }
  }
  return out.str();
}

Result<std::string> ShardManager::CheckpointAll() {
  return CheckpointSnapshot(/*dirty_only=*/false);
}

Result<std::string> ShardManager::CheckpointDelta() {
  return CheckpointSnapshot(/*dirty_only=*/true);
}

size_t ShardManager::dirty_shard_count() const {
  // Shard map entries are never erased, so the snapshot stays valid after
  // the fleet lock is dropped; dirtiness is then read per shard lock.
  std::vector<const Shard*> snapshot;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    snapshot.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) snapshot.push_back(&shard);
  }
  size_t dirty = 0;
  for (const Shard* shard : snapshot) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    if (IsDirty(*shard)) ++dirty;
  }
  return dirty;
}

Status ShardManager::ApplyDelta(const std::string& bytes) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  if (magic != kDeltaMagic) {
    return Status::InvalidArgument("not an fkc shard delta (bad magic '" +
                                   magic + "')");
  }

  // Parse and stage everything with NO manager lock held — the inputs
  // (constraint, metric, solver) are immutable after construction, and a
  // truncated or corrupt delta must leave the fleet exactly as it was.
  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&cursor, &caps));
  if (caps != constraint_.caps()) {
    return Status::InvalidArgument(
        "delta constraint does not match this manager's");
  }
  std::map<std::string, SlidingWindowOptions> overrides;
  FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &overrides));

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in delta");
  }
  // No reserve from the blob-supplied count: growth is paid only for
  // entries that actually parse.
  std::vector<std::pair<std::string, FairCenterSlidingWindow>> staged;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric_, solver_);
    if (!window.ok()) return window.status();
    // An interior-corrupt or forged shard blob under a different constraint
    // would restore fine and then CHECK-abort on its next in-range ingest
    // (StampArrival checks color against the shard's own ell).
    if (window.value().constraint().caps() != constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint in delta");
    }
    staged.emplace_back(std::move(key), std::move(window).value());
  }

  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    overrides_ = std::move(overrides);
  }
  // Swap each staged shard in under its own lock: per-shard atomicity (a
  // concurrent QueryAll may see a partially applied delta, never a torn
  // shard), and ingest to untouched tenants proceeds throughout.
  for (auto& [key, window] : staged) {
    Shard* shard = nullptr;
    {
      std::lock_guard<std::mutex> fleet(*fleet_mu_);
      auto it = shards_.find(key);
      if (it == shards_.end()) {
        // A tenant first seen in this delta: build the entry fully formed
        // under the fleet lock (nobody can hold its shard lock yet).
        it = shards_.try_emplace(key).first;
        Shard* fresh = &it->second;
        fresh->live =
            std::make_unique<FairCenterSlidingWindow>(std::move(window));
        fresh->dim = fresh->live->dimension();
        // The shard now matches the leader's checkpointed state exactly.
        fresh->clean_epoch = fresh->live->state_epoch();
        fresh->spill_dirty = false;
        ++live_count_;
        TouchLive(it->first, fresh, clock_);
        continue;
      }
      shard = &it->second;
      ++shard->pins;
    }
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    bool was_live;
    {
      std::lock_guard<std::mutex> fleet(*fleet_mu_);
      was_live = shard->live != nullptr;
      shard->live =
          std::make_unique<FairCenterSlidingWindow>(std::move(window));
      shard->dim = shard->live->dimension();
      shard->clean_epoch = shard->live->state_epoch();
      shard->spill_dirty = false;
      if (!was_live) ++live_count_;
      TouchLive(key, shard, clock_);
      --shard->pins;
    }
    if (!was_live) {
      // A previously spilled shard's store entry is superseded; drop it
      // under the shard lock (best-effort — a stale entry is never read
      // and GC sweeps it).
      options_.spill_store->Erase(key);
    }
  }
  EnforceLiveCap(nullptr);
  return Status::OK();
}

Result<ShardManager> ShardManager::Restore(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver, int num_threads, int64_t max_live_shards,
    std::shared_ptr<SpillStore> spill_store) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagicV1) {
    return Status::InvalidArgument("not an fkc shard checkpoint (bad magic '" +
                                   magic + "')");
  }

  ShardManagerOptions options;
  options.num_threads = num_threads;
  options.max_live_shards = max_live_shards;
  options.spill_store = std::move(spill_store);
  // ReadSlidingWindowOptions validates what it parses (window size, delta,
  // beta, variant, slack exponents, range bounds): a corrupted or
  // adversarial blob must fail here, not abort in a constructor CHECK.
  FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(&cursor, &options.window));

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&cursor, &caps));

  // Single-threaded throughout: the manager is not published to any other
  // thread until Restore returns, so its members are mutated directly.
  ShardManager manager(options, ColorConstraint(std::move(caps)), metric,
                       solver);
  if (v2) {
    FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &manager.overrides_));
  }

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in checkpoint");
  }
  // Verbatim blob segments of the currently-live shards, so enforcing the
  // cap mid-restore hands the exact bytes just read to the spill store
  // instead of re-serializing a window that was deserialized moments ago.
  // Holds at most max_live_shards entries at any time.
  std::map<std::string, std::string> verbatim;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric, solver);
    if (!window.ok()) return window.status();
    // Same forged-blob guard as ApplyDelta: a shard under a different
    // constraint would pass the manager's ValidateArrival yet CHECK-abort
    // inside the window on the next ingest.
    if (window.value().constraint().caps() != manager.constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint");
    }
    // Shards carry their mutex, so entries are built in place.
    auto [pos, inserted] = manager.shards_.try_emplace(std::move(key));
    if (!inserted) {
      return Status::InvalidArgument("duplicate shard key in checkpoint");
    }
    Shard& shard = pos->second;
    shard.live = std::make_unique<FairCenterSlidingWindow>(
        std::move(window).value());
    shard.dim = shard.live->dimension();
    shard.clean_epoch = shard.live->state_epoch();  // restored = checkpointed
    manager.live_lru_.insert({shard.last_touch, pos->first});
    ++manager.live_count_;
    if (max_live_shards <= 0) continue;
    verbatim.emplace(pos->first, std::move(blob));
    // Enforce the cap as shards stream in, not after: a fleet far larger
    // than max_live_shards must never be fully resident at once — that is
    // the exact condition the cap exists to prevent. All last_touch values
    // are equal here, so the surviving set (the largest keys) matches what
    // one sweep at the end would keep.
    while (manager.live_count_ > static_cast<size_t>(max_live_shards)) {
      const auto victim = manager.live_lru_.begin();
      Shard& victim_shard = manager.shards_.find(victim->second)->second;
      auto segment = verbatim.find(victim->second);
      // A spill backend that cannot even absorb the restore is fatal to
      // the restore, not the process.
      FKC_RETURN_IF_ERROR(manager.options_.spill_store->Put(
          victim->second, std::move(segment->second)));
      verbatim.erase(segment);
      victim_shard.live.reset();
      victim_shard.spill_dirty = false;  // restored = checkpointed = clean
      victim_shard.clean_epoch = kNeverCheckpointed;
      manager.live_lru_.erase(victim);
      --manager.live_count_;
      ++manager.evictions_;
    }
  }
  return manager;
}

Status ShardManager::StartMaintenance(MaintenanceOptions options) {
  if (options.cadence <= std::chrono::milliseconds::zero()) {
    return Status::InvalidArgument("maintenance cadence must be positive");
  }
  std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
  if (maintenance_ != nullptr) {
    bool exited;
    {
      std::lock_guard<std::mutex> lock(maintenance_->mu);
      exited = maintenance_->exited;
    }
    if (!exited) {
      return Status::FailedPrecondition("maintenance thread already running");
    }
    // The previous loop already exited (a hook-initiated self-stop, which
    // cannot join itself): reap the finished thread here. The join is
    // prompt — the thread is past its last statement — and cannot be the
    // calling thread (a hook caller would still be inside the loop, with
    // `exited` unset).
    if (maintenance_->thread.joinable()) maintenance_->thread.join();
    maintenance_.reset();
  }
  maintenance_ = std::make_unique<MaintenanceState>();
  maintenance_->options = std::move(options);
  maintenance_->thread = std::thread(
      [this, state = maintenance_.get()] { MaintenanceLoop(state); });
  return Status::OK();
}

void ShardManager::StopMaintenance() {
  if (maintenance_admin_mu_ == nullptr) return;  // moved-from shell
  // Detach the state from the manager under the admin lock, then signal
  // and join WITHOUT it: the maintenance thread may itself be inside a
  // re-entrant StopMaintenance (an on_tick hook) waiting on the admin
  // mutex, and joining while holding it would deadlock both sides.
  std::unique_ptr<MaintenanceState> state;
  {
    std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
    if (maintenance_ == nullptr) return;
    if (maintenance_->thread.get_id() == std::this_thread::get_id()) {
      // Called from the maintenance thread (an on_tick hook): joining
      // oneself is impossible. Signal the loop to exit after this tick;
      // the thread stays attached until another thread's Stop or Start
      // (or the destructor) reaps it.
      std::lock_guard<std::mutex> lock(maintenance_->mu);
      maintenance_->stop = true;
      return;
    }
    state = std::move(maintenance_);
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->stop = true;
  }
  state->cv.notify_all();
  if (state->thread.joinable()) state->thread.join();
}

bool ShardManager::maintenance_running() const {
  std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
  if (maintenance_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  return !maintenance_->exited;
}

void ShardManager::MaintenanceLoop(MaintenanceState* state) {
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    // wait_for returns true only when stop was signalled — a prompt,
    // race-free shutdown even when StopMaintenance lands mid-sleep.
    if (state->cv.wait_for(lock, state->options.cadence,
                           [state] { return state->stop; })) {
      state->exited = true;
      return;
    }
    lock.unlock();
    RunMaintenanceTick(state->options);
    lock.lock();
  }
}

MaintenanceTickReport ShardManager::RunMaintenanceTick(
    const MaintenanceOptions& options) {
  MaintenanceTickReport report;
  report.tick = maintenance_ticks_.fetch_add(1) + 1;

  if (options.idle_ttl >= 0) {
    Status spill_status;
    report.evicted = EvictIdle(options.idle_ttl, &spill_status);
    if (report.status.ok()) report.status = spill_status;
  }

  if (options.delta_log != nullptr && dirty_shard_count() > 0) {
    auto captured = options.delta_log->Capture(this);
    if (captured.ok()) {
      report.capture_bytes = captured.value().bytes;
      report.rebased = captured.value().rebased;
    } else if (report.status.ok()) {
      report.status = captured.status();
    }
  }

  if (options.gc_every > 0 && report.tick % options.gc_every == 0) {
    auto removed = GarbageCollectSpill();
    if (removed.ok()) {
      report.gc_removed = removed.value();
    } else if (report.status.ok()) {
      report.status = removed.status();
    }
  }

  if (options.on_tick) options.on_tick(report);
  return report;
}

Result<int64_t> ShardManager::GarbageCollectSpill() {
  // The GC mutex is taken BEFORE the fleet lock (lock-order protocol) and
  // held across the whole sweep: no spill can commit between the keep-set
  // snapshot below and the store's delete pass, so the keep-set can never
  // under-approximate and reap a freshly spilled blob.
  std::lock_guard<std::mutex> gc(*gc_mu_);
  std::set<std::string> spilled;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    for (const auto& [key, shard] : shards_) {
      if (!shard.live) spilled.insert(key);
    }
  }
  return options_.spill_store->GarbageCollect(spilled);
}

std::vector<std::string> ShardManager::Keys() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  std::vector<std::string> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) keys.push_back(key);
  return keys;
}

FairCenterSlidingWindow* ShardManager::shard(const std::string& key) {
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    shard = RouteLocked(key, /*create_missing=*/false, clock_);
    if (shard == nullptr) return nullptr;
    ++shard->pins;
  }
  FairCenterSlidingWindow* window = nullptr;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    if (EnsureLiveHeld(key, shard).ok()) window = shard->live.get();
  }
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    --shard->pins;
  }
  EnforceLiveCap(&key);
  return window;
}

const FairCenterSlidingWindow* ShardManager::shard(
    const std::string& key) const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : it->second.live.get();
}

size_t ShardManager::shard_count() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  return shards_.size();
}

size_t ShardManager::live_shard_count() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  return live_count_;
}

size_t ShardManager::spilled_shard_count() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  return shards_.size() - live_count_;
}

int64_t ShardManager::clock() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  return clock_;
}

int64_t ShardManager::evictions() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  return evictions_;
}

int64_t ShardManager::rehydrations() const {
  std::lock_guard<std::mutex> fleet(*fleet_mu_);
  return rehydrations_;
}

MemoryStats ShardManager::TotalMemory() const {
  // Same stable-entry snapshot as dirty_shard_count: collect under the
  // fleet lock, read each shard under its own.
  std::vector<const Shard*> snapshot;
  {
    std::lock_guard<std::mutex> fleet(*fleet_mu_);
    snapshot.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) snapshot.push_back(&shard);
  }
  MemoryStats stats;
  for (const Shard* shard : snapshot) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    if (shard->live) stats += shard->live->Memory();
  }
  return stats;
}

}  // namespace serving
}  // namespace fkc
