#include "serving/shard_manager.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/options_io.h"

namespace fkc {
namespace serving {
namespace {

// Full-fleet formats: v1 (PR 2, template + constraint + shards) is still
// accepted by Restore; v2 adds the per-tenant override table. Deltas are
// v2-only.
constexpr const char* kMagicV1 = "fkc-shards-v1";
constexpr const char* kMagicV2 = "fkc-shards-v2";
constexpr const char* kDeltaMagic = "fkc-shards-delta-v2";

// Shard keys travel as length-prefixed raw segments in the fleet checkpoint
// (CheckpointReader::NextRaw); this cap keeps write and read sides agreeing
// on what a plausible key is, so CheckpointAll can never emit a blob that
// Restore rejects. Oversized keys are rejected at ingest with a Status —
// one tenant's garbage must never abort the fleet.
constexpr size_t kMaxKeyBytes = 1u << 20;

// Upper bounds on checkpointed table sizes, rejected before any allocation.
constexpr int64_t kMaxShards = 1 << 24;

// Reads and validates the "<ell> <caps...>" constraint block shared by the
// full and delta formats.
Status ReadConstraint(CheckpointReader* cursor, std::vector<int>* caps) {
  int64_t ell = 0;
  FKC_RETURN_IF_ERROR(cursor->NextInt(&ell));
  if (ell < 1 || ell > (1 << 20)) {
    return Status::InvalidArgument("implausible color count in checkpoint");
  }
  caps->assign(static_cast<size_t>(ell), 0);
  int64_t total_k = 0;
  for (int& cap : *caps) {
    int64_t value = 0;
    FKC_RETURN_IF_ERROR(cursor->NextInt(&value));
    if (value < 0) {
      return Status::InvalidArgument("negative cap in shard checkpoint");
    }
    cap = static_cast<int>(value);
    total_k += value;
  }
  if (total_k < 1) {
    return Status::InvalidArgument("all-zero caps in shard checkpoint");
  }
  return Status::OK();
}

void WriteConstraint(std::ostringstream* out, const ColorConstraint& c) {
  *out << c.ell() << ' ';
  for (int cap : c.caps()) *out << cap << ' ';
}

// Reads the v2 "<count> { <raw key> <options> }*" override table.
Status ReadOverrides(CheckpointReader* cursor,
                     std::map<std::string, SlidingWindowOptions>* out) {
  int64_t count = 0;
  FKC_RETURN_IF_ERROR(cursor->NextInt(&count));
  // Every entry occupies well over one byte, so the remaining blob length
  // bounds any honest count.
  if (count < 0 || count > kMaxShards ||
      static_cast<size_t>(count) > cursor->Remaining()) {
    return Status::InvalidArgument("implausible override count in checkpoint");
  }
  out->clear();
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    SlidingWindowOptions options;
    FKC_RETURN_IF_ERROR(cursor->NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(cursor, &options));
    options.num_threads = 1;
    if (!out->emplace(std::move(key), options).second) {
      return Status::InvalidArgument("duplicate override key in checkpoint");
    }
  }
  return Status::OK();
}

void WriteOverrides(std::ostringstream* out,
                    const std::map<std::string, SlidingWindowOptions>& map) {
  *out << map.size() << ' ';
  for (const auto& [key, options] : map) {
    WriteCheckpointRaw(out, key);
    WriteSlidingWindowOptions(out, options);
  }
}

}  // namespace

ShardManager::ShardManager(ShardManagerOptions options,
                           ColorConstraint constraint, const Metric* metric,
                           const FairCenterSolver* solver)
    : options_(std::move(options)),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  // Shards run sequentially inside their manager-pool task; nesting pools
  // would oversubscribe and buys nothing (shard fan-out already covers the
  // cores).
  options_.window.num_threads = 1;
}

ThreadPool* ShardManager::Pool() {
  if (options_.num_threads == 1) return nullptr;
  if (pool_threads_ < 0) {
    // Resolve the effective size before constructing: num_threads = 0 on a
    // single-core host resolves to 1, and building a ThreadPool just to
    // discover that would park an idle pool for the manager's lifetime.
    pool_threads_ = options_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                              : options_.num_threads;
  }
  if (pool_threads_ <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(pool_threads_);
  }
  return pool_.get();
}

bool ShardManager::IsDirty(const Shard& shard) const {
  return shard.live ? shard.live->state_epoch() != shard.clean_epoch
                    : shard.spill_dirty;
}

Status ShardManager::ValidateArrival(const std::string& key, const Point& p,
                                     int64_t pinned_dim) const {
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument(
        StrFormat("shard key of %zu bytes exceeds the checkpointable limit",
                  key.size()));
  }
  // The coordinate pools CHECK-abort on empty points and on dimension
  // changes while points are stored, and the checkpoint reader rejects
  // non-finite coordinates — so any of these, once ingested, would either
  // kill the process or make CheckpointAll emit a blob Restore refuses
  // (and a spilled shard permanently fail rehydration).
  if (p.coords.empty()) {
    return Status::InvalidArgument("arrival carries no coordinates");
  }
  for (double x : p.coords) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("non-finite coordinate in arrival");
    }
  }
  if (pinned_dim >= 0 && static_cast<int64_t>(p.dimension()) != pinned_dim) {
    return Status::InvalidArgument(StrFormat(
        "%zu-dimensional arrival for a shard pinned to %lld dimensions",
        p.dimension(), static_cast<long long>(pinned_dim)));
  }
  if (p.color < 0 || p.color >= constraint_.ell()) {
    return Status::InvalidArgument(
        StrFormat("color %d outside the constraint's [0, %d) range", p.color,
                  constraint_.ell()));
  }
  // In-range colors with a zero cap are representable in checkpoints but
  // can never host a center; GuessStructure::Update CHECK-aborts on them.
  if (constraint_.cap(p.color) < 1) {
    return Status::InvalidArgument(
        StrFormat("color %d has a zero cap and cannot be served", p.color));
  }
  return Status::OK();
}

int64_t ShardManager::PinnedDimension(const std::string& key) const {
  auto it = shards_.find(key);
  return it == shards_.end() ? -1 : it->second.dim;
}

SlidingWindowOptions ShardManager::OptionsForKey(const std::string& key) const {
  auto it = overrides_.find(key);
  SlidingWindowOptions options =
      it == overrides_.end() ? options_.window : it->second;
  options.num_threads = 1;
  return options;
}

Status ShardManager::RehydrateShard(Shard* shard) {
  auto window =
      FairCenterSlidingWindow::DeserializeState(shard->spill, metric_, solver_);
  if (!window.ok()) return window.status();
  shard->live = std::make_unique<FairCenterSlidingWindow>(
      std::move(window).value());
  // A fresh deserialization restarts the epoch counter at 0; a clean spill
  // therefore rehydrates clean, a dirty one stays dirty via the sentinel.
  shard->clean_epoch = shard->spill_dirty ? kNeverCheckpointed : 0;
  shard->spill.clear();
  shard->spill.shrink_to_fit();
  shard->spill_dirty = false;
  ++live_count_;
  ++rehydrations_;
  return Status::OK();
}

void ShardManager::TouchLive(const std::string& key, Shard* shard,
                             int64_t touch) {
  // The erase is a no-op for a shard that just became live (its old
  // last_touch was removed from the index when it spilled, or never
  // inserted for a brand-new shard).
  live_lru_.erase({shard->last_touch, key});
  shard->last_touch = touch;
  live_lru_.insert({touch, key});
}

void ShardManager::SpillShard(const std::string& key, Shard* shard) {
  shard->spill_dirty = IsDirty(*shard);
  shard->spill = shard->live->SerializeState();
  shard->live.reset();
  shard->clean_epoch = kNeverCheckpointed;
  live_lru_.erase({shard->last_touch, key});
  --live_count_;
  ++evictions_;
}

void ShardManager::EnforceLiveCap(const std::string* exclude) {
  if (options_.max_live_shards <= 0) return;
  while (live_count_ > static_cast<size_t>(options_.max_live_shards)) {
    // The index orders by (last_touch, key), so begin() is exactly the
    // old linear scan's deterministic victim: least recently touched,
    // ties broken by smaller key.
    auto victim = live_lru_.begin();
    if (victim == live_lru_.end()) return;
    if (exclude != nullptr && victim->second == *exclude) {
      if (++victim == live_lru_.end()) return;  // only the excluded is live
    }
    SpillShard(victim->second, &shards_.find(victim->second)->second);
  }
}

Result<ShardManager::Shard*> ShardManager::TouchShard(const std::string& key,
                                                      bool create_missing,
                                                      bool enforce_cap) {
  auto it = shards_.find(key);
  if (it == shards_.end()) {
    if (!create_missing) {
      return Status::NotFound("no shard for key '" + key + "'");
    }
    Shard shard;
    shard.live = std::make_unique<FairCenterSlidingWindow>(
        OptionsForKey(key), constraint_, metric_, solver_);
    ++live_count_;
    it = shards_.emplace(key, std::move(shard)).first;
  } else if (!it->second.live) {
    FKC_RETURN_IF_ERROR(RehydrateShard(&it->second));
  }
  TouchLive(it->first, &it->second, clock_);
  if (enforce_cap) EnforceLiveCap(&key);
  return &it->second;
}

Status ShardManager::Ingest(const std::string& key, Point p) {
  FKC_RETURN_IF_ERROR(ValidateArrival(key, p, PinnedDimension(key)));
  ++clock_;
  auto shard = TouchShard(key, /*create_missing=*/true, /*enforce_cap=*/true);
  if (!shard.ok()) return shard.status();
  shard.value()->dim = static_cast<int64_t>(p.dimension());
  shard.value()->live->Update(std::move(p));
  return Status::OK();
}

Status ShardManager::IngestBatch(std::vector<KeyedPoint> batch) {
  if (batch.empty()) return Status::OK();

  // Group by key, preserving per-key arrival order (the only order that
  // matters: shards share no state, so cross-key interleaving is
  // unobservable). Invalid arrivals are dropped here, one by one — the
  // valid rest of the batch is consumed regardless.
  struct Group {
    std::vector<Point> points;
    int64_t last_clock = 0;  ///< manager clock at the group's last arrival
    int64_t dim = -1;        ///< dimension pinned by the first accepted point
    FairCenterSlidingWindow* window = nullptr;
  };
  std::map<std::string, Group> groups;
  int64_t dropped = 0;
  Status first_error = Status::OK();
  for (KeyedPoint& kp : batch) {
    // For a key already accepted earlier in this batch the group carries
    // the pinned dimension (a brand-new shard has none on record yet).
    auto git = groups.find(kp.key);
    const int64_t pinned =
        git != groups.end() ? git->second.dim : PinnedDimension(kp.key);
    Status status = ValidateArrival(kp.key, kp.point, pinned);
    if (!status.ok()) {
      ++dropped;
      if (first_error.ok()) first_error = std::move(status);
      continue;
    }
    if (git == groups.end()) git = groups.try_emplace(kp.key).first;
    Group& group = git->second;
    group.dim = static_cast<int64_t>(kp.point.dimension());
    group.points.push_back(std::move(kp.point));
    group.last_clock = ++clock_;
  }

  // Create or rehydrate every touched shard up front: the map must not
  // mutate under the fan-out, and LRU spills must not run while group
  // pointers are outstanding — the cap is enforced once, after the batch.
  for (auto& [key, group] : groups) {
    auto shard = TouchShard(key, /*create_missing=*/true,
                            /*enforce_cap=*/false);
    if (!shard.ok()) {
      dropped += static_cast<int64_t>(group.points.size());
      if (first_error.ok()) first_error = shard.status();
      continue;
    }
    shard.value()->dim = group.dim;
    group.window = shard.value()->live.get();
  }

  std::vector<std::pair<FairCenterSlidingWindow*, std::vector<Point>*>> work;
  work.reserve(groups.size());
  for (auto& [key, group] : groups) {
    if (group.window != nullptr) work.emplace_back(group.window, &group.points);
  }

  ThreadPool* pool = Pool();
  if (pool == nullptr || work.size() < 2) {
    for (auto& [shard, points] : work) {
      shard->UpdateBatch(std::move(*points));
    }
  } else {
    pool->ParallelFor(static_cast<int64_t>(work.size()), [&](int64_t i) {
      work[i].first->UpdateBatch(std::move(*work[i].second));
    });
  }
  // Refresh last_touch to each group's final arrival (matches the per-point
  // Ingest path bit for bit), then apply the cap.
  for (auto& [key, group] : groups) {
    if (group.window == nullptr) continue;
    TouchLive(key, &shards_.find(key)->second, group.last_clock);
  }
  EnforceLiveCap(nullptr);

  if (dropped > 0) {
    return Status::InvalidArgument(
        StrFormat("dropped %lld of %lld arrivals; first error: %s",
                  static_cast<long long>(dropped),
                  static_cast<long long>(batch.size()),
                  first_error.message().c_str()));
  }
  return Status::OK();
}

Status ShardManager::SetTenantOptions(const std::string& key,
                                      SlidingWindowOptions options) {
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument("tenant key exceeds the size limit");
  }
  FKC_RETURN_IF_ERROR(ValidateSlidingWindowOptions(options));
  if (shards_.count(key) != 0) {
    return Status::FailedPrecondition(
        "shard '" + key + "' already exists; options are fixed at creation");
  }
  options.num_threads = 1;
  if (SameCheckpointedOptions(options, options_.window)) {
    overrides_.erase(key);  // identical to the template: nothing to store
  } else {
    overrides_[key] = options;
  }
  return Status::OK();
}

const SlidingWindowOptions* ShardManager::TenantOptions(
    const std::string& key) const {
  auto it = overrides_.find(key);
  return it == overrides_.end() ? nullptr : &it->second;
}

Result<FairCenterSolution> ShardManager::Query(const std::string& key,
                                               QueryStats* stats) {
  auto shard = TouchShard(key, /*create_missing=*/false, /*enforce_cap=*/true);
  if (!shard.ok()) return shard.status();
  return shard.value()->live->Query(stats);
}

std::vector<ShardAnswer> ShardManager::QueryAll() {
  // Live shards answer in place; spilled shards answer from an ephemeral
  // deserialization so a fleet-wide query round does not defeat eviction.
  // Tasks are independent, so the fan-out is deterministic either way.
  struct Task {
    FairCenterSlidingWindow* live = nullptr;
    const std::string* spill = nullptr;
  };
  std::vector<ShardAnswer> answers;
  std::vector<Task> tasks;
  answers.reserve(shards_.size());
  tasks.reserve(shards_.size());
  for (auto& [key, shard] : shards_) {  // ascending key order
    ShardAnswer answer;
    answer.key = key;
    answers.push_back(std::move(answer));
    tasks.push_back(shard.live ? Task{shard.live.get(), nullptr}
                               : Task{nullptr, &shard.spill});
  }

  auto run_one = [&](int64_t i) {
    if (tasks[i].live != nullptr) {
      answers[i].solution = tasks[i].live->Query(&answers[i].stats);
      return;
    }
    auto window = FairCenterSlidingWindow::DeserializeState(*tasks[i].spill,
                                                            metric_, solver_);
    if (!window.ok()) {
      answers[i].solution = window.status();
      return;
    }
    answers[i].solution = window.value().Query(&answers[i].stats);
  };
  ThreadPool* pool = Pool();
  if (pool == nullptr || tasks.size() < 2) {
    for (size_t i = 0; i < tasks.size(); ++i) run_one(static_cast<int64_t>(i));
  } else {
    pool->ParallelFor(static_cast<int64_t>(tasks.size()), run_one);
  }
  return answers;
}

int64_t ShardManager::EvictIdle(int64_t idle_ttl) {
  if (idle_ttl < 0) return 0;
  int64_t evicted = 0;
  // The LRU index orders live shards by last_touch, so the idle ones are
  // exactly its prefix — O(victims * log n), not a walk over the whole
  // (mostly spilled) fleet.
  while (!live_lru_.empty()) {
    const auto victim = live_lru_.begin();
    if (clock_ - victim->first <= idle_ttl) break;
    SpillShard(victim->second, &shards_.find(victim->second)->second);
    ++evicted;
  }
  return evicted;
}

std::string ShardManager::CheckpointAll() {
  std::ostringstream out;
  out << kMagicV2 << ' ';

  // The window template (needed to spawn shards for keys first seen after a
  // restore), the constraint, and the override table. num_threads and
  // max_live_shards are execution/resource knobs and are deliberately
  // excluded, like in the core checkpoint.
  WriteSlidingWindowOptions(&out, options_.window);
  WriteConstraint(&out, constraint_);
  WriteOverrides(&out, overrides_);

  // Every shard: length-prefixed key, length-prefixed core checkpoint. A
  // spilled shard's state is its spill blob, verbatim.
  out << shards_.size() << ' ';
  for (auto& [key, shard] : shards_) {
    WriteCheckpointRaw(&out, key);
    if (shard.live) {
      WriteCheckpointRaw(&out, shard.live->SerializeState());
      shard.clean_epoch = shard.live->state_epoch();
    } else {
      WriteCheckpointRaw(&out, shard.spill);
      shard.spill_dirty = false;
    }
  }
  return out.str();
}

size_t ShardManager::dirty_shard_count() const {
  size_t dirty = 0;
  for (const auto& [key, shard] : shards_) {
    if (IsDirty(shard)) ++dirty;
  }
  return dirty;
}

std::string ShardManager::CheckpointDelta() {
  std::ostringstream out;
  out << kDeltaMagic << ' ';
  // Constraint (so the receiver can verify compatibility) and the override
  // table (tiny, and replacing it wholesale keeps deltas self-contained).
  WriteConstraint(&out, constraint_);
  WriteOverrides(&out, overrides_);

  out << dirty_shard_count() << ' ';
  for (auto& [key, shard] : shards_) {
    if (!IsDirty(shard)) continue;
    WriteCheckpointRaw(&out, key);
    if (shard.live) {
      WriteCheckpointRaw(&out, shard.live->SerializeState());
      shard.clean_epoch = shard.live->state_epoch();
    } else {
      WriteCheckpointRaw(&out, shard.spill);
      shard.spill_dirty = false;
    }
  }
  return out.str();
}

Status ShardManager::ApplyDelta(const std::string& bytes) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  if (magic != kDeltaMagic) {
    return Status::InvalidArgument("not an fkc shard delta (bad magic '" +
                                   magic + "')");
  }

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadConstraint(&cursor, &caps));
  if (caps != constraint_.caps()) {
    return Status::InvalidArgument(
        "delta constraint does not match this manager's");
  }
  std::map<std::string, SlidingWindowOptions> overrides;
  FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &overrides));

  // Stage every shard before touching the manager: a truncated or corrupt
  // delta must leave the fleet exactly as it was.
  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in delta");
  }
  // No reserve from the blob-supplied count: growth is paid only for
  // entries that actually parse.
  std::vector<std::pair<std::string, FairCenterSlidingWindow>> staged;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric_, solver_);
    if (!window.ok()) return window.status();
    // An interior-corrupt or forged shard blob under a different constraint
    // would restore fine and then CHECK-abort on its next in-range ingest
    // (StampArrival checks color against the shard's own ell).
    if (window.value().constraint().caps() != constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint in delta");
    }
    staged.emplace_back(std::move(key), std::move(window).value());
  }

  overrides_ = std::move(overrides);
  for (auto& [key, window] : staged) {
    Shard& shard = shards_[key];
    const bool was_live = shard.live != nullptr;
    if (!was_live) ++live_count_;
    shard.live =
        std::make_unique<FairCenterSlidingWindow>(std::move(window));
    shard.spill.clear();
    shard.spill_dirty = false;
    shard.dim = shard.live->dimension();
    // The shard now matches the leader's checkpointed state exactly.
    shard.clean_epoch = shard.live->state_epoch();
    TouchLive(key, &shard, clock_);
  }
  EnforceLiveCap(nullptr);
  return Status::OK();
}

Result<ShardManager> ShardManager::Restore(const std::string& bytes,
                                           const Metric* metric,
                                           const FairCenterSolver* solver,
                                           int num_threads,
                                           int64_t max_live_shards) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagicV1) {
    return Status::InvalidArgument("not an fkc shard checkpoint (bad magic '" +
                                   magic + "')");
  }

  ShardManagerOptions options;
  options.num_threads = num_threads;
  options.max_live_shards = max_live_shards;
  // ReadSlidingWindowOptions validates what it parses (window size, delta,
  // beta, variant, slack exponents, range bounds): a corrupted or
  // adversarial blob must fail here, not abort in a constructor CHECK.
  FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(&cursor, &options.window));

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadConstraint(&cursor, &caps));

  ShardManager manager(options, ColorConstraint(std::move(caps)), metric,
                       solver);
  if (v2) {
    FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &manager.overrides_));
  }

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in checkpoint");
  }
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric, solver);
    if (!window.ok()) return window.status();
    // Same forged-blob guard as ApplyDelta: a shard under a different
    // constraint would pass the manager's ValidateArrival yet CHECK-abort
    // inside the window on the next ingest.
    if (window.value().constraint().caps() != manager.constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint");
    }
    Shard shard;
    shard.live = std::make_unique<FairCenterSlidingWindow>(
        std::move(window).value());
    shard.dim = shard.live->dimension();
    shard.clean_epoch = shard.live->state_epoch();  // restored = checkpointed
    auto [pos, inserted] =
        manager.shards_.emplace(std::move(key), std::move(shard));
    if (!inserted) {
      return Status::InvalidArgument("duplicate shard key in checkpoint");
    }
    manager.live_lru_.insert({pos->second.last_touch, pos->first});
    ++manager.live_count_;
    // Enforce the cap as shards stream in, not after: a fleet far larger
    // than max_live_shards must never be fully resident at once — that is
    // the exact condition the cap exists to prevent. All last_touch values
    // are equal here, so the surviving set (the largest keys) matches what
    // one sweep at the end would keep.
    manager.EnforceLiveCap(nullptr);
  }
  return manager;
}

std::vector<std::string> ShardManager::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) keys.push_back(key);
  return keys;
}

FairCenterSlidingWindow* ShardManager::shard(const std::string& key) {
  auto result = TouchShard(key, /*create_missing=*/false,
                           /*enforce_cap=*/true);
  return result.ok() ? result.value()->live.get() : nullptr;
}

const FairCenterSlidingWindow* ShardManager::shard(
    const std::string& key) const {
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : it->second.live.get();
}

MemoryStats ShardManager::TotalMemory() const {
  MemoryStats stats;
  for (const auto& [key, shard] : shards_) {
    if (shard.live) stats += shard.live->Memory();
  }
  return stats;
}

}  // namespace serving
}  // namespace fkc
